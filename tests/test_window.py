"""Tests for AddConstraints's event-window optimisation."""

import pytest

from repro.analysis.dc import DCDetector
from repro.graph.constraint_graph import ConstraintGraph
from repro.vindicate.vindicator import Verdict, Vindicator, vindicate_race
from repro.vindicate.verify import check_witness
from repro.traces.litmus import ALL, figure2, figure3
from repro.traces.gen import GeneratorConfig, random_trace


class TestWindowedBFS:
    def test_within_restricts_traversal(self):
        g = ConstraintGraph()
        g.add_edge(0, 5)
        g.add_edge(5, 10)
        g.add_edge(10, 20)
        assert g.descendants([0]) == {5, 10, 20}
        assert g.descendants([0], within=(0, 10)) == {5, 10}
        # Out-of-window nodes block the paths through them.
        assert g.descendants([0], within=(0, 9)) == {5}

    def test_ancestors_within(self):
        g = ConstraintGraph()
        g.add_edge(0, 5)
        g.add_edge(5, 10)
        assert g.ancestors([10], within=(5, 10)) == {5}


class TestWindowedVindication:
    def test_figure2_same_result(self):
        trace = figure2()
        det = DCDetector()
        report = det.analyze(trace)
        race = report.races[0]
        full = vindicate_race(det.graph, trace, race, use_window=False)
        windowed = vindicate_race(det.graph, trace, race, use_window=True)
        assert full.verdict is windowed.verdict is Verdict.RACE

    def test_figure3_ls_constraint_still_found(self):
        trace = figure3()
        det = DCDetector()
        report = det.analyze(trace)
        race = report.races[-1]
        windowed = vindicate_race(det.graph, trace, race, use_window=True)
        assert windowed.verdict is Verdict.RACE

    @pytest.mark.parametrize("name", sorted(ALL))
    def test_litmus_verdicts_compatible(self, name):
        """RACE verdicts must be identical; a refutation may soundly
        degrade to *don't know* when the refuting cycle lies outside the
        window (wcp_deadlock exhibits this)."""
        trace = ALL[name]()
        transitive = not name.startswith("figure4")
        plain = Vindicator(vindicate_all=True,
                           transitive_force=transitive).run(trace)
        windowed = Vindicator(vindicate_all=True, transitive_force=transitive,
                              use_window=True).run(trace)
        for full, win in zip(plain.vindications, windowed.vindications):
            if full.verdict is Verdict.RACE or win.verdict is Verdict.RACE:
                assert full.verdict is win.verdict, name

    def test_window_degrades_wcp_deadlock_refutation_soundly(self):
        from repro.traces.litmus import wcp_deadlock
        trace = wcp_deadlock()
        plain = Vindicator(vindicate_all=True).run(trace)
        windowed = Vindicator(vindicate_all=True, use_window=True).run(trace)
        assert plain.vindications[0].verdict is Verdict.NO_RACE
        assert windowed.vindications[0].verdict is Verdict.UNKNOWN

    @pytest.mark.parametrize("seed", range(20))
    def test_random_traces_verdicts_unchanged(self, seed):
        cfg = GeneratorConfig(threads=3, events=25, locks=2, variables=2,
                              max_nesting=2)
        trace = random_trace(seed, cfg)
        det = DCDetector()
        det.analyze(trace)
        for race in det.report.races:
            full = vindicate_race(det.graph, trace, race, use_window=False)
            windowed = vindicate_race(det.graph, trace, race, use_window=True)
            assert full.verdict is windowed.verdict
            if windowed.witness is not None:
                check_witness(trace, windowed.witness, race.first, race.second)

    def test_windowed_adds_at_most_as_many_ls_edges(self):
        cfg = GeneratorConfig(threads=3, events=30, locks=3, variables=2,
                              max_nesting=2)
        for seed in range(10):
            trace = random_trace(seed, cfg)
            det = DCDetector()
            det.analyze(trace)
            for race in det.report.races:
                full = vindicate_race(det.graph, trace, race,
                                      use_window=False)
                windowed = vindicate_race(det.graph, trace, race,
                                          use_window=True)
                assert windowed.ls_constraints <= full.ls_constraints

"""Property tests for the static passes (hypothesis).

Two families:

* every trace our generators and workloads produce lints clean — the
  linter's error rules encode exactly the well-formedness the event
  model guarantees;
* deleting or retargeting a synchronisation event from a clean trace
  produces a diagnostic with the expected stable rule code — seeded
  mutations are caught, and caught as the *right* rule.

The linter reports positions, not eids, so mutated event lists need no
renumbering.
"""

from dataclasses import replace

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.events import EventKind  # noqa: E402
from repro.runtime import execute  # noqa: E402
from repro.runtime.workloads import WORKLOADS  # noqa: E402
from repro.static.lint import lint_events  # noqa: E402
from repro.static.lockset import analyze_locksets  # noqa: E402
from repro.traces.gen import GeneratorConfig, random_trace  # noqa: E402

CONFIGS = [
    GeneratorConfig(threads=3, events=30, locks=2, variables=3),
    GeneratorConfig(threads=4, events=40, locks=3, variables=2,
                    max_nesting=2, use_fork_join=True),
    GeneratorConfig(threads=2, events=24, locks=2, variables=2,
                    volatiles=2),
    GeneratorConfig(threads=4, events=36, locks=3, variables=3,
                    volatiles=1, use_fork_join=True, max_nesting=2),
]

traces = st.builds(random_trace,
                   st.integers(min_value=0, max_value=10_000),
                   st.sampled_from(CONFIGS))


def codes(diags):
    return {d.code for d in diags}


def lock_pairs(events):
    """Indices (acq_i, rel_i) of matched acquire/release pairs."""
    open_acq = {}
    pairs = []
    for i, e in enumerate(events):
        if e.kind is EventKind.ACQUIRE:
            open_acq[e.target] = i
        elif e.kind is EventKind.RELEASE and e.target in open_acq:
            pairs.append((open_acq.pop(e.target), i))
    return pairs


class TestCleanByConstruction:
    @settings(max_examples=30, deadline=None)
    @given(trace=traces)
    def test_generated_traces_lint_clean(self, trace):
        # SA133 (inconsistent lockset discipline) is an Eraser-style
        # heuristic, not a well-formedness rule: the generator picks
        # locks at random, so a variable can legitimately end up
        # accessed under disjoint locksets (e.g. seed 9999 of the first
        # config). Structural cleanliness is what construction promises.
        diags = [d for d in lint_events(trace.events) if d.code != "SA133"]
        assert diags == []

    @settings(max_examples=15, deadline=None)
    @given(name=st.sampled_from(sorted(WORKLOADS)),
           seed=st.integers(min_value=0, max_value=50))
    def test_workload_traces_lint_clean(self, name, seed):
        trace = execute(WORKLOADS[name](scale=0.15), seed=seed)
        assert lint_events(trace.events) == []

    @settings(max_examples=30, deadline=None)
    @given(trace=traces)
    def test_lockset_is_total_and_agrees_with_lint(self, trace):
        """Every plain variable gets a verdict, and the pass never
        mistakes locks or volatiles for variables (which the linter
        would flag as SA130/SA131/SA132 mixed use)."""
        result = analyze_locksets(trace.events)
        accessed = {e.target for e in trace.events
                    if e.kind.is_access and not e.kind.is_volatile}
        assert set(result.variables) == accessed


class TestSeededMutations:
    @settings(max_examples=25, deadline=None)
    @given(trace=traces, data=st.data())
    def test_deleted_acquire_is_sa101(self, trace, data):
        pairs = lock_pairs(trace.events)
        if not pairs:
            return
        acq_i, _ = data.draw(st.sampled_from(pairs))
        mutated = [e for i, e in enumerate(trace.events) if i != acq_i]
        assert "SA101" in codes(lint_events(mutated))

    @settings(max_examples=25, deadline=None)
    @given(trace=traces, data=st.data())
    def test_deleted_release_leaves_lock_dangling(self, trace, data):
        pairs = lock_pairs(trace.events)
        if not pairs:
            return
        _, rel_i = data.draw(st.sampled_from(pairs))
        mutated = [e for i, e in enumerate(trace.events) if i != rel_i]
        # The dangling hold surfaces as a reacquire by the same thread
        # (SA103), an acquire by another (SA104), or a lock still held
        # at trace end (SA120) — depending on what follows.
        assert codes(lint_events(mutated)) & {"SA103", "SA104", "SA120"}

    @settings(max_examples=25, deadline=None)
    @given(trace=traces, data=st.data())
    def test_deleted_fork_is_sa110(self, trace, data):
        forks = [i for i, e in enumerate(trace.events)
                 if e.kind is EventKind.FORK
                 and any(j.kind is EventKind.JOIN and j.target == e.target
                         for j in trace.events)]
        if not forks:
            return
        fork_i = data.draw(st.sampled_from(forks))
        mutated = [e for i, e in enumerate(trace.events) if i != fork_i]
        assert "SA110" in codes(lint_events(mutated))

    @settings(max_examples=25, deadline=None)
    @given(trace=traces, data=st.data())
    def test_deleted_join_is_sa111(self, trace, data):
        joins = [i for i, e in enumerate(trace.events)
                 if e.kind is EventKind.JOIN
                 and any(f.kind is EventKind.FORK and f.target == e.target
                         for f in trace.events)]
        if not joins:
            return
        join_i = data.draw(st.sampled_from(joins))
        mutated = [e for i, e in enumerate(trace.events) if i != join_i]
        assert "SA111" in codes(lint_events(mutated))

    @settings(max_examples=25, deadline=None)
    @given(trace=traces, data=st.data())
    def test_retargeted_release_is_sa102(self, trace, data):
        pairs = lock_pairs(trace.events)
        tids = sorted(trace.threads)
        if not pairs or len(tids) < 2:
            return
        _, rel_i = data.draw(st.sampled_from(pairs))
        victim = trace.events[rel_i]
        thief = data.draw(st.sampled_from(
            [t for t in tids if t != victim.tid]))
        mutated = list(trace.events)
        mutated[rel_i] = replace(victim, tid=thief)
        assert "SA102" in codes(lint_events(mutated))

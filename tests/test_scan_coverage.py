"""Coverage contract between ``vindicator scan`` and the dynamic
pipeline.

The static scanner's one load-bearing guarantee is *coverage*: every
variable the dynamic detectors can race on must be matched by a
race-candidate cluster, and a pruned (thread-local) cluster must never
match a dynamically racing variable — pruning its instrumentation away
would hide real races.

Two suites check this:

* the paired examples (``examples/racy_counter.py``,
  ``examples/locked_registry.py``, ``examples/broken_cache.py``) each
  carry a generator-model analog with the *same shared-variable names*
  as the real-threading code; we execute the model, collect every
  DC-race variable, and check it against the scan of the source file;
* a hypothesis suite generates small worker specs and renders each one
  twice — as real ``threading`` source (scanned) and as an executable
  :class:`~repro.runtime.Program` (run through the detectors) — so the
  contract is exercised on shapes nobody hand-picked.
"""

import importlib
import sys
from pathlib import Path

import pytest

from repro import Vindicator
from repro.runtime import Program, execute, ops
from repro.static.pysrc import scan_path, scan_source

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def dynamic_race_variables(program, seeds):
    """Every variable some DC-race touches, over several schedules."""
    racy = set()
    for seed in seeds:
        report = Vindicator().run(execute(program, seed=seed))
        for race in report.dc.races:
            racy.add(race.first.target)
            racy.add(race.second.target)
    return racy


def example_program(module_name):
    sys.path.insert(0, str(EXAMPLES))
    try:
        module = importlib.import_module(module_name)
    finally:
        sys.path.pop(0)
    if hasattr(module, "model"):
        return module.model()
    return Program(name=module_name, main=module.main_thread)


PAIRED = ["racy_counter", "locked_registry", "broken_cache"]


class TestPairedExamples:
    @pytest.mark.parametrize("name", PAIRED)
    def test_scan_covers_every_dynamic_race(self, name):
        result = scan_path(str(EXAMPLES / f"{name}.py"))
        racy = dynamic_race_variables(example_program(name),
                                      seeds=range(4))
        assert racy, f"{name} produced no dynamic race to check against"
        for var in sorted(racy):
            assert result.covers(var), (
                f"dynamic DC-race variable {var!r} not covered by any "
                f"race-candidate cluster of {name}.py")

    @pytest.mark.parametrize("name", PAIRED)
    def test_pruned_sites_never_race(self, name):
        result = scan_path(str(EXAMPLES / f"{name}.py"))
        racy = dynamic_race_variables(example_program(name),
                                      seeds=range(4))
        for var in sorted(racy):
            assert not result.pruned_matches(var), (
                f"{var!r} races dynamically but matches a pruned "
                f"thread-local cluster of {name}.py")

    def test_broken_cache_acceptance_path(self):
        # The ISSUE's acceptance criterion, at the API level.
        result = scan_path(str(EXAMPLES / "broken_cache.py"))
        assert result.covers("cache.entry")


# ----------------------------------------------------------------------
# Randomised paired programs
# ----------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

#: One shared-variable access: (variable, is_write, under_lock).
SHARED = ["alpha", "beta", "gamma"]
accesses = st.lists(
    st.tuples(st.sampled_from(SHARED), st.booleans(), st.booleans()),
    min_size=1, max_size=4)
specs = st.lists(accesses, min_size=2, max_size=3)


def render_source(spec):
    """The spec as a real ``threading`` program (scanner input)."""
    lines = ["import threading", "", "LOCK = threading.Lock()"]
    lines += [f"{v} = 0" for v in SHARED]
    lines += [f"only{i} = 0" for i in range(len(spec))]
    for i, worker in enumerate(spec):
        lines += ["", f"def w{i}():",
                  f"    global {', '.join(SHARED)}, only{i}",
                  f"    only{i} += 1"]
        for var, write, locked in worker:
            stmt = f"{var} += 1" if write else f"print({var})"
            if locked:
                lines += ["    with LOCK:", f"        {stmt}"]
            else:
                lines += [f"    {stmt}"]
    lines += ["", "def main():"]
    for i in range(len(spec)):
        lines += [f"    t{i} = threading.Thread(target=w{i})"]
    for i in range(len(spec)):
        lines += [f"    t{i}.start()"]
    for i in range(len(spec)):
        lines += [f"    t{i}.join()"]
    lines += ["", "main()", ""]
    return "\n".join(lines)


def render_program(spec):
    """The same spec as an executable generator-DSL Program."""

    def make_worker(index, worker):
        def gen():
            yield ops.rd(f"only{index}")
            yield ops.wr(f"only{index}")
            for var, write, locked in worker:
                if locked:
                    yield ops.acq("LOCK")
                yield ops.rd(var)
                if write:
                    yield ops.wr(var)
                if locked:
                    yield ops.rel("LOCK")
        return gen

    workers = [make_worker(i, w) for i, w in enumerate(spec)]

    def main_thread():
        for i in range(len(workers)):
            yield ops.fork(f"w{i}", workers[i])
        for i in range(len(workers)):
            yield ops.join(f"w{i}")

    return Program(name="spec", main=main_thread)


class TestRandomPairedPrograms:
    @settings(max_examples=25, deadline=None)
    @given(spec=specs, seed=st.integers(min_value=0, max_value=999))
    def test_coverage_contract(self, spec, seed):
        report = scan_source(render_source(spec), path="spec.py",
                             name="spec")
        racy = dynamic_race_variables(render_program(spec), [seed])
        for var in sorted(racy):
            assert report.covers(var), (
                f"dynamic race on {var!r} not covered; spec={spec!r}")
            assert not report.pruned_matches(var), (
                f"{var!r} races but was pruned; spec={spec!r}")

    @settings(max_examples=25, deadline=None)
    @given(spec=specs)
    def test_worker_private_globals_are_pruned(self, spec):
        report = scan_source(render_source(spec), path="spec.py",
                             name="spec")
        pruned = set(report.pruned_labels())
        for i in range(len(spec)):
            assert f"only{i}" in pruned

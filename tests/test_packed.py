"""The packed trace encoding round-trips exactly and pickles compactly."""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import execute
from repro.runtime.workloads import WORKLOADS
from repro.traces.io import loads_trace
from repro.traces.gen import GeneratorConfig, random_trace
from repro.traces.litmus import ALL as LITMUS
from repro.traces.packed import KIND_ORDER, PackedTrace, pack


def workload_trace(name="avrora", scale=0.2, seed=0):
    """A loc-bearing trace (the generator never emits source locations;
    workload schedulers do)."""
    return execute(WORKLOADS[name](scale=scale), seed=seed)


def assert_round_trip(trace):
    packed = pack(trace)
    restored = packed.unpack()
    assert len(packed) == len(trace)
    assert len(restored) == len(trace)
    for orig, back in zip(trace.events, restored.events):
        assert (orig.eid, orig.tid, orig.kind, orig.target, orig.loc) == \
               (back.eid, back.tid, back.kind, back.target, back.loc)
    assert list(restored.local_time) == list(trace.local_time)
    assert restored.provenance == trace.provenance
    return packed


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(LITMUS))
    def test_litmus(self, name):
        assert_round_trip(LITMUS[name]())

    def test_workload_trace_with_locs(self):
        packed = assert_round_trip(workload_trace())
        assert packed.locs  # locs must survive for document bit-identity

    def test_provenance_is_copied_not_aliased(self):
        trace = random_trace(1, GeneratorConfig(threads=2, events=20))
        packed = pack(trace)
        packed.provenance["tampered"] = True
        assert "tampered" not in trace.provenance
        restored = packed.unpack()
        restored.provenance["also"] = True
        assert "also" not in packed.provenance

    def test_empty_trace(self):
        trace = loads_trace("")
        packed = assert_round_trip(trace)
        assert len(packed) == 0
        assert packed.nbytes() == 0

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000),
           threads=st.integers(2, 4), events=st.integers(1, 50),
           use_fork_join=st.booleans())
    def test_random(self, seed, threads, events, use_fork_join):
        assert_round_trip(random_trace(seed, GeneratorConfig(
            threads=threads, events=events, use_fork_join=use_fork_join)))


class TestEncoding:
    def test_kind_codes_cover_every_kind(self):
        trace = LITMUS["figure1"]()
        packed = pack(trace)
        assert all(0 <= code < len(KIND_ORDER) for code in packed.kinds)

    def test_interning_tables_have_no_duplicates(self):
        packed = pack(workload_trace())
        assert len(set(packed.tids)) == len(packed.tids)
        assert len(set(packed.targets)) == len(packed.targets)
        assert len(set(packed.locs)) == len(packed.locs)

    def test_none_target_encodes_as_minus_one(self):
        trace = LITMUS["figure1"]()
        packed = pack(trace)
        for e, t_i in zip(trace.events, packed.target_idx):
            assert (t_i == -1) == (e.target is None)

    def test_nbytes_counts_fixed_width_columns(self):
        trace = random_trace(2, GeneratorConfig(threads=3, events=40))
        packed = pack(trace)
        expected = sum(len(col) * col.itemsize
                       for col in (packed.kinds, packed.tid_idx,
                                   packed.target_idx, packed.loc_idx,
                                   packed.local_time))
        assert packed.nbytes() == expected
        # 1 + 4 + 4 + 4 + 4 bytes per event.
        assert packed.nbytes() == 17 * len(trace)


class TestPickle:
    def test_pickle_round_trip(self):
        trace = workload_trace(seed=5)
        packed = pack(trace)
        clone = pickle.loads(pickle.dumps(packed))
        assert isinstance(clone, PackedTrace)
        restored = clone.unpack()
        assert [(e.eid, e.tid, e.kind, e.target, e.loc)
                for e in restored.events] == \
               [(e.eid, e.tid, e.kind, e.target, e.loc)
                for e in trace.events]
        assert restored.provenance == trace.provenance

    def test_packed_pickle_is_smaller_than_trace_pickle(self):
        trace = workload_trace(scale=0.5)
        packed_size = len(pickle.dumps(pack(trace)))
        trace_size = len(pickle.dumps(trace))
        assert packed_size < trace_size / 2

"""Tests for the redundant-access fast path."""

from repro.core.events import EventKind
from repro.core.trace import TraceBuilder
from repro.runtime.instrument import fast_path_filter
from repro.analysis.hb import HBDetector
from repro.analysis.reference import ReferenceAnalysis
from repro.traces.gen import GeneratorConfig, random_trace


def kinds(trace):
    return [(e.tid, e.kind.value, e.target) for e in trace]


class TestRedundancyRules:
    def test_read_after_write_removed(self):
        trace = TraceBuilder().wr(1, "x").rd(1, "x").build()
        filtered, stats = fast_path_filter(trace)
        assert kinds(filtered) == [(1, "wr", "x")]
        assert stats.removed == 1

    def test_write_after_write_removed(self):
        trace = TraceBuilder().wr(1, "x").wr(1, "x").build()
        filtered, _ = fast_path_filter(trace)
        assert len(filtered) == 1

    def test_read_after_read_removed(self):
        trace = TraceBuilder().rd(1, "x").rd(1, "x").build()
        filtered, _ = fast_path_filter(trace)
        assert len(filtered) == 1

    def test_write_after_read_kept(self):
        trace = TraceBuilder().rd(1, "x").wr(1, "x").build()
        filtered, _ = fast_path_filter(trace)
        assert len(filtered) == 2

    def test_sync_in_between_resets(self):
        trace = (TraceBuilder()
                 .wr(1, "x").acq(1, "m").rel(1, "m").rd(1, "x").build())
        filtered, _ = fast_path_filter(trace)
        assert len(filtered) == 4

    def test_other_thread_sync_does_not_reset(self):
        trace = (TraceBuilder()
                 .wr(1, "x").acq(2, "m").rel(2, "m").rd(1, "x").build())
        filtered, _ = fast_path_filter(trace)
        assert len(filtered) == 3  # the rd(1, x) is still redundant

    def test_different_variables_tracked_separately(self):
        trace = TraceBuilder().wr(1, "x").wr(1, "y").wr(1, "x").build()
        filtered, _ = fast_path_filter(trace)
        assert len(filtered) == 2

    def test_other_threads_accesses_kept(self):
        trace = TraceBuilder().wr(1, "x").wr(2, "x").build()
        filtered, _ = fast_path_filter(trace)
        assert len(filtered) == 2

    def test_volatile_counts_as_sync(self):
        trace = TraceBuilder().wr(1, "x").vwr(1, "v").rd(1, "x").build()
        filtered, _ = fast_path_filter(trace)
        assert len(filtered) == 3

    def test_stats(self):
        trace = TraceBuilder().wr(1, "x").rd(1, "x").rd(1, "x").build()
        _, stats = fast_path_filter(trace)
        assert stats.original_events == 3
        assert stats.filtered_events == 1
        assert stats.removed == 2
        assert stats.hit_rate == 2 / 3

    def test_empty_trace(self):
        trace = TraceBuilder().build()
        filtered, stats = fast_path_filter(trace)
        assert len(filtered) == 0
        assert stats.hit_rate == 0.0


class TestRacePreservation:
    """The fast path must not change whether a trace has races."""

    def test_race_survives_filtering(self):
        trace = (TraceBuilder()
                 .wr(1, "x").rd(1, "x").rd(2, "x").build())
        filtered, _ = fast_path_filter(trace)
        assert HBDetector().analyze(filtered).dynamic_count >= 1

    def test_random_traces_preserve_race_existence(self):
        cfg = GeneratorConfig(threads=3, events=30, locks=2, variables=2)
        for seed in range(25):
            trace = random_trace(seed, cfg)
            filtered, _ = fast_path_filter(trace)
            before = ReferenceAnalysis(trace)
            after = ReferenceAnalysis(filtered)
            for races_of in ("hb_races", "wcp_races", "dc_races"):
                assert bool(getattr(before, races_of)()) == \
                    bool(getattr(after, races_of)()), (seed, races_of)

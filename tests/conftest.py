"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.runtime import execute
from repro.runtime.workloads import WORKLOADS
from repro.traces.litmus import ALL as LITMUS


@pytest.fixture(params=sorted(LITMUS))
def litmus_name(request):
    """Parameterised over every litmus trace name."""
    return request.param


@pytest.fixture
def litmus_trace(litmus_name):
    return LITMUS[litmus_name]()


@pytest.fixture(scope="session", params=sorted(WORKLOADS))
def workload_name(request):
    return request.param


@pytest.fixture(scope="session")
def workload_trace(workload_name):
    """A small execution of each workload (session-cached)."""
    return execute(WORKLOADS[workload_name](scale=0.4), seed=7)

"""Verdict-preservation tests for the lockset pre-filter.

The pre-filter may only skip *race checks* on variables the static pass
proves race-free; it must never change which races any detector finds,
their classification, or vindication verdicts.  These tests compare
full runs with the filter on vs. off, event-id by event-id.
"""

import pytest

from repro.analysis.dc import DCDetector
from repro.analysis.fasttrack import FastTrackDetector
from repro.analysis.hb import HBDetector
from repro.analysis.wcp import WCPDetector
from repro.runtime import execute
from repro.runtime.workloads import WORKLOADS
from repro.static.lockset import analyze_locksets
from repro.traces.litmus import ALL as LITMUS
from repro.vindicate.vindicator import Vindicator

DETECTORS = {
    "hb": HBDetector,
    "fasttrack": FastTrackDetector,
    "wcp": WCPDetector,
    "dc": lambda prefilter=None: DCDetector(build_graph=False,
                                            prefilter=prefilter),
}

WORKLOAD_CASES = [("luindex", 0, 0.2), ("xalan", 1, 0.3)]


def workload_trace(name, seed, scale):
    return execute(WORKLOADS[name](scale=scale), seed=seed)


def race_keys(report):
    return [(r.first.eid, r.second.eid, r.race_class) for r in report.races]


def run_pair(detector_factory, trace):
    plain = detector_factory().analyze(trace)
    candidates = analyze_locksets(trace.events).race_candidates
    filtered = detector_factory(prefilter=candidates).analyze(trace)
    return plain, filtered


class TestDetectorEquality:
    @pytest.mark.parametrize("det_name", sorted(DETECTORS))
    @pytest.mark.parametrize("litmus_name", sorted(LITMUS))
    def test_litmus(self, det_name, litmus_name):
        trace = LITMUS[litmus_name]()
        plain, filtered = run_pair(DETECTORS[det_name], trace)
        assert race_keys(plain) == race_keys(filtered)

    @pytest.mark.parametrize("det_name", sorted(DETECTORS))
    @pytest.mark.parametrize("case", WORKLOAD_CASES,
                             ids=[c[0] for c in WORKLOAD_CASES])
    def test_workloads(self, det_name, case):
        trace = workload_trace(*case)
        plain, filtered = run_pair(DETECTORS[det_name], trace)
        assert race_keys(plain) == race_keys(filtered)

    @pytest.mark.parametrize("case", WORKLOAD_CASES,
                             ids=[c[0] for c in WORKLOAD_CASES])
    def test_filter_actually_skips_work(self, case):
        trace = workload_trace(*case)
        candidates = analyze_locksets(trace.events).race_candidates
        report = HBDetector(prefilter=candidates).analyze(trace)
        assert report.counters["lockset_skipped"] > 0
        assert report.counters["lockset_checked"] > 0


class TestVindicatorEquality:
    @pytest.mark.parametrize("litmus_name", sorted(LITMUS))
    def test_litmus_full_pipeline(self, litmus_name):
        trace = LITMUS[litmus_name]()
        kwargs = dict(vindicate_all=True,
                      transitive_force=not litmus_name.startswith("figure4"))
        plain = Vindicator(**kwargs).run(trace)
        filtered = Vindicator(prefilter=True, sanitize=True,
                              **kwargs).run(trace)
        for attr in ("hb", "wcp", "dc"):
            assert race_keys(getattr(plain, attr)) == \
                race_keys(getattr(filtered, attr)), attr
        assert [(v.race.first.eid, v.race.second.eid, v.verdict)
                for v in plain.vindications] == \
               [(v.race.first.eid, v.race.second.eid, v.verdict)
                for v in filtered.vindications]

    @pytest.mark.parametrize("case", WORKLOAD_CASES,
                             ids=[c[0] for c in WORKLOAD_CASES])
    def test_workload_full_pipeline(self, case):
        trace = workload_trace(*case)
        plain = Vindicator().run(trace)
        filtered = Vindicator(prefilter=True, sanitize=True).run(trace)
        for attr in ("hb", "wcp", "dc"):
            assert race_keys(getattr(plain, attr)) == \
                race_keys(getattr(filtered, attr)), attr
        assert filtered.lockset is not None

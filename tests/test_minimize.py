"""Tests for the trace minimiser."""

import pytest

from repro.core.events import EventKind
from repro.core.trace import TraceBuilder
from repro.traces.minimize import minimize_trace
from repro.analysis.hb import HBDetector


class TestMinimize:
    def test_shrinks_to_racing_pair(self):
        trace = (TraceBuilder()
                 .wr(1, "a").rd(1, "a").wr(2, "b")
                 .wr(1, "x").wr(2, "x")
                 .rd(2, "b")
                 .build())

        def has_race(t):
            return HBDetector().analyze(t).dynamic_count > 0

        small = minimize_trace(trace, has_race)
        assert len(small) == 2
        assert {e.target for e in small} == {"x"}

    def test_predicate_must_hold_initially(self):
        trace = TraceBuilder().wr(1, "x").build()
        with pytest.raises(ValueError):
            minimize_trace(trace, lambda t: False)

    def test_lock_pairs_removed_together(self):
        trace = (TraceBuilder()
                 .acq(1, "m").wr(1, "x").rel(1, "m")
                 .wr(2, "x")
                 .build())

        def has_race(t):
            return HBDetector().analyze(t).dynamic_count > 0

        small = minimize_trace(trace, has_race)
        # No dangling acquire or release may survive.
        kinds = [e.kind for e in small]
        assert kinds.count(EventKind.ACQUIRE) == kinds.count(EventKind.RELEASE)

    def test_fork_removal_drops_child(self):
        trace = (TraceBuilder()
                 .fork(1, 2).wr(2, "y").join(1, 2)
                 .wr(1, "x").wr(3, "x")
                 .build())

        def has_race(t):
            return HBDetector().analyze(t).dynamic_count > 0

        small = minimize_trace(trace, has_race)
        assert all(e.tid != 2 for e in small)
        assert all(e.kind not in (EventKind.FORK, EventKind.JOIN)
                   for e in small)

    def test_result_is_valid_trace(self):
        trace = (TraceBuilder()
                 .acq(1, "m").acq(1, "n").wr(1, "x").rel(1, "n").rel(1, "m")
                 .wr(2, "x")
                 .build())
        small = minimize_trace(
            trace, lambda t: HBDetector().analyze(t).dynamic_count > 0)
        # Construction re-validates; reaching here means it is well-formed.
        assert len(small) <= len(trace)

    def test_preserves_when_nothing_removable(self):
        trace = TraceBuilder().wr(1, "x").wr(2, "x").build()
        small = minimize_trace(
            trace, lambda t: HBDetector().analyze(t).dynamic_count > 0)
        assert len(small) == 2

"""Unit tests for the metrics instruments and registry (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)


class TestInstruments:
    def test_counter_counts(self):
        c = Counter("analysis.dc.events")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_gauge_set_and_track_max(self):
        g = Gauge("graph.nodes")
        g.set(10)
        g.track_max(5)
        assert g.value == 10
        g.track_max(25)
        assert g.value == 25
        g.set(3)
        assert g.value == 3

    def test_histogram_buckets_are_le_semantics(self):
        h = Histogram("vindicate.seconds", buckets=(1.0, 10.0))
        for v in (0.5, 1.0, 2.0, 100.0):
            h.observe(v)
        # counts[i] holds (bucket[i-1], bucket[i]]; last is overflow.
        assert h.counts == [2, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(103.5)
        doc = h.to_dict()
        assert doc["buckets"] == [1.0, 10.0]
        assert doc["counts"] == [2, 1, 1]

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))

    def test_default_buckets_are_strictly_increasing(self):
        for buckets in (DEFAULT_TIME_BUCKETS, DEFAULT_SIZE_BUCKETS):
            assert all(a < b for a, b in zip(buckets, buckets[1:]))


class TestRegistry:
    def test_memoizes_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")
        assert reg.gauge("a.b") is reg.gauge("a.b")
        assert reg.histogram("a.b") is reg.histogram("a.b")
        # Different kinds may share a name (separate namespaces).
        reg.counter("x").inc()
        reg.gauge("x").set(7)
        assert reg.counters()["x"] == 1
        assert reg.gauges()["x"] == 7

    def test_add_is_counter_shorthand(self):
        reg = MetricsRegistry()
        reg.add("runtime.events", 100)
        reg.add("runtime.events", 1)
        assert reg.counters() == {"runtime.events": 101}

    @pytest.mark.parametrize("bad", ["", "Upper.case", "a..b", ".a", "a.",
                                     "with-dash", "with space", "a.B.c"])
    def test_rejects_invalid_names(self, bad):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter(bad)

    def test_snapshot_shape_and_sorting(self):
        reg = MetricsRegistry()
        reg.add("b.second", 2)
        reg.add("a.first", 1)
        reg.gauge("g").set(5)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a.first", "b.second"]
        assert snap["gauges"] == {"g": 5}
        assert snap["histograms"]["h"]["count"] == 1
        assert reg.enabled is True


class TestMergeSnapshot:
    def test_merges_counters_gauges_histograms(self):
        worker = MetricsRegistry()
        worker.add("analysis.dc.events", 10)
        worker.gauge("graph.nodes").set(50)
        worker.histogram("h", buckets=(1.0, 10.0)).observe(0.5)
        worker.histogram("h", buckets=(1.0, 10.0)).observe(100.0)

        parent = MetricsRegistry()
        parent.add("analysis.dc.events", 5)
        parent.gauge("graph.nodes").set(80)
        parent.histogram("h", buckets=(1.0, 10.0)).observe(2.0)
        parent.merge_snapshot(worker.snapshot())

        assert parent.counters()["analysis.dc.events"] == 15
        assert parent.gauges()["graph.nodes"] == 80  # track_max semantics
        h = parent.histograms()["h"]
        assert h["count"] == 3
        assert h["counts"] == [1, 1, 1]
        assert h["sum"] == pytest.approx(102.5)

    def test_gauge_merge_takes_larger_worker_value(self):
        worker = MetricsRegistry()
        worker.gauge("graph.nodes").set(99)
        parent = MetricsRegistry()
        parent.gauge("graph.nodes").set(10)
        parent.merge_snapshot(worker.snapshot())
        assert parent.gauges()["graph.nodes"] == 99

    def test_merge_creates_missing_instruments(self):
        worker = MetricsRegistry()
        worker.add("only.in.worker", 7)
        parent = MetricsRegistry()
        parent.merge_snapshot(worker.snapshot())
        assert parent.counters() == {"only.in.worker": 7}

    def test_merge_is_associative_across_workers(self):
        parent_a = MetricsRegistry()
        parent_b = MetricsRegistry()
        snaps = []
        for value in (1, 2, 3):
            w = MetricsRegistry()
            w.add("c", value)
            snaps.append(w.snapshot())
        for snap in snaps:
            parent_a.merge_snapshot(snap)
        for snap in reversed(snaps):
            parent_b.merge_snapshot(snap)
        assert parent_a.counters() == parent_b.counters() == {"c": 6}

    def test_empty_snapshot_is_noop(self):
        parent = MetricsRegistry()
        parent.add("c", 1)
        parent.merge_snapshot({"counters": {}, "gauges": {},
                               "histograms": {}})
        assert parent.counters() == {"c": 1}

    def test_null_registry_merge_is_noop(self):
        NULL_REGISTRY.merge_snapshot({"counters": {"c": 1}, "gauges": {},
                                      "histograms": {}})
        assert NULL_REGISTRY.counters() == {}


class TestNullRegistry:
    def test_hands_out_shared_singletons(self):
        reg = NullMetricsRegistry()
        assert reg.counter("anything") is NULL_COUNTER
        assert reg.gauge("anything") is NULL_GAUGE
        assert reg.histogram("anything") is NULL_HISTOGRAM
        assert reg.enabled is False
        assert NULL_REGISTRY.enabled is False

    def test_all_operations_are_no_ops(self):
        reg = NULL_REGISTRY
        reg.add("a", 5)
        reg.counter("a").inc(10)
        reg.gauge("a").set(10)
        reg.gauge("a").track_max(10)
        reg.histogram("a").observe(10)
        assert reg.counters() == {}
        assert reg.gauges() == {}
        assert reg.histograms() == {}
        assert reg.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}}
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0
        assert NULL_HISTOGRAM.count == 0

    def test_null_registry_accepts_any_name(self):
        # No validation on the disabled path — it must cost nothing.
        NULL_REGISTRY.counter("NOT a valid name").inc()

"""Unit tests for the DC detector and its constraint-graph construction."""

import pytest

from repro.core.exceptions import MalformedTraceError
from repro.core.trace import TraceBuilder
from repro.analysis.dc import DCDetector
from repro.analysis.fasttrack import FastTrackDetector
from repro.analysis.hb import HBDetector
from repro.analysis.wcp import WCPDetector
from repro.traces.litmus import figure1, figure2


def races_of(trace):
    return [(r.first.eid, r.second.eid)
            for r in DCDetector().analyze(trace).races]


class TestDCWeakerThanWCP:
    def test_no_sync_order_join(self):
        # Passing through a lock does not DC-order (same as WCP).
        trace = (TraceBuilder()
                 .wr(1, "x").acq(1, "m").rel(1, "m")
                 .acq(2, "m").rel(2, "m").rd(2, "x")
                 .build())
        assert races_of(trace) == [(0, 5)]

    def test_no_hb_composition(self):
        # Figure 2: WCP orders the pair through HB composition; DC does not.
        trace = figure2()
        assert WCPDetector().analyze(trace).dynamic_count == 0
        assert races_of(trace) == [(0, 11)]

    def test_figure1_is_also_dc_race(self):
        assert races_of(figure1()) == [(0, 7)]

    def test_rule_a_still_orders(self):
        trace = (TraceBuilder()
                 .acq(1, "m").wr(1, "x").rel(1, "m")
                 .acq(2, "m").rd(2, "x").rel(2, "m")
                 .build())
        assert races_of(trace) == []

    def test_rule_b_with_po_composition(self):
        # rel1 ≺DC rel2 via rule (b), and PO carries the ordering to the
        # trailing read.
        trace = (TraceBuilder()
                 .acq(1, "m").wr(1, "y").wr(1, "x").rel(1, "m")
                 .acq(2, "m").rd(2, "y").rel(2, "m")
                 .rd(2, "x")
                 .build())
        assert races_of(trace) == []

    def test_fork_join_order_directly(self):
        trace = (TraceBuilder()
                 .wr(1, "x").fork(1, 2).rd(2, "x")
                 .wr(2, "y").join(3, 2).rd(3, "y")
                 .build())
        assert races_of(trace) == []

    def test_volatile_orders_directly(self):
        trace = (TraceBuilder()
                 .wr(1, "x").vwr(1, "v").vrd(2, "v").rd(2, "x").build())
        assert races_of(trace) == []


class TestSubsetProperty:
    @pytest.mark.parametrize("seed", range(20))
    def test_wcp_races_are_dc_races(self, seed):
        """Every access where WCP detects a race, DC detects one too."""
        from repro.traces.gen import random_trace, GeneratorConfig
        trace = random_trace(seed, GeneratorConfig(threads=3, events=30,
                                                   locks=2, variables=3))
        wcp = WCPDetector()
        wcp.analyze(trace)
        dc = DCDetector(build_graph=False)
        dc.analyze(trace)
        for eid, priors in wcp.racing_at.items():
            assert eid in dc.racing_at
            assert priors <= dc.racing_at[eid]

    @pytest.mark.parametrize("seed", range(20))
    def test_hb_races_are_wcp_races(self, seed):
        from repro.traces.gen import random_trace, GeneratorConfig
        trace = random_trace(seed, GeneratorConfig(threads=3, events=30,
                                                   locks=2, variables=3))
        hb = HBDetector()
        hb.analyze(trace)
        wcp = WCPDetector()
        wcp.analyze(trace)
        for eid, priors in hb.racing_at.items():
            assert eid in wcp.racing_at
            assert priors <= wcp.racing_at[eid]


class TestConstraintGraph:
    def test_reachability_matches_dc_clocks(self):
        """The paper's invariant: e ≺DC e' iff e ⇝G e'."""
        from repro.traces.gen import random_trace, GeneratorConfig
        for seed in range(8):
            trace = random_trace(seed, GeneratorConfig(threads=3, events=25,
                                                       locks=2, variables=2))
            det = DCDetector(build_graph=True)
            det.begin_trace(trace)
            snaps = []
            for e in trace:
                det.handle(e)
                snaps.append(det.clock_of(e.tid).copy())
            for j, ej in enumerate(trace):
                descendants = det.graph.descendants([j])
                for i in range(j):
                    ei = trace[i]
                    if ei.tid == ej.tid:
                        continue
                    clock_ordered = snaps[j].get(ei.tid) >= trace.local_time[i]
                    graph_ordered = j in det.graph.descendants([i])
                    assert clock_ordered == graph_ordered, (seed, i, j)
            assert descendants is not None  # silence lints

    def test_po_edges_chain_threads(self):
        trace = TraceBuilder().wr(1, "x").rd(1, "x").wr(2, "y").build()
        det = DCDetector()
        det.analyze(trace)
        assert det.graph.has_edge(0, 1)
        assert not det.graph.has_edge(1, 2)

    def test_rule_a_edge_from_release_to_access(self):
        trace = (TraceBuilder()
                 .acq(1, "m").wr(1, "x").rel(1, "m")
                 .acq(2, "m").rd(2, "x").rel(2, "m")
                 .build())
        det = DCDetector()
        det.analyze(trace)
        assert det.graph.has_edge(2, 4)  # rel(m)T1 -> rd(x)T2

    def test_edge_minimisation_skips_implied_edges(self):
        # The second read of x inside the same critical section is already
        # ordered; no duplicate rule (a) edge is added for it.
        trace = (TraceBuilder()
                 .acq(1, "m").wr(1, "x").rel(1, "m")
                 .acq(2, "m").rd(2, "x").rd(2, "x").rel(2, "m")
                 .build())
        det = DCDetector()
        det.analyze(trace)
        assert det.graph.has_edge(2, 4)
        assert not det.graph.has_edge(2, 5)

    def test_forced_race_edge_added(self):
        trace = TraceBuilder().wr(1, "x").wr(2, "x").build()
        det = DCDetector()
        det.analyze(trace)
        assert det.graph.has_edge(0, 1)

    def test_fork_edge_added(self):
        trace = TraceBuilder().fork(1, 2).wr(2, "x").build()
        det = DCDetector()
        det.analyze(trace)
        assert det.graph.has_edge(0, 1)

    def test_join_edge_added(self):
        trace = TraceBuilder().wr(2, "x").join(1, 2).build()
        det = DCDetector()
        det.analyze(trace)
        assert det.graph.has_edge(0, 1)

    def test_volatile_edges_added(self):
        trace = TraceBuilder().vwr(1, "v").vrd(2, "v").build()
        det = DCDetector()
        det.analyze(trace)
        assert det.graph.has_edge(0, 1)

    def test_graph_disabled(self):
        trace = TraceBuilder().wr(1, "x").wr(2, "x").build()
        det = DCDetector(build_graph=False)
        det.analyze(trace)
        assert det.graph.edge_count == 0

    def test_graph_counter(self):
        trace = (TraceBuilder()
                 .acq(1, "m").wr(1, "x").rel(1, "m")
                 .acq(2, "m").rd(2, "x").rel(2, "m")
                 .build())
        report = DCDetector().analyze(trace)
        assert report.counters.get("graph_edges", 0) >= 1


class TestMalformedStreams:
    """Regression: a malformed event stream must raise MalformedTraceError,
    not leak internal KeyError/AssertionError (streaming callers bypass
    Trace's construction-time validation)."""

    def test_release_without_acquire(self):
        trace = TraceBuilder().acq(1, "m").rel(1, "m").build()
        det = DCDetector()
        det.begin_trace(trace)
        # Feed the release without its acquire.
        with pytest.raises(MalformedTraceError) as exc:
            det.handle(trace.events[1])
        assert exc.value.event_index == 1

    def test_release_by_wrong_thread(self):
        trace = (TraceBuilder()
                 .acq(1, "m").rel(1, "m")
                 .acq(2, "m").rel(2, "m")
                 .build())
        det = DCDetector()
        det.begin_trace(trace)
        det.handle(trace.events[0])  # t1 acquires m ...
        with pytest.raises(MalformedTraceError):
            det.handle(trace.events[3])  # ... but t2 releases it

    def test_well_formed_stream_unaffected(self):
        trace = (TraceBuilder()
                 .acq(1, "m").wr(1, "x").rel(1, "m")
                 .acq(2, "m").rd(2, "x").rel(2, "m")
                 .build())
        assert DCDetector().analyze(trace).races == []


class TestChildlessForkJoin:
    """Regression: joining a child that never executed an event must still
    consume the pending fork — joining the parent's clock at the fork and
    adding the fork→join edge — instead of silently dropping both."""

    #: wr(x) by parent; fork of a child with no events; a third thread
    #: joins the child and reads x. The fork→join ordering makes the
    #: read race-free.
    def _trace(self):
        return (TraceBuilder()
                .wr(1, "x").fork(1, 2)
                .join(3, 2).rd(3, "x")
                .build())

    @pytest.mark.parametrize("detector_cls", [
        DCDetector, HBDetector, WCPDetector, FastTrackDetector,
    ], ids=lambda c: c.__name__)
    def test_no_race_through_childless_join(self, detector_cls):
        report = detector_cls().analyze(self._trace())
        assert report.races == []

    def test_fork_join_edge_added_to_graph(self):
        det = DCDetector()
        det.analyze(self._trace())
        assert det.graph.has_edge(1, 2)  # fork(1,2) -> join(3,2)

    def test_pending_fork_consumed(self):
        det = DCDetector()
        det.analyze(self._trace())
        assert det._pending_fork == {}

    def test_join_of_unforked_silent_thread_is_noop(self):
        trace = TraceBuilder().wr(1, "x").join(1, 9).build()
        report = DCDetector().analyze(trace)
        assert report.races == []


class TestTransitiveForceKnob:
    def test_dependent_race_suppressed_by_default(self):
        from repro.traces.litmus import figure4b
        det = DCDetector()
        report = det.analyze(figure4b())
        pairs = [(r.first.eid, r.second.eid) for r in report.races]
        assert (0, 4) not in pairs

    def test_dependent_race_surfaces_without_transitive_force(self):
        from repro.traces.litmus import figure4b
        det = DCDetector()
        det.transitive_force = False
        report = det.analyze(figure4b())
        pairs = [(r.first.eid, r.second.eid) for r in report.races]
        assert (0, 4) in pairs

"""Unit tests for the workload racy-idiom patterns.

Each pattern is checked under a *fixed* interleaving (threads run in a
deterministic order through the scheduler's round-robin policy with a
pinned seed, or via directly built traces), verifying that the idiom
produces the intended race class — the property the workloads rely on.
"""

from repro.analysis.races import RaceClass
from repro.core.trace import Trace
from repro.runtime.program import Op, Program, ops
from repro.runtime.workloads import patterns
from repro.vindicate.vindicator import Verdict, Vindicator


def interleave(*threads):
    """Build a trace by concatenating per-thread op lists sequentially —
    thread 1's ops first, then thread 2's, etc. (a fully serialised
    observed schedule, the common case for the publication patterns)."""
    from repro.core.events import Event, EventKind
    events = []
    for tid, op_list in enumerate(threads, start=1):
        for op in op_list:
            events.append(Event(len(events), tid, op.kind, op.target, op.loc))
    return Trace(events)


class TestNoRacePatterns:
    def test_locked_counter_is_race_free(self):
        t1 = list(patterns.locked_counter("m", "count", "A:1"))
        t2 = list(patterns.locked_counter("m", "count", "A:1"))
        report = Vindicator().run(interleave(t1, t2))
        assert report.dc.dynamic_count == 0

    def test_volatile_publication_is_race_free(self):
        producer = list(patterns.volatile_publish("flag", "data", "P:1"))
        consumer = list(patterns.volatile_consume("flag", "data", "C:1"))
        report = Vindicator().run(interleave(producer, consumer))
        assert report.dc.dynamic_count == 0

    def test_local_work_is_private(self):
        t1 = list(patterns.local_work("ns1", 5))
        t2 = list(patterns.local_work("ns2", 5))
        report = Vindicator().run(interleave(t1, t2))
        assert report.dc.dynamic_count == 0


class TestHBRacePattern:
    def test_unsynchronised_accesses_race(self):
        t1 = list(patterns.hb_racy_access("field", "W:1", write=True))
        t2 = list(patterns.hb_racy_access("field", "R:1", write=False))
        report = Vindicator(vindicate_all=True).run(interleave(t1, t2))
        assert report.dc.dynamic_count == 1
        assert report.dc.races[0].race_class is RaceClass.HB


class TestWCPOnlyPattern:
    def test_sync_separated_pair_is_wcp_only(self):
        writer = list(patterns.sync_separated_write(
            "pool", "buffer", "slotW", "W:1"))
        reader = list(patterns.sync_separated_read(
            "pool", "buffer", "slotR", "R:1"))
        report = Vindicator(vindicate_all=True).run(interleave(writer, reader))
        races = report.dc.races
        assert len(races) == 1
        # Ordered by the lock hand-off under HB, but not under WCP.
        assert races[0].race_class is RaceClass.WCP_ONLY
        assert report.vindications[0].verdict is Verdict.RACE


class TestDCOnlyPattern:
    def test_publication_chain_is_dc_only(self):
        producer = list(patterns.publication_escape(
            "pub", "entry", "slot", "P:1"))
        relay = list(patterns.publication_relay("pub", "slot", "relay", "M:1"))
        sink = list(patterns.publication_sink("relay", "entry", "S:1"))
        report = Vindicator().run(interleave(producer, relay, sink))
        assert len(report.dc_only_races) == 1
        v = report.vindications[0]
        assert v.verdict is Verdict.RACE

    def test_chain_without_relay_is_hb_race(self):
        # Without the relay's hand-off, the sink is HB-unordered too.
        producer = list(patterns.publication_escape(
            "pub", "entry", "slot", "P:1"))
        sink = [ops.rd("entry", loc="S:1")]
        report = Vindicator(vindicate_all=True).run(interleave(producer, sink))
        assert report.dc.races[-1].race_class is RaceClass.HB


class TestLSChainPattern:
    def test_ls_chain_needs_lock_semantics_constraint(self):
        # The litmus figure3 shape: interleave so the holder's section
        # surrounds the writer's pass-through.
        holder = list(patterns.ls_chain_holder("m", "root", "H:1", dwell=0))
        writer = list(patterns.ls_chain_writer("l", "root", "W:1", lead=0))
        late = list(patterns.ls_chain_late_reader("l", "m", "root", "L:1",
                                                  delay=0))
        from repro.core.events import Event
        events = []
        order = [(1, holder[0]),             # acq(m) holder
                 (2, writer[0]), (2, writer[1]),  # writer's l section
                 (2, writer[2]),             # wr(root)
                 (1, holder[1]),             # rd(root) inside m
                 (1, holder[2]),             # rel(m)
                 (3, late[0]), (3, late[1]), (3, late[2]),
                 (3, late[3]), (3, late[4])]
        for tid, op in order:
            events.append(Event(len(events), tid, op.kind, op.target, op.loc))
        trace = Trace(events)
        report = Vindicator().run(trace)
        dc_only = [v for v in report.vindications
                   if v.race.race_class is RaceClass.DC_ONLY]
        assert dc_only
        assert dc_only[0].verdict is Verdict.RACE
        assert dc_only[0].ls_constraints >= 1


class TestSchedulerIntegration:
    def test_patterns_compose_into_programs(self):
        def producer():
            yield from patterns.publication_escape("pub", "e", "s", "P:1")

        def relay():
            yield from patterns.publication_relay("pub", "s", "r", "M:1")

        def sink():
            yield from patterns.local_work("sink", 8)
            yield from patterns.publication_sink("r", "e", "S:1")

        def main():
            yield ops.fork("p", producer)
            yield ops.fork("m", relay)
            yield ops.fork("s", sink)
            for name in ("p", "m", "s"):
                yield ops.join(name)

        from repro.runtime import execute
        trace = execute(Program(name="t", main=main), seed=3)
        report = Vindicator().run(trace)
        for v in report.vindications:
            assert v.verdict is Verdict.RACE

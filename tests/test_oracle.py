"""Tests for the brute-force predictability oracle."""

import pytest

from repro.core.trace import TraceBuilder
from repro.vindicate.oracle import OracleBudgetExceededError, PredictabilityOracle
from repro.traces.litmus import figure1, figure2


class TestBasicPredictability:
    def test_adjacent_conflicting_events_are_predictable(self):
        trace = TraceBuilder().wr(1, "x").rd(2, "x").build()
        assert PredictabilityOracle(trace).predictable_pairs() == {(0, 1)}

    def test_no_conflicts_no_race(self):
        trace = TraceBuilder().wr(1, "x").rd(2, "y").build()
        assert not PredictabilityOracle(trace).has_predictable_race()

    def test_lock_protected_pair_not_predictable(self):
        trace = (TraceBuilder()
                 .acq(1, "m").wr(1, "x").rel(1, "m")
                 .acq(2, "m").rd(2, "x").rel(2, "m")
                 .build())
        assert not PredictabilityOracle(trace).has_predictable_race()

    def test_figure1_pair(self):
        assert PredictabilityOracle(figure1()).predictable_pairs() == {(0, 7)}

    def test_figure2_pair(self):
        assert PredictabilityOracle(figure2()).predictable_pairs() == {(0, 11)}

    def test_is_predictable_accepts_either_order(self):
        trace = figure1()
        oracle = PredictabilityOracle(trace)
        assert oracle.is_predictable(trace[0], trace[7])
        assert oracle.is_predictable(trace[7], trace[0])


class TestConstraintRespect:
    def test_ca_rule_blocks_reordering(self):
        # rd(y) must see wr(y); wr(x) and rd(x) can never be consecutive
        # because wr(y)/rd(y) must run in between.
        trace = (TraceBuilder()
                 .wr(1, "x").wr(1, "y")
                 .rd(2, "y").rd(2, "x")
                 .build())
        oracle = PredictabilityOracle(trace)
        assert (0, 3) not in oracle.predictable_pairs()

    def test_fork_edge_blocks_reordering(self):
        trace = TraceBuilder().wr(1, "x").fork(1, 2).rd(2, "x").build()
        assert not PredictabilityOracle(trace).has_predictable_race()

    def test_join_edge_blocks_reordering(self):
        trace = TraceBuilder().wr(2, "x").join(1, 2).rd(1, "x").build()
        assert not PredictabilityOracle(trace).has_predictable_race()

    def test_volatile_edge_blocks_reordering(self):
        trace = (TraceBuilder()
                 .wr(1, "x").vwr(1, "v").vrd(2, "v").rd(2, "x").build())
        assert not PredictabilityOracle(trace).has_predictable_race()

    def test_sync_order_does_not_block(self):
        # HB orders through the empty critical sections, but the oracle
        # knows the sections commute.
        trace = (TraceBuilder()
                 .wr(1, "x").acq(1, "m").rel(1, "m")
                 .acq(2, "m").rel(2, "m").rd(2, "x")
                 .build())
        assert PredictabilityOracle(trace).predictable_pairs() == {(0, 5)}

    def test_read_write_pair_in_either_role(self):
        trace = TraceBuilder().rd(1, "x").wr(2, "x").build()
        assert PredictabilityOracle(trace).predictable_pairs() == {(0, 1)}


class TestBudget:
    def test_budget_exceeded_raises(self):
        builder = TraceBuilder()
        for i in range(12):
            for t in (1, 2, 3, 4):
                builder.wr(t, f"priv{t}")
        with pytest.raises(OracleBudgetExceededError):
            PredictabilityOracle(builder.build(), max_states=50).predictable_pairs()

    def test_pairs_are_cached(self):
        trace = figure1()
        oracle = PredictabilityOracle(trace)
        first = oracle.predictable_pairs()
        assert oracle.predictable_pairs() is first

"""The example scripts must run cleanly (they are living documentation)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=300)


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "predictable race" in result.stdout
        assert "witness" in result.stdout

    def test_broken_cache_finds_dc_only_race(self):
        result = run_example("broken_cache.py", "5")
        assert result.returncode == 0, result.stderr
        assert "DC-only race(s)" in result.stdout
        assert "Cache.getNew():93" in result.stdout

    def test_offline_analysis(self):
        result = run_example("offline_analysis.py")
        assert result.returncode == 0, result.stderr
        assert "WCP: 1 static races" in result.stdout

    @pytest.mark.parametrize("workload", ["luindex", "h2"])
    def test_coverage_study(self, workload):
        result = run_example("coverage_study.py", workload, "2")
        assert result.returncode == 0, result.stderr
        assert "statically distinct races" in result.stdout

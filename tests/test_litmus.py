"""The litmus traces must have exactly the properties the paper (or this
reproduction's DESIGN notes) ascribes to them — validated against the
analyses, VindicateRace, and the brute-force oracle."""

import pytest

from repro.analysis.races import RaceClass
from repro.vindicate.oracle import PredictabilityOracle
from repro.vindicate.vindicator import Verdict, Vindicator
from repro.traces import litmus


def run(trace, transitive_force=True):
    return Vindicator(vindicate_all=True,
                      transitive_force=transitive_force).run(trace)


class TestFigure1:
    def test_hb_misses_wcp_finds(self):
        report = run(litmus.figure1())
        assert report.hb.dynamic_count == 0
        assert report.wcp.dynamic_count == 1
        assert report.dc.dynamic_count == 1

    def test_pair_and_predictability(self):
        trace = litmus.figure1()
        assert PredictabilityOracle(trace).predictable_pairs() == {(0, 7)}
        report = run(trace)
        assert report.vindications[0].verdict is Verdict.RACE


class TestFigure2:
    def test_wcp_misses_dc_finds(self):
        report = run(litmus.figure2())
        assert report.wcp.dynamic_count == 0
        assert report.dc.dynamic_count == 1
        assert report.dc.races[0].race_class is RaceClass.DC_ONLY

    def test_oracle_confirms(self):
        trace = litmus.figure2()
        assert PredictabilityOracle(trace).predictable_pairs() == {(0, 11)}

    def test_vindication_needs_no_ls_constraints(self):
        report = run(litmus.figure2())
        v = report.vindications[0]
        assert v.verdict is Verdict.RACE
        assert v.consecutive_edges == 1
        assert v.ls_constraints == 0


class TestFigure3:
    def test_dc_only_with_ls_constraint(self):
        report = run(litmus.figure3())
        dc_only = [v for v in report.vindications
                   if v.race.race_class is RaceClass.DC_ONLY]
        assert len(dc_only) == 1
        v = dc_only[0]
        assert (v.race.first.eid, v.race.second.eid) == (3, 8)
        assert v.verdict is Verdict.RACE
        assert v.ls_constraints >= 1

    def test_oracle_confirms_both_races(self):
        trace = litmus.figure3()
        pairs = PredictabilityOracle(trace).predictable_pairs()
        assert (3, 8) in pairs and (3, 4) in pairs


class TestRetryCase:
    def test_needs_missing_release_retry(self):
        report = run(litmus.retry_case())
        dc_only = [v for v in report.vindications
                   if v.race.race_class is RaceClass.DC_ONLY]
        assert len(dc_only) == 1
        assert dc_only[0].verdict is Verdict.RACE
        assert dc_only[0].attempts == 2

    def test_oracle_confirms(self):
        trace = litmus.retry_case()
        assert PredictabilityOracle(trace).is_predictable(trace[2], trace[10])


@pytest.mark.parametrize("factory,pair", [
    (litmus.figure4a, (2, 7)),
    (litmus.figure4b, (0, 4)),
])
class TestFalseRaces:
    def test_refuted_and_oracle_agrees(self, factory, pair):
        trace = factory()
        report = run(trace, transitive_force=False)
        refuted = [v for v in report.vindications
                   if (v.race.first.eid, v.race.second.eid) == pair]
        assert len(refuted) == 1
        assert refuted[0].verdict is Verdict.NO_RACE
        assert not PredictabilityOracle(trace).is_predictable(
            trace[pair[0]], trace[pair[1]])

    def test_suppressed_under_transitive_forcing(self, factory, pair):
        report = run(factory())
        pairs = [(v.race.first.eid, v.race.second.eid)
                 for v in report.vindications]
        assert pair not in pairs
        # And everything that *is* reported is a true race.
        assert all(v.verdict is Verdict.RACE for v in report.vindications)


class TestAppendixCGreedy:
    def test_latest_policy_succeeds(self):
        report = run(litmus.appendix_c_greedy())
        assert all(v.verdict is Verdict.RACE for v in report.vindications)

    def test_earliest_policy_hits_dont_know(self):
        report = Vindicator(vindicate_all=True,
                            policy="earliest").run(litmus.appendix_c_greedy())
        verdicts = {(v.race.first.eid, v.race.second.eid): v.verdict
                    for v in report.vindications}
        assert verdicts[(6, 7)] is Verdict.UNKNOWN

    def test_the_race_is_nonetheless_real(self):
        trace = litmus.appendix_c_greedy()
        assert PredictabilityOracle(trace).is_predictable(trace[6], trace[7])


class TestCatalogue:
    def test_all_names_resolve(self):
        for name, factory in litmus.ALL.items():
            trace = factory()
            assert len(trace) > 0, name

    def test_factories_return_fresh_traces(self):
        assert litmus.figure1() is not litmus.figure1()


class TestWCPDeadlock:
    """The hand-crafted WCP-race-that-is-a-deadlock execution."""

    def test_wcp_flags_but_vindicator_refutes(self):
        trace = litmus.wcp_deadlock()
        report = run(trace)
        assert report.hb.dynamic_count == 0
        assert report.wcp.dynamic_count == 1
        assert report.dc.dynamic_count == 1
        assert report.vindications[0].verdict is Verdict.NO_RACE
        # The refutation uses pure LS constraints (no earlier races).
        assert report.vindications[0].ls_constraints >= 1

    def test_oracle_sees_deadlock_not_race(self):
        trace = litmus.wcp_deadlock()
        oracle = PredictabilityOracle(trace)
        assert not oracle.has_predictable_race()
        assert oracle.has_predictable_deadlock()


class TestAppendixCIncomplete:
    """latest fails on a true race; other orders succeed (Appendix C)."""

    def test_latest_is_inconclusive(self):
        trace = litmus.appendix_c_incomplete()
        report = run(trace)
        verdicts = {(v.race.first.eid, v.race.second.eid): v.verdict
                    for v in report.vindications}
        assert verdicts[(10, 11)] is Verdict.UNKNOWN

    def test_earliest_finds_the_witness(self):
        trace = litmus.appendix_c_incomplete()
        report = Vindicator(vindicate_all=True, policy="earliest").run(trace)
        verdicts = {(v.race.first.eid, v.race.second.eid): v.verdict
                    for v in report.vindications}
        assert verdicts[(10, 11)] is Verdict.RACE

    def test_oracle_confirms_race_is_real(self):
        trace = litmus.appendix_c_incomplete()
        assert PredictabilityOracle(trace).is_predictable(trace[10], trace[11])

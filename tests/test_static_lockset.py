"""Unit tests for the lockset / thread-locality pre-analysis."""

import pytest

from repro.core.trace import TraceBuilder
from repro.static.lockset import (
    VariableVerdict,
    analyze_locksets,
    cross_check,
)
from repro.traces.litmus import ALL as LITMUS
from repro.vindicate.vindicator import Vindicator


class TestVerdicts:
    def test_thread_local(self):
        tr = TraceBuilder().wr(1, "x").rd(1, "x").wr(1, "x").build()
        res = analyze_locksets(tr.events)
        assert res.verdict_of("x") is VariableVerdict.THREAD_LOCAL
        assert res.variables["x"].reads == 1
        assert res.variables["x"].writes == 2

    def test_read_shared(self):
        tr = TraceBuilder().rd(1, "x").rd(2, "x").rd(3, "x").build()
        res = analyze_locksets(tr.events)
        assert res.verdict_of("x") is VariableVerdict.READ_SHARED

    def test_lock_protected(self):
        tr = (TraceBuilder()
              .acq(1, "m").wr(1, "x").rel(1, "m")
              .acq(2, "m").rd(2, "x").rel(2, "m")
              .build())
        res = analyze_locksets(tr.events)
        assert res.verdict_of("x") is VariableVerdict.LOCK_PROTECTED
        assert res.variables["x"].protected_by == frozenset(["m"])

    def test_lockset_is_the_intersection(self):
        tr = (TraceBuilder()
              .acq(1, "m").acq(1, "n").wr(1, "x").rel(1, "n").rel(1, "m")
              .acq(2, "n").rd(2, "x").rel(2, "n")
              .build())
        res = analyze_locksets(tr.events)
        assert res.variables["x"].protected_by == frozenset(["n"])
        assert res.verdict_of("x") is VariableVerdict.LOCK_PROTECTED

    def test_race_candidate_no_common_lock(self):
        tr = (TraceBuilder()
              .acq(1, "m").wr(1, "x").rel(1, "m")
              .acq(2, "n").wr(2, "x").rel(2, "n")
              .build())
        res = analyze_locksets(tr.events)
        assert res.verdict_of("x") is VariableVerdict.RACE_CANDIDATE

    def test_race_candidate_unprotected_write(self):
        tr = TraceBuilder().wr(1, "x").rd(2, "x").build()
        res = analyze_locksets(tr.events)
        assert res.verdict_of("x") is VariableVerdict.RACE_CANDIDATE

    def test_one_unprotected_access_spoils_the_lockset(self):
        tr = (TraceBuilder()
              .acq(1, "m").wr(1, "x").rel(1, "m")
              .rd(2, "x")
              .build())
        res = analyze_locksets(tr.events)
        assert res.verdict_of("x") is VariableVerdict.RACE_CANDIDATE

    def test_eraser_init_pattern_is_not_excused(self):
        # Classic Eraser would excuse an unsynchronised initialising
        # write followed by shared reads; predictively that write CAN
        # race with the reads, so it must stay a candidate.
        tr = (TraceBuilder()
              .wr(1, "x")
              .fork(1, 2)  # no ordering assumed by the *static* pass
              .rd(2, "x").rd(1, "x")
              .build())
        res = analyze_locksets(tr.events)
        assert res.verdict_of("x") is VariableVerdict.RACE_CANDIDATE

    def test_unseen_variable_defaults_thread_local(self):
        tr = TraceBuilder().wr(1, "x").build()
        assert analyze_locksets(tr.events).verdict_of("nope") is \
            VariableVerdict.THREAD_LOCAL

    def test_volatiles_are_not_variables(self):
        tr = TraceBuilder().vwr(1, "v").vrd(2, "v").build()
        assert "v" not in analyze_locksets(tr.events).variables

    def test_counts_and_summary(self):
        tr = (TraceBuilder()
              .wr(1, "a")
              .rd(1, "b").rd(2, "b")
              .wr(1, "c").wr(2, "c")
              .build())
        res = analyze_locksets(tr.events)
        counts = res.counts()
        assert counts[VariableVerdict.THREAD_LOCAL] == 1
        assert counts[VariableVerdict.READ_SHARED] == 1
        assert counts[VariableVerdict.RACE_CANDIDATE] == 1
        assert counts[VariableVerdict.LOCK_PROTECTED] == 0
        summary = res.summary()
        assert "3 variables" in summary
        assert "1 thread-local" in summary

    def test_race_candidates_set(self):
        tr = (TraceBuilder()
              .wr(1, "a")
              .wr(1, "x").wr(2, "x")
              .build())
        assert analyze_locksets(tr.events).race_candidates == \
            frozenset(["x"])


class TestSticky:
    def test_candidate_short_circuits_but_keeps_counting(self):
        b = TraceBuilder().wr(1, "x").wr(2, "x")
        for _ in range(10):
            b.rd(3, "x")
        res = analyze_locksets(b.build().events)
        info = res.variables["x"]
        assert info.verdict is VariableVerdict.RACE_CANDIDATE
        assert info.reads == 10
        assert info.writes == 2
        assert info.threads == frozenset([1, 2, 3])


class TestCrossCheck:
    @pytest.mark.parametrize("name", sorted(LITMUS))
    def test_litmus_races_are_candidates(self, name):
        trace = LITMUS[name]()
        res = analyze_locksets(trace.events)
        report = Vindicator(
            vindicate_all=True,
            transitive_force=not name.startswith("figure4")).run(trace)
        for analysis in (report.hb, report.wcp, report.dc):
            assert cross_check(analysis.races, res) == []

    def test_violation_is_reported(self):
        # Forge a "race" on a thread-local variable: the cross-check
        # must flag it.
        trace = (TraceBuilder()
                 .wr(1, "x").rd(1, "x")
                 .wr(1, "y").wr(2, "y")
                 .build())
        res = analyze_locksets(trace.events)
        report = Vindicator(vindicate_all=True).run(trace)
        assert report.dc.races, "setup: expected a race on y"
        from dataclasses import replace
        forged = [replace(r, first=trace[0], second=trace[1])
                  for r in report.dc.races[:1]]
        violations = cross_check(forged, res)
        assert len(violations) == 1
        assert "thread-local" in violations[0]

"""Unit tests for span tracing and the module-level obs switch."""

import time

from repro import obs
from repro.obs.memory import MemorySample, peak_rss_kb, sample
from repro.obs.spans import NULL_SPAN, NULL_TRACER, NullSpan, Tracer


class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer(sample_memory=False)
        with tracer.span("root"):
            with tracer.span("child_a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child_b"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert [c.name for c in root.children] == ["child_a", "child_b"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]
        assert tracer.depth == 0

    def test_child_times_sum_to_about_the_root(self):
        tracer = Tracer(sample_memory=False)
        with tracer.span("root"):
            with tracer.span("a"):
                time.sleep(0.01)
            with tracer.span("b"):
                time.sleep(0.01)
        root = tracer.roots[0]
        assert root.elapsed_seconds >= root.child_seconds
        # The uninstrumented gap inside the root is tiny.
        assert root.self_seconds < 0.5 * root.elapsed_seconds
        assert tracer.total_seconds() == root.elapsed_seconds

    def test_annotations(self):
        tracer = Tracer(sample_memory=False)
        with tracer.span("s") as sp:
            sp.annotate("events", 7)
            sp.count("hits")
            sp.count("hits", 2)
        assert sp.counts == {"events": 7, "hits": 3}

    def test_memory_sampling(self):
        tracer = Tracer(sample_memory=True)
        with tracer.span("s") as sp:
            pass
        assert isinstance(sp.mem_before, MemorySample)
        assert isinstance(sp.mem_after, MemorySample)
        assert sp.memory_delta().keys() >= {"peak_rss_kb"}

    def test_deep_memory_counts_gc_objects(self):
        deep = sample(deep=True)
        assert deep.gc_objects is not None and deep.gc_objects > 0
        shallow = sample(deep=False)
        assert shallow.gc_objects is None
        assert peak_rss_kb() > 0

    def test_to_dict_round_trip(self):
        tracer = Tracer(sample_memory=False)
        with tracer.span("root") as sp:
            sp.annotate("n", 1)
            with tracer.span("child"):
                pass
        doc = tracer.to_dicts()
        assert doc[0]["name"] == "root"
        assert doc[0]["counts"] == {"n": 1}
        assert doc[0]["children"][0]["name"] == "child"

    def test_on_close_streams_post_order_with_depth(self):
        closed = []
        tracer = Tracer(sample_memory=False,
                        on_close=lambda sp, d: closed.append((sp.name, d)))
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("aa"):
                    pass
            with tracer.span("b"):
                pass
        assert closed == [("aa", 2), ("a", 1), ("b", 1), ("root", 0)]

    def test_render_is_aligned_and_filters_by_min_ms(self):
        tracer = Tracer(sample_memory=False)
        with tracer.span("root"):
            with tracer.span("slow"):
                time.sleep(0.02)
            with tracer.span("fast"):
                pass
        text = tracer.render(min_ms=5.0)
        assert "root" in text and "slow" in text
        assert "fast" not in text
        assert "ms" in text and "%" in text


class TestNullPath:
    def test_null_tracer_hands_out_the_singleton(self):
        assert NULL_TRACER.span("x") is NULL_SPAN
        assert NULL_TRACER.render() == ""
        assert NULL_TRACER.total_seconds() == 0.0
        with NULL_TRACER.span("x") as sp:
            sp.annotate("a", 1)
            sp.count("b")
        assert isinstance(sp, NullSpan)

    def test_module_switch(self):
        assert not obs.enabled()
        assert obs.metrics().enabled is False
        assert obs.span("x") is NULL_SPAN
        try:
            reg = obs.enable()
            assert obs.enabled()
            assert obs.metrics() is reg
            with obs.span("x"):
                pass
            assert obs.tracer().roots[0].name == "x"
        finally:
            obs.disable()
        assert not obs.enabled()
        assert obs.span("x") is NULL_SPAN

    def test_session_restores_disabled_on_error(self):
        try:
            with obs.session():
                assert obs.enabled()
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not obs.enabled()

"""Unit tests for span tracing and the module-level obs switch."""

import time

from repro import obs
from repro.obs.memory import MemorySample, peak_rss_kb, sample
from repro.obs.spans import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    Tracer,
    span_from_dict,
)


class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer(sample_memory=False)
        with tracer.span("root"):
            with tracer.span("child_a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child_b"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert [c.name for c in root.children] == ["child_a", "child_b"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]
        assert tracer.depth == 0

    def test_child_times_sum_to_about_the_root(self):
        tracer = Tracer(sample_memory=False)
        with tracer.span("root"):
            with tracer.span("a"):
                time.sleep(0.01)
            with tracer.span("b"):
                time.sleep(0.01)
        root = tracer.roots[0]
        assert root.elapsed_seconds >= root.child_seconds
        # The uninstrumented gap inside the root is tiny.
        assert root.self_seconds < 0.5 * root.elapsed_seconds
        assert tracer.total_seconds() == root.elapsed_seconds

    def test_annotations(self):
        tracer = Tracer(sample_memory=False)
        with tracer.span("s") as sp:
            sp.annotate("events", 7)
            sp.count("hits")
            sp.count("hits", 2)
        assert sp.counts == {"events": 7, "hits": 3}

    def test_memory_sampling(self):
        tracer = Tracer(sample_memory=True)
        with tracer.span("s") as sp:
            pass
        assert isinstance(sp.mem_before, MemorySample)
        assert isinstance(sp.mem_after, MemorySample)
        assert sp.memory_delta().keys() >= {"peak_rss_kb"}

    def test_deep_memory_counts_gc_objects(self):
        deep = sample(deep=True)
        assert deep.gc_objects is not None and deep.gc_objects > 0
        shallow = sample(deep=False)
        assert shallow.gc_objects is None
        assert peak_rss_kb() > 0

    def test_to_dict_round_trip(self):
        tracer = Tracer(sample_memory=False)
        with tracer.span("root") as sp:
            sp.annotate("n", 1)
            with tracer.span("child"):
                pass
        doc = tracer.to_dicts()
        assert doc[0]["name"] == "root"
        assert doc[0]["counts"] == {"n": 1}
        assert doc[0]["children"][0]["name"] == "child"

    def test_on_close_streams_post_order_with_depth(self):
        closed = []
        tracer = Tracer(sample_memory=False,
                        on_close=lambda sp, d: closed.append((sp.name, d)))
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("aa"):
                    pass
            with tracer.span("b"):
                pass
        assert closed == [("aa", 2), ("a", 1), ("b", 1), ("root", 0)]

    def test_render_is_aligned_and_filters_by_min_ms(self):
        tracer = Tracer(sample_memory=False)
        with tracer.span("root"):
            with tracer.span("slow"):
                time.sleep(0.02)
            with tracer.span("fast"):
                pass
        text = tracer.render(min_ms=5.0)
        assert "root" in text and "slow" in text
        assert "fast" not in text
        assert "ms" in text and "%" in text


class TestGraft:
    """Worker span trees re-attach into the parent tracer (the parallel
    engine's observability merge)."""

    def _worker_payload(self):
        worker = Tracer(sample_memory=False)
        with worker.span("analysis.dc") as sp:
            sp.count("events", 5)
            with worker.span("analysis.dc.inner"):
                pass
        return worker.to_dicts()

    def test_span_from_dict_round_trips_shape(self):
        payload = self._worker_payload()
        tracer = Tracer(sample_memory=False)
        span = span_from_dict(payload[0], tracer)
        assert span.name == "analysis.dc"
        assert span.counts == {"events": 5}
        assert [c.name for c in span.children] == ["analysis.dc.inner"]
        assert span.elapsed_seconds >= 0.0

    def test_graft_under_open_span(self):
        tracer = Tracer(sample_memory=False)
        with tracer.span("pipeline.analysis"):
            tracer.graft(self._worker_payload())
        root = tracer.roots[0]
        assert root.name == "pipeline.analysis"
        assert [c.name for c in root.children] == ["analysis.dc"]
        assert [c.name for c in root.children[0].children] == \
            ["analysis.dc.inner"]

    def test_graft_with_no_open_span_adds_roots(self):
        tracer = Tracer(sample_memory=False)
        tracer.graft(self._worker_payload())
        assert [r.name for r in tracer.roots] == ["analysis.dc"]

    def test_graft_preserves_payload_order(self):
        worker_a = Tracer(sample_memory=False)
        with worker_a.span("a"):
            pass
        worker_b = Tracer(sample_memory=False)
        with worker_b.span("b"):
            pass
        tracer = Tracer(sample_memory=False)
        with tracer.span("parent"):
            tracer.graft(worker_a.to_dicts() + worker_b.to_dicts())
        assert [c.name for c in tracer.roots[0].children] == ["a", "b"]

    def test_graft_replays_on_close_post_order(self):
        closed = []
        tracer = Tracer(sample_memory=False,
                        on_close=lambda sp, d: closed.append((sp.name, d)))
        with tracer.span("parent"):
            tracer.graft(self._worker_payload())
        assert closed == [("analysis.dc.inner", 2), ("analysis.dc", 1),
                          ("parent", 0)]

    def test_null_tracer_graft_is_noop(self):
        assert NULL_TRACER.graft([{"name": "x"}]) == []

    def test_grafted_tree_renders(self):
        tracer = Tracer(sample_memory=False)
        with tracer.span("parent"):
            tracer.graft(self._worker_payload())
        text = tracer.render()
        assert "analysis.dc" in text


class TestNullPath:
    def test_null_tracer_hands_out_the_singleton(self):
        assert NULL_TRACER.span("x") is NULL_SPAN
        assert NULL_TRACER.render() == ""
        assert NULL_TRACER.total_seconds() == 0.0
        with NULL_TRACER.span("x") as sp:
            sp.annotate("a", 1)
            sp.count("b")
        assert isinstance(sp, NullSpan)

    def test_module_switch(self):
        assert not obs.enabled()
        assert obs.metrics().enabled is False
        assert obs.span("x") is NULL_SPAN
        try:
            reg = obs.enable()
            assert obs.enabled()
            assert obs.metrics() is reg
            with obs.span("x"):
                pass
            assert obs.tracer().roots[0].name == "x"
        finally:
            obs.disable()
        assert not obs.enabled()
        assert obs.span("x") is NULL_SPAN

    def test_session_restores_disabled_on_error(self):
        try:
            with obs.session():
                assert obs.enabled()
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not obs.enabled()

"""Tests for the correct-reordering checker (Definition 2.1)."""

import pytest

from repro.core.events import Event, EventKind
from repro.core.exceptions import MalformedReorderingError
from repro.core.trace import TraceBuilder
from repro.vindicate.verify import check_correct_reordering, check_witness
from repro.traces.litmus import figure1


def pick(trace, *eids):
    return [trace[i] for i in eids]


class TestMembership:
    def test_original_order_is_accepted(self):
        trace = figure1()
        check_correct_reordering(trace, list(trace))

    def test_prefix_is_accepted(self):
        trace = figure1()
        check_correct_reordering(trace, list(trace)[:4])

    def test_foreign_event_rejected(self):
        trace = figure1()
        alien = Event(99, 9, EventKind.WRITE, "q")
        with pytest.raises(MalformedReorderingError, match="not an event"):
            check_correct_reordering(trace, [alien])

    def test_duplicate_event_rejected(self):
        trace = figure1()
        with pytest.raises(MalformedReorderingError, match="twice"):
            check_correct_reordering(trace, [trace[0], trace[0]])


class TestPORule:
    def test_swapped_same_thread_events_rejected(self):
        trace = TraceBuilder().wr(1, "x").rd(1, "y").build()
        with pytest.raises(MalformedReorderingError) as err:
            check_correct_reordering(trace, [trace[1], trace[0]])
        assert err.value.rule == "PO"

    def test_gap_in_thread_prefix_rejected(self):
        trace = TraceBuilder().wr(1, "x").rd(1, "y").rd(1, "z").build()
        with pytest.raises(MalformedReorderingError) as err:
            check_correct_reordering(trace, [trace[0], trace[2]])
        assert err.value.rule == "PO"

    def test_dropping_a_suffix_is_fine(self):
        trace = TraceBuilder().wr(1, "x").rd(1, "y").rd(1, "z").build()
        check_correct_reordering(trace, [trace[0]])


class TestCARule:
    def test_swapped_conflicting_accesses_rejected(self):
        trace = TraceBuilder().wr(1, "x").rd(2, "x").build()
        with pytest.raises(MalformedReorderingError) as err:
            check_correct_reordering(trace, [trace[1], trace[0]])
        assert err.value.rule == "CA"

    def test_missing_conflicting_predecessor_rejected(self):
        trace = TraceBuilder().wr(1, "x").rd(2, "x").build()
        with pytest.raises(MalformedReorderingError) as err:
            check_correct_reordering(trace, [trace[1]])
        assert err.value.rule == "CA"

    def test_read_read_pairs_may_swap(self):
        trace = TraceBuilder().rd(1, "x").rd(2, "x").build()
        check_correct_reordering(trace, [trace[1], trace[0]])

    def test_interleaving_between_conflicts_allowed(self):
        trace = TraceBuilder().wr(1, "x").wr(1, "q").rd(2, "x").build()
        check_correct_reordering(trace, pick(trace, 0, 2))


class TestLSRule:
    def test_overlapping_critical_sections_rejected(self):
        trace = (TraceBuilder()
                 .acq(1, "m").rel(1, "m").acq(2, "m").rel(2, "m").build())
        with pytest.raises(MalformedReorderingError) as err:
            check_correct_reordering(trace, pick(trace, 0, 2, 1, 3))
        assert err.value.rule == "LS"

    def test_swapped_sections_accepted(self):
        trace = (TraceBuilder()
                 .acq(1, "m").rel(1, "m").acq(2, "m").rel(2, "m").build())
        check_correct_reordering(trace, pick(trace, 2, 3, 0, 1))

    def test_open_section_at_end_accepted(self):
        trace = (TraceBuilder()
                 .acq(1, "m").rel(1, "m").acq(2, "m").rel(2, "m").build())
        check_correct_reordering(trace, pick(trace, 0, 1, 2))

    def test_release_without_acquire_rejected(self):
        trace = TraceBuilder().acq(1, "m").rel(1, "m").build()
        # PO catches the missing acquire first (prefix rule).
        with pytest.raises(MalformedReorderingError):
            check_correct_reordering(trace, [trace[1]])


class TestThreadEdges:
    def test_child_without_fork_rejected(self):
        trace = TraceBuilder().fork(1, 2).wr(2, "x").build()
        with pytest.raises(MalformedReorderingError):
            check_correct_reordering(trace, [trace[1]])

    def test_fork_after_child_event_rejected(self):
        trace = TraceBuilder().fork(1, 2).wr(2, "x").build()
        with pytest.raises(MalformedReorderingError):
            check_correct_reordering(trace, [trace[1], trace[0]])

    def test_join_with_incomplete_child_rejected(self):
        trace = TraceBuilder().wr(2, "x").wr(2, "y").join(1, 2).build()
        with pytest.raises(MalformedReorderingError):
            check_correct_reordering(trace, pick(trace, 0, 2))

    def test_join_after_full_child_accepted(self):
        trace = TraceBuilder().wr(2, "x").wr(2, "y").join(1, 2).build()
        check_correct_reordering(trace, pick(trace, 0, 1, 2))

    def test_swapped_volatile_write_read_rejected(self):
        trace = TraceBuilder().vwr(1, "v").vrd(2, "v").build()
        with pytest.raises(MalformedReorderingError):
            check_correct_reordering(trace, pick(trace, 1, 0))

    def test_volatile_read_read_may_swap(self):
        trace = TraceBuilder().vrd(1, "v").vrd(2, "v").build()
        check_correct_reordering(trace, pick(trace, 1, 0))


class TestWitness:
    def test_valid_witness_accepted(self):
        trace = figure1()
        witness = pick(trace, 4, 5, 6, 0, 7)
        check_witness(trace, witness, trace[0], trace[7])

    def test_non_consecutive_witness_rejected(self):
        trace = figure1()
        witness = pick(trace, 0, 4, 5, 6, 7)
        with pytest.raises(MalformedReorderingError, match="consecutive"):
            check_witness(trace, witness, trace[0], trace[7])

    def test_non_conflicting_pair_rejected(self):
        trace = TraceBuilder().wr(1, "x").rd(2, "y").build()
        with pytest.raises(MalformedReorderingError, match="not conflicting"):
            check_witness(trace, list(trace), trace[0], trace[1])

    def test_witness_missing_racing_event_rejected(self):
        trace = TraceBuilder().wr(1, "x").rd(2, "x").build()
        with pytest.raises(MalformedReorderingError, match="omits"):
            check_witness(trace, [trace[0]], trace[0], trace[1])

"""Property tests for the soundness theorems the paper builds on.

The paper's soundness story rests on prior results it cites and uses:

* **HB soundness**: the *first* HB-race of an execution is always a
  predictable race (this is why non-predictive detectors are sound for
  the first race);
* **WCP soundness modulo deadlock** (Kini et al., used in Sections 2.3
  and 5.3): an execution with a WCP-race has a predictable race *or* a
  predictable deadlock. Note the statement is about the execution (its
  first race), not about every WCP-unordered pair — later pairs may
  depend on earlier races, which is exactly why the online detectors
  force order after reporting.

Both are checked against the brute-force reordering oracle, whose
deadlock detection is exercised directly as well.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.trace import TraceBuilder
from repro.analysis.reference import ReferenceAnalysis
from repro.vindicate.oracle import (
    OracleBudgetExceededError,
    PredictabilityOracle,
)
from repro.traces.gen import GeneratorConfig, random_trace

SETTINGS = settings(max_examples=50, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

small_configs = st.builds(
    GeneratorConfig,
    threads=st.integers(2, 4),
    events=st.integers(6, 14),
    variables=st.integers(1, 3),
    locks=st.integers(1, 3),
    max_nesting=st.integers(1, 2),
)


def oracle_for(trace):
    try:
        oracle = PredictabilityOracle(trace, max_states=120_000)
        oracle.predictable_pairs()
        return oracle
    except OracleBudgetExceededError:
        return None


class TestDeadlockOracle:
    def test_crossed_lock_order_is_predictable_deadlock(self):
        trace = (TraceBuilder()
                 .acq(1, "m").acq(1, "n").rel(1, "n").rel(1, "m")
                 .acq(2, "n").acq(2, "m").rel(2, "m").rel(2, "n")
                 .build())
        assert PredictabilityOracle(trace).has_predictable_deadlock()

    def test_consistent_lock_order_has_no_deadlock(self):
        trace = (TraceBuilder()
                 .acq(1, "m").acq(1, "n").rel(1, "n").rel(1, "m")
                 .acq(2, "m").acq(2, "n").rel(2, "n").rel(2, "m")
                 .build())
        assert not PredictabilityOracle(trace).has_predictable_deadlock()

    def test_single_lock_never_deadlocks(self):
        trace = (TraceBuilder()
                 .acq(1, "m").rel(1, "m").acq(2, "m").rel(2, "m").build())
        assert not PredictabilityOracle(trace).has_predictable_deadlock()

    def test_three_way_deadlock(self):
        trace = (TraceBuilder()
                 .acq(1, "a").acq(1, "b").rel(1, "b").rel(1, "a")
                 .acq(2, "b").acq(2, "c").rel(2, "c").rel(2, "b")
                 .acq(3, "c").acq(3, "a").rel(3, "a").rel(3, "c")
                 .build())
        assert PredictabilityOracle(trace).has_predictable_deadlock()

    def test_guard_lock_prevents_deadlock(self):
        # Both nests happen under a common guard: no deadlock possible.
        trace = (TraceBuilder()
                 .acq(1, "g").acq(1, "m").acq(1, "n").rel(1, "n").rel(1, "m")
                 .rel(1, "g")
                 .acq(2, "g").acq(2, "n").acq(2, "m").rel(2, "m").rel(2, "n")
                 .rel(2, "g")
                 .build())
        assert not PredictabilityOracle(trace).has_predictable_deadlock()


class TestHBFirstRaceSoundness:
    @SETTINGS
    @given(seed=st.integers(0, 10_000), config=small_configs)
    def test_first_hb_race_is_predictable(self, seed, config):
        trace = random_trace(seed, config)
        ref = ReferenceAnalysis(trace)
        races = ref.hb_races()
        if not races:
            return
        oracle = oracle_for(trace)
        if oracle is None:
            return
        first = min(races, key=lambda r: (r.second.eid, -r.first.eid))
        assert oracle.is_predictable(first.first, first.second)


class TestWCPSoundnessModuloDeadlock:
    @SETTINGS
    @given(seed=st.integers(0, 10_000), config=small_configs)
    def test_wcp_race_implies_race_or_deadlock(self, seed, config):
        trace = random_trace(seed, config)
        ref = ReferenceAnalysis(trace)
        if not ref.wcp_races():
            return
        oracle = oracle_for(trace)
        if oracle is None:
            return
        assert (oracle.has_predictable_race()
                or oracle.has_predictable_deadlock())

    @SETTINGS
    @given(seed=st.integers(0, 10_000), config=small_configs)
    def test_first_wcp_race_is_race_or_deadlock(self, seed, config):
        trace = random_trace(seed, config)
        ref = ReferenceAnalysis(trace)
        races = ref.wcp_races()
        if not races:
            return
        oracle = oracle_for(trace)
        if oracle is None:
            return
        first = min(races, key=lambda r: (r.second.eid, -r.first.eid))
        assert (oracle.is_predictable(first.first, first.second)
                or oracle.has_predictable_deadlock())

"""Unit and property tests for the dense array-backed clock kernel.

:class:`~repro.core.vectorclock_dense.DenseVectorClock` must be a
drop-in for the dict-backed :class:`~repro.core.vectorclock.VectorClock`
— same values after any operation sequence, same ``version`` contract
(``advance`` exempt), same protocol surface — plus the list kernels
(:func:`join_into_list` etc.) must agree with the object API they
shortcut.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.vectorclock import VectorClock
from repro.core.vectorclock_dense import (
    DenseVectorClock,
    TidTable,
    dominates_list,
    join_into_list,
    join_into_list_changed,
)

TIDS = [1, 2, 3, 4]


class TestTidTable:
    def test_interning_is_stable_and_dense(self):
        table = TidTable([3, 1])
        assert table.intern(3) == 0
        assert table.intern(1) == 1
        assert table.intern(7) == 2  # new tid gets the next index
        assert table.intern(7) == 2  # ... and keeps it
        assert table.tids == [3, 1, 7]
        assert len(table) == 3


class TestDenseBasics:
    def test_zero_clock(self):
        clock = DenseVectorClock(TidTable(TIDS))
        assert clock.get(1) == 0
        assert clock.get(99) == 0  # unknown tid is implicitly zero
        assert not clock
        assert len(clock) == 0
        assert clock.as_dict() == {}

    def test_set_get_advance_increment(self):
        clock = DenseVectorClock(TidTable(TIDS))
        clock.set(1, 5)
        assert clock.get(1) == 5 and clock.version == 1
        clock.advance(1, 6)
        assert clock.get(1) == 6 and clock.version == 1  # no bump
        assert clock.increment(2) == 1
        assert clock.get(2) == 1 and clock.version == 2

    def test_late_interned_tid_grows_storage(self):
        table = TidTable([1])
        clock = DenseVectorClock(table)
        table.intern(2)  # another clock's thread appears
        clock.set(2, 3)
        assert clock.get(2) == 3
        assert clock.as_dict() == {2: 3}

    def test_values_list_is_shared_not_copied(self):
        # Detector-internal views rely on this aliasing.
        table = TidTable(TIDS)
        backing = [1, 2, 0, 0]
        view = DenseVectorClock(table, values=backing)
        backing[2] = 9
        assert view.get(3) == 9
        assert view.copy().get(3) == 9
        view.copy()._values[2] = 0  # the copy, however, is detached
        assert view.get(3) == 9

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(DenseVectorClock(TidTable(TIDS)))

    def test_cross_representation_equality_and_join(self):
        dense = DenseVectorClock(TidTable(TIDS), clocks={1: 4, 3: 2})
        sparse = VectorClock({1: 4, 3: 2})
        assert dense == sparse
        assert dense.as_dict() == sparse.as_dict()
        other = DenseVectorClock(TidTable([9]), clocks={9: 1})
        assert dense.join(other)  # foreign-table join goes via __iter__
        assert dense.get(9) == 1


ops = st.lists(
    st.one_of(
        st.tuples(st.just("set"), st.sampled_from(TIDS), st.integers(0, 9)),
        st.tuples(st.just("advance"), st.sampled_from(TIDS),
                  st.integers(0, 9)),
        st.tuples(st.just("increment"), st.sampled_from(TIDS),
                  st.just(0)),
        st.tuples(st.just("join"), st.sampled_from(TIDS), st.just(0)),
    ),
    max_size=30,
)


class TestDifferentialVsSparse:
    @settings(max_examples=100, deadline=None)
    @given(script=ops)
    def test_same_values_and_versions_after_any_op_sequence(self, script):
        """Run one random operation script against both representations
        (per-thread clocks, joins between them) and demand identical
        values, domination results, and version deltas throughout."""
        table = TidTable(TIDS)
        dense = {t: DenseVectorClock(table) for t in TIDS}
        sparse = {t: VectorClock() for t in TIDS}
        for op, tid, arg in script:
            if op == "set":
                dense[tid].set(tid, arg)
                sparse[tid].set(tid, arg)
            elif op == "advance":
                dense[tid].advance(tid, arg)
                sparse[tid].advance(tid, arg)
            elif op == "increment":
                assert dense[tid].increment(tid) == sparse[tid].increment(tid)
            else:  # join tid's clock into every other thread's clock
                for other in TIDS:
                    if other != tid:
                        changed_d = dense[other].join(dense[tid])
                        changed_s = sparse[other].join(sparse[tid])
                        assert changed_d == changed_s
            for t in TIDS:
                assert dense[t] == sparse[t], (op, tid, arg)
                assert dense[t].version == sparse[t].version
                assert dict(iter(dense[t])) == dict(iter(sparse[t]))
                for u in TIDS:
                    assert (dense[t].dominates(dense[u])
                            == sparse[t].dominates(sparse[u]))


values_lists = st.lists(st.integers(0, 9), min_size=0, max_size=6)


class TestListKernels:
    @settings(max_examples=100, deadline=None)
    @given(a=values_lists, b=values_lists)
    def test_join_kernels_match_object_join(self, a, b):
        if len(b) > len(a):
            a, b = b, a  # kernels require len(src) <= len(dst)
        expected = [max(x, y) for x, y in zip(a, b)] + a[len(b):]
        got = a.copy()
        join_into_list(got, b)
        assert got == expected
        got2 = a.copy()
        changed = join_into_list_changed(got2, b)
        assert got2 == expected
        assert changed == (got2 != a)

    @settings(max_examples=100, deadline=None)
    @given(a=values_lists, b=values_lists)
    def test_dominates_list_matches_componentwise_definition(self, a, b):
        expected = all(
            y <= (a[i] if i < len(a) else 0) for i, y in enumerate(b))
        assert dominates_list(a, b) == expected

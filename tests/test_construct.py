"""Tests for CONSTRUCTREORDEREDTRACE / ATTEMPTTOCONSTRUCTTRACE."""

import pytest

from repro.analysis.dc import DCDetector
from repro.vindicate.add_constraints import add_constraints
from repro.vindicate.construct import construct_reordered_trace
from repro.vindicate.verify import check_witness
from repro.traces.litmus import appendix_c_greedy, figure1, figure2, retry_case


def prepared(trace, race_index=-1):
    det = DCDetector()
    report = det.analyze(trace)
    race = report.races[race_index]
    result = add_constraints(det.graph, trace, race.first, race.second)
    assert not result.refuted
    return det.graph, race


class TestConstruction:
    def test_figure1_witness(self):
        trace = figure1()
        graph, race = prepared(trace)
        witness, stats = construct_reordered_trace(
            graph, trace, race.first, race.second)
        assert witness is not None
        check_witness(trace, witness, race.first, race.second)
        assert stats.attempts == 1

    def test_figure2_witness_flips_critical_sections(self):
        trace = figure2()
        graph, race = prepared(trace)
        witness, _ = construct_reordered_trace(
            graph, trace, race.first, race.second)
        assert witness is not None
        check_witness(trace, witness, race.first, race.second)
        order = [e.eid for e in witness]
        # Thread 3's critical section on m (events 9/10) runs, while
        # thread 2's (events 7/8) is omitted entirely: the critical
        # sections effectively run in the opposite order, which WCP's
        # composition with synchronisation order can never allow.
        assert order.index(9) < order.index(11)
        assert 7 not in order and 8 not in order

    def test_witness_ends_with_racing_pair(self):
        trace = figure2()
        graph, race = prepared(trace)
        witness, _ = construct_reordered_trace(
            graph, trace, race.first, race.second)
        assert witness is not None
        assert witness[-2].eid == race.first.eid
        assert witness[-1].eid == race.second.eid

    def test_retry_pulls_in_missing_release(self):
        trace = retry_case()
        graph, race = prepared(trace)
        assert (race.first.eid, race.second.eid) == (2, 10)
        witness, stats = construct_reordered_trace(
            graph, trace, race.first, race.second)
        assert witness is not None
        check_witness(trace, witness, race.first, race.second)
        assert stats.attempts == 2
        assert stats.extra_releases == 1

    def test_placed_events_counted(self):
        trace = figure1()
        graph, race = prepared(trace)
        witness, stats = construct_reordered_trace(
            graph, trace, race.first, race.second)
        assert stats.placed_events == len(witness)


class TestPolicies:
    def test_unknown_policy_rejected(self):
        trace = figure1()
        graph, race = prepared(trace)
        with pytest.raises(ValueError, match="unknown policy"):
            construct_reordered_trace(graph, trace, race.first, race.second,
                                      policy="bogus")

    def test_latest_succeeds_where_earliest_fails(self):
        trace = appendix_c_greedy()
        det = DCDetector()
        report = det.analyze(trace)
        race = next(r for r in report.races
                    if (r.first.eid, r.second.eid) == (6, 7))
        result = add_constraints(det.graph, trace, race.first, race.second)
        assert not result.refuted
        latest, _ = construct_reordered_trace(
            det.graph, trace, race.first, race.second, policy="latest")
        assert latest is not None
        earliest, _ = construct_reordered_trace(
            det.graph, trace, race.first, race.second, policy="earliest")
        assert earliest is None

    def test_random_policy_is_seed_deterministic(self):
        trace = figure2()
        graph, race = prepared(trace)
        w1, _ = construct_reordered_trace(graph, trace, race.first,
                                          race.second, policy="random", seed=5)
        w2, _ = construct_reordered_trace(graph, trace, race.first,
                                          race.second, policy="random", seed=5)
        assert ([e.eid for e in w1] if w1 else None) == \
            ([e.eid for e in w2] if w2 else None)

    def test_every_successful_policy_yields_correct_witness(self):
        trace = figure2()
        graph, race = prepared(trace)
        for policy in ("latest", "earliest", "random"):
            witness, _ = construct_reordered_trace(
                graph, trace, race.first, race.second, policy=policy)
            if witness is not None:
                check_witness(trace, witness, race.first, race.second)

"""Local mirror of CI's mypy gate.

Runs the exact check the ``typecheck`` CI job runs (scope and strictness
come from pyproject's ``[tool.mypy]``: strict on repro.core,
repro.static, repro.traces).  Skipped when mypy is not installed — CI
always has it, so the gate cannot be dodged by uninstalling.
"""

from pathlib import Path

import pytest

mypy_api = pytest.importorskip("mypy.api")

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_strict_packages_type_check():
    stdout, stderr, status = mypy_api.run(
        ["--config-file", str(REPO_ROOT / "pyproject.toml")])
    assert status == 0, f"mypy failed:\n{stdout}\n{stderr}"

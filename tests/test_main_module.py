"""Smoke tests for packaging-level entry points and the public API."""

import subprocess
import sys

import repro


class TestPublicAPI:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_subpackage_alls_resolve(self):
        import repro.analysis
        import repro.core
        import repro.runtime
        import repro.stats
        import repro.traces
        import repro.vindicate
        for module in (repro.analysis, repro.core, repro.runtime,
                       repro.traces, repro.vindicate):
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), (module.__name__, name)


class TestMainModule:
    def test_python_dash_m_repro(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "litmus", "figure1"],
            capture_output=True, text=True, timeout=120)
        assert result.returncode == 0
        assert "WCP: 1 static races" in result.stdout

    def test_python_dash_m_repro_usage_error(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro"],
            capture_output=True, text=True, timeout=120)
        assert result.returncode != 0

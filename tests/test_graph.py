"""Unit tests for the constraint graph."""

import pytest

from repro.graph.constraint_graph import ConstraintGraph


def chain(*edges):
    g = ConstraintGraph()
    for src, dst in edges:
        g.add_edge(src, dst)
    return g


class TestMutation:
    def test_add_edge(self):
        g = ConstraintGraph()
        assert g.add_edge(0, 1) is True
        assert g.has_edge(0, 1)
        assert g.edge_count == 1

    def test_duplicate_edge_rejected(self):
        g = chain((0, 1))
        assert g.add_edge(0, 1) is False
        assert g.edge_count == 1

    def test_self_edge_rejected(self):
        with pytest.raises(ValueError):
            ConstraintGraph().add_edge(3, 3)

    def test_remove_edge(self):
        g = chain((0, 1), (1, 2))
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.has_edge(1, 2)
        assert not g.reaches(0, 2)

    def test_remove_missing_edge_is_noop(self):
        g = chain((0, 1))
        g.remove_edge(5, 6)
        assert g.edge_count == 1

    def test_num_events_grows(self):
        g = ConstraintGraph(2)
        g.add_edge(5, 9)
        assert g.num_events == 10

    def test_successors_predecessors(self):
        g = chain((0, 1), (0, 2), (3, 2))
        assert sorted(g.successors(0)) == [1, 2]
        assert sorted(g.predecessors(2)) == [0, 3]
        assert g.successors(99) == []

    def test_copy_is_independent(self):
        g = chain((0, 1))
        clone = g.copy()
        clone.add_edge(1, 2)
        assert not g.has_edge(1, 2)


class TestReachability:
    def test_reaches_direct_and_transitive(self):
        g = chain((0, 1), (1, 2))
        assert g.reaches(0, 1)
        assert g.reaches(0, 2)
        assert not g.reaches(2, 0)

    def test_reaches_self_only_on_cycle(self):
        g = chain((0, 1))
        assert not g.reaches(0, 0)
        g.add_edge(1, 0)
        assert g.reaches(0, 0)

    def test_descendants_strict(self):
        g = chain((0, 1), (1, 2), (3, 4))
        assert g.descendants([0]) == {1, 2}
        assert g.descendants([0], include_roots=True) == {0, 1, 2}

    def test_ancestors_strict(self):
        g = chain((0, 1), (1, 2))
        assert g.ancestors([2]) == {0, 1}
        assert g.ancestors([2], include_roots=True) == {0, 1, 2}

    def test_multi_root_ancestors(self):
        g = chain((0, 2), (1, 3))
        assert g.ancestors([2, 3]) == {0, 1}

    def test_root_on_cycle_is_its_own_ancestor(self):
        g = chain((0, 1), (1, 0))
        assert 0 in g.ancestors([0])


class TestCycleDetection:
    def test_acyclic_graph_has_no_cycle(self):
        g = chain((0, 1), (1, 2), (0, 2))
        assert g.find_cycle_reaching({2}) is None

    def test_cycle_reaching_target_found(self):
        g = chain((0, 1), (1, 0), (1, 2))
        cycle = g.find_cycle_reaching({2})
        assert cycle is not None
        assert set(cycle) >= {0, 1}

    def test_cycle_not_reaching_target_ignored(self):
        # Cycle 3<->4 does not constrain node 2 (Algorithm 1, line 20's
        # parenthetical: unreachable cycles are not disqualifying).
        g = chain((0, 1), (1, 2), (3, 4), (4, 3))
        assert g.find_cycle_reaching({2}) is None

    def test_cycle_through_target_itself(self):
        g = chain((0, 1), (1, 2), (2, 0))
        assert g.find_cycle_reaching({2}) is not None

    def test_long_cycle(self):
        edges = [(i, i + 1) for i in range(10)] + [(10, 0), (5, 99)]
        g = chain(*edges)
        assert g.find_cycle_reaching({99}) is not None

    def test_repr(self):
        assert "2 edges" in repr(chain((0, 1), (1, 2)))

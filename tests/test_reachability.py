"""Property and unit tests for the memoizing reachability engine.

The central property: across arbitrary interleavings of tagged-edge
adds/removes and queries — including the ``within`` window path —
:class:`ReachabilityIndex` answers every ``reaches`` / ``ancestors`` /
``descendants`` query exactly like the constraint graph's brute-force
BFS, while the BFS itself is validated against a naive edge-set
transitive closure.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.constraint_graph import ConstraintGraph
from repro.graph.reachability import ReachabilityIndex, mask_to_set

N_NODES = 14

# An operation script: add/remove edges interleaved with query probes.
_edge = st.tuples(st.integers(0, N_NODES - 1), st.integers(0, N_NODES - 1))
_op = st.one_of(
    st.tuples(st.just("add"), _edge),
    st.tuples(st.just("remove"), _edge),
    st.tuples(st.just("query"), _edge),
)
_window = st.one_of(
    st.none(),
    st.tuples(st.integers(0, N_NODES - 1), st.integers(0, N_NODES - 1))
    .map(lambda w: (min(w), max(w))),
)


def naive_strict_reach(edges, roots, within=None):
    """Strict reachable-set via plain BFS over an edge set (the oracle)."""
    succ = {}
    for s, d in edges:
        succ.setdefault(s, set()).add(d)
    seen = set()
    frontier = list(roots)
    while frontier:
        node = frontier.pop()
        for nxt in succ.get(node, ()):
            if nxt in seen:
                continue
            if within is not None and not within[0] <= nxt <= within[1]:
                continue
            seen.add(nxt)
            frontier.append(nxt)
    return seen


class TestPropertyAgainstBruteForce:
    @settings(max_examples=120, deadline=None)
    @given(ops=st.lists(_op, min_size=1, max_size=60), window=_window)
    def test_index_agrees_with_bfs_under_churn(self, ops, window):
        graph = ConstraintGraph()
        index = ReachabilityIndex(graph)
        edges = set()
        for op, (a, b) in ops:
            if op == "add" and a != b:
                graph.add_edge(a, b)
                edges.add((a, b))
            elif op == "remove":
                graph.remove_edge(a, b)
                edges.discard((a, b))
            else:
                # reaches must match the graph and the naive oracle.
                expected = b in naive_strict_reach(edges, [a])
                assert graph.reaches(a, b) == expected
                assert index.reaches(a, b) == expected
                # ancestors / descendants, strict and reflexive,
                # windowed and not.
                for within in (None, window):
                    for roots in ([a], [a, b]):
                        assert (index.descendants(roots, within=within)
                                == graph.descendants(roots, within=within))
                        assert (index.ancestors(roots, within=within)
                                == graph.ancestors(roots, within=within))
                        assert (index.descendants(roots, include_roots=True,
                                                  within=within)
                                == graph.descendants(roots, include_roots=True,
                                                     within=within))
                        assert (index.ancestors(roots, include_roots=True,
                                                within=within)
                                == graph.ancestors(roots, include_roots=True,
                                                   within=within))

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10_000), window=_window)
    def test_seeded_random_graph_full_sweep(self, seed, window):
        """Every (src, dst) pair on a random graph, after a random
        add/remove history, windowed and unwindowed."""
        rng = random.Random(seed)
        graph = ConstraintGraph()
        index = ReachabilityIndex(graph)
        edges = set()
        for _ in range(rng.randint(5, 40)):
            a, b = rng.randrange(N_NODES), rng.randrange(N_NODES)
            if a == b:
                continue
            if (a, b) in edges and rng.random() < 0.4:
                graph.remove_edge(a, b)
                edges.discard((a, b))
            else:
                graph.add_edge(a, b)
                edges.add((a, b))
        for src in range(N_NODES):
            assert (index.descendants([src], within=window)
                    == naive_strict_reach(edges, [src], within=window))
            for dst in range(N_NODES):
                assert index.reaches(src, dst) == graph.reaches(src, dst)


class TestIndexMechanics:
    def test_cache_hits_and_invalidation_counters(self):
        g = ConstraintGraph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        idx = ReachabilityIndex(g)
        assert idx.descendants([0]) == {1, 2}
        misses_after_first = idx.misses
        assert idx.descendants([0]) == {1, 2}
        assert idx.hits >= 1
        assert idx.misses == misses_after_first  # second query fully cached
        assert idx.invalidations == 0
        g.add_edge(2, 3)  # mutation invalidates on next query
        assert idx.descendants([0]) == {1, 2, 3}
        assert idx.invalidations == 1

    def test_removal_invalidates(self):
        g = ConstraintGraph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        idx = ReachabilityIndex(g)
        assert idx.reaches(0, 2)
        g.remove_edge(1, 2)
        assert not idx.reaches(0, 2)

    def test_tagged_edge_churn_round_trip(self):
        """The VindicateRace pattern: add tagged edges, query, remove
        them, query again — answers must track the graph exactly."""
        g = ConstraintGraph()
        for s, d in [(0, 1), (1, 2), (3, 4)]:
            g.add_edge(s, d)
        idx = ReachabilityIndex(g)
        assert not idx.reaches(0, 4)
        tagged = [(2, 3)]
        for s, d in tagged:
            g.add_edge(s, d)
        assert idx.reaches(0, 4)
        for s, d in reversed(tagged):
            g.remove_edge(s, d)
        assert not idx.reaches(0, 4)
        assert idx.invalidations >= 2

    def test_reaches_self_only_on_cycle(self):
        g = ConstraintGraph()
        g.add_edge(0, 1)
        idx = ReachabilityIndex(g)
        assert not idx.reaches(0, 0)
        g.add_edge(1, 0)
        assert idx.reaches(0, 0)

    def test_window_restricts_traversal_not_roots(self):
        # Mirrors test_window.py's semantics: roots expand even when
        # outside the window; discovered nodes are filtered.
        g = ConstraintGraph()
        g.add_edge(0, 5)
        g.add_edge(5, 10)
        g.add_edge(10, 20)
        idx = ReachabilityIndex(g)
        assert idx.descendants([0]) == {5, 10, 20}
        assert idx.descendants([0], within=(0, 10)) == {5, 10}
        assert idx.descendants([0], within=(0, 9)) == {5}
        assert idx.ancestors([10], within=(5, 10)) == {5}

    def test_sub_closure_reuse_is_exact(self):
        # Query an inner node first so the outer query absorbs its
        # cached closure; results must not differ from a cold query.
        g = ConstraintGraph()
        for s, d in [(0, 1), (1, 2), (2, 3), (1, 4), (4, 2)]:
            g.add_edge(s, d)
        idx = ReachabilityIndex(g)
        inner = idx.descendants([1])
        outer = idx.descendants([0])
        cold = ConstraintGraph()
        for s, d in [(0, 1), (1, 2), (2, 3), (1, 4), (4, 2)]:
            cold.add_edge(s, d)
        assert inner == cold.descendants([1])
        assert outer == cold.descendants([0])

    def test_masks_match_sets(self):
        g = ConstraintGraph()
        for s, d in [(0, 1), (1, 2), (5, 1)]:
            g.add_edge(s, d)
        idx = ReachabilityIndex(g)
        assert mask_to_set(idx.descendants_mask([0])) == idx.descendants([0])
        assert mask_to_set(idx.ancestors_mask([2])) == idx.ancestors([2])

    def test_out_of_range_nodes(self):
        g = ConstraintGraph()
        g.add_edge(0, 1)
        idx = ReachabilityIndex(g)
        assert idx.descendants([99]) == set()
        assert idx.ancestors([99]) == set()
        assert not idx.reaches(99, 0)

    def test_stats_dict_shape(self):
        idx = ReachabilityIndex(ConstraintGraph())
        assert set(idx.stats()) == {"reach_hits", "reach_misses",
                                    "reach_invalidations"}


class TestCheckpointRestore:
    """The vindicate-loop bracket: checkpoint, churn tagged edges,
    un-churn, restore — answers must match a never-churned index and the
    cache must come back warm."""

    EDGES = [(0, 1), (1, 2), (3, 4), (4, 5)]

    def _build(self):
        g = ConstraintGraph()
        for s, d in self.EDGES:
            g.add_edge(s, d)
        return g, ReachabilityIndex(g)

    def test_restore_after_balanced_churn_is_exact(self):
        g, idx = self._build()
        assert idx.descendants([0]) == {1, 2}
        cp = idx.checkpoint()
        g.add_edge(2, 3)  # the race's tagged edge
        assert idx.descendants([0]) == {1, 2, 3, 4, 5}
        g.remove_edge(2, 3)
        idx.restore(cp)
        assert idx.descendants([0]) == {1, 2}
        assert idx.descendants([3]) == {4, 5}
        assert idx.ancestors([5]) == {3, 4}

    def test_restore_resurrects_pruned_closures(self):
        g, idx = self._build()
        idx.descendants([0])  # warm node 0's closure
        cp = idx.checkpoint()
        g.add_edge(2, 3)  # invalidates node 0's closure chain
        idx.descendants([0])
        g.remove_edge(2, 3)
        idx.restore(cp)
        misses_before = idx.misses
        assert idx.descendants([0]) == {1, 2}
        assert idx.misses == misses_before  # served from restored cache

    def test_restore_keeps_untouched_closures_computed_after_checkpoint(self):
        g, idx = self._build()
        cp = idx.checkpoint()
        g.add_edge(2, 3)
        # 3→{4,5} is exact for the pristine graph too: churn never
        # touched it, so the prune-then-merge restore must keep it warm.
        idx.descendants([3])
        g.remove_edge(2, 3)
        idx.restore(cp)
        misses_before = idx.misses
        assert idx.descendants([3]) == {4, 5}
        assert idx.misses == misses_before

    def test_counters_survive_restore(self):
        g, idx = self._build()
        idx.descendants([0])
        cp = idx.checkpoint()
        hits, misses = idx.hits, idx.misses
        g.add_edge(2, 3)
        idx.descendants([0])
        g.remove_edge(2, 3)
        idx.restore(cp)
        assert idx.misses >= misses  # counters accumulate, never reset
        assert idx.hits >= hits

    def test_randomised_churn_round_trips(self):
        rng = random.Random(42)
        g = ConstraintGraph()
        edges = set()
        for _ in range(25):
            s, d = rng.randrange(N_NODES), rng.randrange(N_NODES)
            if s != d and (s, d) not in edges:
                g.add_edge(s, d)
                edges.add((s, d))
        idx = ReachabilityIndex(g)
        for node in range(0, N_NODES, 3):
            idx.descendants([node])
        for trial in range(10):
            cp = idx.checkpoint()
            tagged = []
            for _ in range(rng.randrange(1, 5)):
                s, d = rng.randrange(N_NODES), rng.randrange(N_NODES)
                if s != d and (s, d) not in edges:
                    g.add_edge(s, d)
                    edges.add((s, d))
                    tagged.append((s, d))
            idx.descendants([rng.randrange(N_NODES)])
            for s, d in reversed(tagged):
                g.remove_edge(s, d)
                edges.discard((s, d))
            idx.restore(cp)
            for node in range(N_NODES):
                assert idx.descendants([node]) == \
                    naive_strict_reach(edges, [node])


class TestStateExportImport:
    def test_round_trip_serves_queries_without_misses(self):
        g = ConstraintGraph()
        for s, d in [(0, 1), (1, 2), (2, 3)]:
            g.add_edge(s, d)
        exporter = ReachabilityIndex(g)
        exporter.descendants([0])
        exporter.ancestors([3])
        state = exporter.export_state()

        offsets, targets = g.to_arrays()
        clone = ConstraintGraph.from_arrays(offsets, targets)
        importer = ReachabilityIndex(clone)
        importer.import_state(state)
        misses_before = importer.misses
        assert importer.descendants([0]) == {1, 2, 3}
        assert importer.ancestors([3]) == {0, 1, 2}
        assert importer.misses == misses_before

    def test_state_is_picklable(self):
        import pickle
        g = ConstraintGraph()
        g.add_edge(0, 1)
        idx = ReachabilityIndex(g)
        idx.descendants([0])
        state = pickle.loads(pickle.dumps(idx.export_state()))
        assert set(state) == {"fwd", "bwd"}

    def test_empty_state_import_is_noop(self):
        g = ConstraintGraph()
        g.add_edge(0, 1)
        idx = ReachabilityIndex(g)
        idx.import_state({"fwd": {}, "bwd": {}})
        assert idx.descendants([0]) == {1}


class TestVindicatorSurfacesCounters:
    def test_counters_reach_dc_report(self):
        from repro.traces.litmus import figure2
        from repro.vindicate.vindicator import Vindicator
        report = Vindicator().run(figure2())
        assert report.vindications, "figure2 must produce a DC-only race"
        counters = report.dc.counters
        assert counters.get("reach_misses", 0) > 0

    def test_index_shared_across_races_in_serial_loop(self):
        # One ReachabilityIndex serves the whole vindication loop; the
        # checkpoint/restore bracket keeps it warm between races, so a
        # multi-race run must record far more hits than misses.
        from repro.runtime import execute
        from repro.runtime.workloads import WORKLOADS
        from repro.vindicate.vindicator import Vindicator
        trace = execute(WORKLOADS["avrora"](scale=0.4), seed=0)
        report = Vindicator(vindicate_all=True).run(trace)
        assert len(report.vindications) > 5
        counters = report.dc.counters
        assert counters["reach_hits"] > counters["reach_misses"]


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])

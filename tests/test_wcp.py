"""Unit tests for the WCP detector (Definition 2.6 semantics)."""

from repro.core.trace import TraceBuilder
from repro.analysis.wcp import WCPDetector
from repro.traces.litmus import figure1, figure2


def races_of(trace):
    return [(r.first.eid, r.second.eid)
            for r in WCPDetector().analyze(trace).races]


class TestRuleA:
    def test_conflicting_critical_sections_order(self):
        # wr(x) and rd(x) both inside critical sections on m: rule (a)
        # orders rel1 before rd(x), so no WCP-race.
        trace = (TraceBuilder()
                 .acq(1, "m").wr(1, "x").rel(1, "m")
                 .acq(2, "m").rd(2, "x").rel(2, "m")
                 .build())
        assert races_of(trace) == []

    def test_read_read_critical_sections_do_not_order(self):
        # Reads do not conflict, so rule (a) does not fire; the write
        # after the sections races with the first read.
        trace = (TraceBuilder()
                 .acq(1, "m").rd(1, "x").rel(1, "m")
                 .acq(2, "m").rd(2, "x").rel(2, "m")
                 .wr(3, "x")
                 .build())
        det = WCPDetector()
        report = det.analyze(trace)
        # Only the shortest race is recorded, but both reads are racing.
        assert [(r.first.eid, r.second.eid) for r in report.races] == [(4, 6)]
        assert det.racing_at[6] == frozenset({1, 4})

    def test_empty_critical_sections_do_not_order(self):
        # Unlike HB, passing through the same lock does not order.
        trace = (TraceBuilder()
                 .wr(1, "x").acq(1, "m").rel(1, "m")
                 .acq(2, "m").rel(2, "m").rd(2, "x")
                 .build())
        assert races_of(trace) == [(0, 5)]

    def test_figure1_wcp_race(self):
        assert races_of(figure1()) == [(0, 7)]

    def test_rule_a_left_hb_composition(self):
        # Everything HB-before the earlier section's release is
        # WCP-before the conflicting access: the escaped write of x is
        # PO-before rel(m), hence ordered before the read of x *inside*
        # the second section... but x is only read outside any section,
        # so here we check y's protection orders the trailing read.
        trace = (TraceBuilder()
                 .wr(1, "x")
                 .acq(1, "m").wr(1, "y").rel(1, "m")
                 .acq(2, "m").rd(2, "y").rel(2, "m")
                 .rd(2, "y")
                 .build())
        # y's accesses are ordered by rule (a); the trailing unprotected
        # rd(y) is ordered after wr(y) through left/right HB composition.
        assert all(pair[1] != 7 for pair in races_of(trace))


class TestRuleB:
    def test_release_release_ordering(self):
        # A(r1) ≺WCP r2 (via a conflict on y) implies r1 ≺WCP r2; combined
        # with HB composition this orders the x accesses.
        trace = (TraceBuilder()
                 .acq(1, "m").wr(1, "y").wr(1, "x").rel(1, "m")
                 .acq(2, "m").rd(2, "y").rel(2, "m")
                 .rd(2, "x")
                 .build())
        assert races_of(trace) == []


class TestHBComposition:
    def test_right_composition_through_lock(self):
        # rel(o)1 ≺WCP rd(y)2 and rd(y)2 ≺HB rd(x)3 via the m hand-off:
        # wr(x) is WCP-ordered before rd(x) (figure 2: no WCP race).
        assert races_of(figure2()) == []

    def test_composition_through_fork(self):
        trace = (TraceBuilder()
                 .wr(1, "x").fork(1, 2).rd(2, "x").build())
        assert races_of(trace) == []

    def test_composition_through_join(self):
        trace = (TraceBuilder()
                 .wr(2, "x").join(1, 2).rd(1, "x").build())
        assert races_of(trace) == []

    def test_composition_through_volatile(self):
        trace = (TraceBuilder()
                 .wr(1, "x").vwr(1, "v").vrd(2, "v").rd(2, "x").build())
        assert races_of(trace) == []

    def test_volatile_without_edge_does_not_order(self):
        trace = (TraceBuilder()
                 .wr(1, "x").vrd(2, "v").rd(2, "x").build())
        assert races_of(trace) == [(0, 2)]


class TestWCPWeakerThanHB:
    def test_every_wcp_race_is_detected_where_hb_is_silent(self):
        # Figure 1: HB finds nothing, WCP finds the race.
        from repro.analysis.hb import HBDetector
        trace = figure1()
        assert HBDetector().analyze(trace).dynamic_count == 0
        assert WCPDetector().analyze(trace).dynamic_count == 1

    def test_hb_race_is_always_wcp_race(self):
        trace = TraceBuilder().wr(1, "x").wr(2, "x").build()
        assert races_of(trace) == [(0, 1)]


class TestOwnThreadRuleB:
    def test_same_thread_critical_sections_feed_left_composition(self):
        # Thread 2's first section is WCP-ordered before its second
        # release through a cross-thread conflict chain; rule (b) then
        # orders the releases even though they belong to one thread, and
        # left HB composition makes earlier T1 events WCP-predecessors.
        trace = (TraceBuilder()
                 .wr(1, "z")
                 .acq(1, "m").wr(1, "y").rel(1, "m")
                 .acq(2, "m").rd(2, "y").rel(2, "m")
                 .acq(2, "m").rel(2, "m")
                 .rd(2, "z")
                 .build())
        det = WCPDetector()
        det.analyze(trace)
        # wr(z) must be WCP-ordered before thread 2's current point.
        assert det.ordered_to_current(trace[0], 2)


class TestQueries:
    def test_ordered_to_current_same_thread_is_po(self):
        trace = TraceBuilder().wr(1, "x").rd(1, "x").build()
        det = WCPDetector()
        det.analyze(trace)
        assert det.ordered_to_current(trace[0], 1)

    def test_clock_of_unknown_thread(self):
        det = WCPDetector()
        det.analyze(TraceBuilder().wr(1, "x").build())
        assert det.clock_of("nope") is None

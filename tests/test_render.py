"""Tests for the paper-style column renderer."""

from repro.core.trace import TraceBuilder
from repro.traces.litmus import figure1
from repro.traces.render import render_columns, render_witness


class TestRenderColumns:
    def test_threads_become_columns(self):
        trace = TraceBuilder().wr(1, "x").rd(2, "x").build()
        text = render_columns(trace)
        lines = text.splitlines()
        assert lines[0].split() == ["Thread", "1", "Thread", "2"]
        assert "wr(x)" in lines[2]
        assert "rd(x)" in lines[3]
        # Thread 2's event is indented into the second column.
        assert lines[3].index("rd(x)") > 0

    def test_time_flows_downward(self):
        trace = figure1()
        text = render_columns(trace)
        lines = text.splitlines()
        assert len(lines) == 2 + len(trace)  # header + rule + one row each

    def test_highlight_marks_rows(self):
        trace = TraceBuilder().wr(1, "x").rd(2, "x").build()
        text = render_columns(trace, highlight=[0, 1])
        assert text.count("<== race") == 2

    def test_column_order_is_first_appearance(self):
        trace = TraceBuilder().wr(3, "a").wr(1, "b").build()
        header = render_columns(trace).splitlines()[0]
        assert header.index("Thread 3") < header.index("Thread 1")

    def test_empty_sequence(self):
        assert render_columns([]) == "(empty trace)"

    def test_events_without_target(self):
        trace = TraceBuilder().begin(1).wr(1, "x").end(1).build()
        text = render_columns(trace)
        assert "begin" in text and "end" in text

    def test_wide_labels_widen_columns(self):
        trace = (TraceBuilder()
                 .wr(1, "a.very.long.variable.name").rd(2, "x").build())
        lines = render_columns(trace).splitlines()
        assert "rd(x)" in lines[3]


class TestRenderWitness:
    def test_racing_pair_highlighted(self):
        trace = figure1()
        witness = [trace[4], trace[5], trace[6], trace[0], trace[7]]
        text = render_witness(witness, trace[0], trace[7])
        assert text.count("<== race") == 2
        # The two racing rows are the last two.
        marked = [line for line in text.splitlines() if "<== race" in line]
        assert "wr(x)" in marked[0]
        assert "rd(x)" in marked[1]

"""Tests for ADDCONSTRAINTS (Algorithm 1, lines 11–23)."""

from repro.analysis.dc import DCDetector
from repro.vindicate.add_constraints import add_constraints
from repro.traces.litmus import figure2, figure3, figure4a, figure4b


def graph_and_race(trace, transitive_force=True, race_index=-1):
    det = DCDetector()
    det.transitive_force = transitive_force
    report = det.analyze(trace)
    return det.graph, report.races[race_index]


class TestConsecutiveEventConstraints:
    def test_figure2_adds_exactly_one_edge(self):
        """The paper's Figure 5(a) walk-through: only one consecutive-event
        edge, from rd(x)'s predecessor rel(m) to wr(x), and no LS edges."""
        trace = figure2()
        graph, race = graph_and_race(trace)
        before = graph.edge_count
        result = add_constraints(graph, trace, race.first, race.second)
        assert result.consecutive_edges == 1
        assert result.ls_edges == 0
        assert not result.refuted
        assert graph.has_edge(10, 0)  # rel(m)T3 -> wr(x)T1
        for src, dst in reversed(result.added_edges):
            graph.remove_edge(src, dst)
        assert graph.edge_count == before

    def test_edges_recorded_for_removal(self):
        trace = figure2()
        graph, race = graph_and_race(trace)
        result = add_constraints(graph, trace, race.first, race.second)
        assert len(result.added_edges) == result.consecutive_edges + result.ls_edges
        for edge in result.added_edges:
            assert graph.has_edge(*edge)


class TestLSConstraints:
    def test_figure3_adds_ls_constraint(self):
        trace = figure3()
        graph, race = graph_and_race(trace)  # the DC-only race (3, 8)
        result = add_constraints(graph, trace, race.first, race.second)
        assert not result.refuted
        assert result.ls_edges >= 1
        # The LS edge fully orders the critical sections on l: from
        # rel(l)T2 (event 2) to acq(l)T3 (event 6).
        assert graph.has_edge(2, 6)
        for src, dst in reversed(result.added_edges):
            graph.remove_edge(src, dst)


class TestCycleDetection:
    def test_figure4a_cycle_refutes(self):
        trace = figure4a()
        graph, race = graph_and_race(trace, transitive_force=False)
        assert (race.first.eid, race.second.eid) == (2, 7)
        result = add_constraints(graph, trace, race.first, race.second)
        assert result.refuted
        assert result.cycle
        for src, dst in reversed(result.added_edges):
            graph.remove_edge(src, dst)

    def test_figure4b_cycle_refutes_without_locks(self):
        trace = figure4b()
        graph, race = graph_and_race(trace, transitive_force=False)
        assert (race.first.eid, race.second.eid) == (0, 4)
        result = add_constraints(graph, trace, race.first, race.second)
        assert result.refuted
        # No lock-semantics constraints involved: the cycle comes from
        # conflicting-access (forced-order) edges alone.
        assert result.ls_edges == 0

    def test_cycle_nodes_reach_the_race(self):
        trace = figure4b()
        graph, race = graph_and_race(trace, transitive_force=False)
        result = add_constraints(graph, trace, race.first, race.second)
        assert result.cycle is not None
        targets = {race.first.eid, race.second.eid}
        reach = graph.ancestors(targets, include_roots=True)
        assert any(node in reach for node in result.cycle)
        for src, dst in reversed(result.added_edges):
            graph.remove_edge(src, dst)


class TestConvergence:
    def test_rounds_reported(self):
        trace = figure3()
        graph, race = graph_and_race(trace)
        result = add_constraints(graph, trace, race.first, race.second)
        assert result.rounds >= 1
        for src, dst in reversed(result.added_edges):
            graph.remove_edge(src, dst)

    def test_no_duplicate_edges_added(self):
        trace = figure3()
        graph, race = graph_and_race(trace)
        result = add_constraints(graph, trace, race.first, race.second)
        assert len(set(result.added_edges)) == len(result.added_edges)
        for src, dst in reversed(result.added_edges):
            graph.remove_edge(src, dst)

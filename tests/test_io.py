"""Tests for the text trace format."""

import io

import pytest

from repro.core.exceptions import TraceFormatError
from repro.core.events import EventKind
from repro.traces.io import (
    dump_trace,
    dumps_trace,
    load_events,
    load_trace,
    loads_trace,
)
from repro.traces.litmus import ALL as LITMUS
from repro.traces.gen import GeneratorConfig, random_trace


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(LITMUS))
    def test_litmus_round_trip(self, name):
        original = LITMUS[name]()
        text = dumps_trace(original)
        reloaded = loads_trace(text)
        assert len(reloaded) == len(original)
        for a, b in zip(original, reloaded):
            assert a.kind == b.kind
            assert str(a.target) == str(b.target) or (a.target is None
                                                      and b.target is None)

    def test_random_trace_round_trip_with_locs(self):
        trace = random_trace(3, GeneratorConfig(threads=3, events=25,
                                                volatiles=1,
                                                use_fork_join=True))
        reloaded = loads_trace(dumps_trace(trace))
        assert [e.kind for e in reloaded] == [e.kind for e in trace]

    def test_file_round_trip(self, tmp_path):
        trace = LITMUS["figure1"]()
        path = tmp_path / "trace.txt"
        dump_trace(trace, path)
        assert len(load_trace(path)) == len(trace)

    def test_stream_round_trip(self):
        trace = LITMUS["figure2"]()
        buffer = io.StringIO()
        dump_trace(trace, buffer)
        buffer.seek(0)
        assert len(load_trace(buffer)) == len(trace)

    def test_locations_preserved(self):
        text = "T1 wr x Loader.load():42\n"
        trace = loads_trace(text)
        assert trace[0].loc == "Loader.load():42"


class TestFormat:
    def test_comments_and_blanks_ignored(self):
        text = "# a comment\n\nT1 wr x\n   \nT2 rd x\n"
        assert len(loads_trace(text)) == 2

    def test_header_written(self):
        assert dumps_trace(LITMUS["figure1"]()).startswith("# repro trace")

    def test_begin_end_have_no_target(self):
        text = "T1 begin\nT1 wr x\nT1 end\n"
        trace = loads_trace(text)
        assert trace[0].target is None
        assert trace[2].target is None


class TestErrors:
    def test_unknown_operation(self):
        with pytest.raises(TraceFormatError, match="unknown operation"):
            loads_trace("T1 frobnicate x\n")

    def test_missing_target(self):
        with pytest.raises(TraceFormatError, match="needs a target"):
            loads_trace("T1 wr\n")

    def test_short_line(self):
        with pytest.raises(TraceFormatError, match="expected"):
            loads_trace("T1\n")

    def test_line_number_reported(self):
        with pytest.raises(TraceFormatError, match="line 3"):
            loads_trace("T1 wr x\nT2 rd x\nbogus\n")

    def test_structural_validation(self):
        with pytest.raises(TraceFormatError, match="invalid trace"):
            loads_trace("T1 rel m\n")

    def test_validation_can_be_skipped(self):
        trace = loads_trace("T1 acq m\nT1 acq n\nT1 rel m\nT1 rel n\n",
                            validate=False)
        assert len(trace) == 4

    def test_structural_error_maps_event_to_source_line(self):
        # Comments and blank lines shift event indices away from line
        # numbers; the re-raised TraceFormatError must report the
        # *line* of the failing event, not its index (which is 2 here).
        text = ("# header comment\n"
                "T1 wr x\n"
                "\n"
                "T2 rd x\n"
                "# another comment\n"
                "T2 rel m\n")
        with pytest.raises(TraceFormatError, match="line 6") as excinfo:
            loads_trace(text)
        assert excinfo.value.line_number == 6

    def test_structural_error_line_in_file(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# comment\nT1 acq m\nT1 acq m\n")
        with pytest.raises(TraceFormatError, match="line 3"):
            load_trace(path)


class TestLoadEvents:
    def test_parses_malformed_traces(self):
        events, lines = load_events(io.StringIO("T1 rel m\nT1 acq m\n"))
        assert [e.kind for e in events] == [EventKind.RELEASE,
                                           EventKind.ACQUIRE]
        assert lines == [1, 2]

    def test_line_numbers_skip_comments(self):
        events, lines = load_events(
            io.StringIO("# c\n\nT1 wr x\n# c\nT2 rd x\n"))
        assert len(events) == 2
        assert lines == [3, 5]

    def test_from_path(self, tmp_path):
        path = tmp_path / "t.txt"
        dump_trace(LITMUS["figure1"](), path)
        events, lines = load_events(path)
        assert len(events) == len(LITMUS["figure1"]())
        # The dump's header comment occupies line 1.
        assert lines[0] == 2

    def test_format_errors_still_raise(self):
        with pytest.raises(TraceFormatError, match="unknown operation"):
            load_events(io.StringIO("T1 frobnicate x\n"))

"""Scheduler fuzzing: random programs must always execute cleanly."""

import pytest

from repro.runtime import execute
from repro.runtime.fuzz import ProgramConfig, random_program
from repro.vindicate.vindicator import Verdict, Vindicator

CONFIGS = {
    "default": ProgramConfig(),
    "forky": ProgramConfig(top_level_threads=2, fork_probability=0.4,
                           max_forks=4),
    "locky": ProgramConfig(locks=3, max_nesting=3, volatiles=0),
    "lean": ProgramConfig(top_level_threads=4, ops_per_thread=6,
                          variables=1, locks=1),
}


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("program_seed", range(8))
class TestFuzz:
    def test_executes_to_valid_trace(self, config_name, program_seed):
        program = random_program(program_seed, CONFIGS[config_name])
        for schedule_seed in range(3):
            trace = execute(program, seed=schedule_seed)
            # Trace construction validates structure; also sanity checks:
            assert len(trace) > 0
            assert len(trace.threads) >= 2

    def test_reproducible_across_reexecution(self, config_name, program_seed):
        program = random_program(program_seed, CONFIGS[config_name])
        first = execute(program, seed=5)
        second = execute(program, seed=5)
        assert [str(e) for e in first] == [str(e) for e in second]

    def test_full_pipeline_never_crashes(self, config_name, program_seed):
        program = random_program(program_seed, CONFIGS[config_name])
        trace = execute(program, seed=1)
        report = Vindicator(vindicate_all=True).run(trace)
        for v in report.vindications:
            assert v.verdict in (Verdict.RACE, Verdict.NO_RACE,
                                 Verdict.UNKNOWN)
            if v.witness is not None:
                from repro.vindicate.verify import check_witness
                check_witness(trace, v.witness, v.race.first, v.race.second)


def test_round_robin_policy_on_fuzzed_program():
    program = random_program(3, CONFIGS["default"])
    trace = execute(program, seed=2, policy="round_robin", quantum=4)
    assert len(trace) > 0


def test_program_seed_changes_program():
    a = execute(random_program(1), seed=0)
    b = execute(random_program(2), seed=0)
    assert [str(e) for e in a] != [str(e) for e in b]

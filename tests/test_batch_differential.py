"""Differential tests: batched detectors vs the references.

:class:`~repro.analysis.batch.BatchWCPDetector` and
:class:`~repro.analysis.batch.BatchDCDetector` replace per-event
dispatch with a vectorized segmentation pass that skips events the
per-event interpreter would provably treat as thread-local no-ops, so
they must be *bit-identical* to :class:`~repro.analysis.wcp.WCPDetector`
/ :class:`~repro.analysis.dc.DCDetector`: same races in the same order,
same ``racing_at`` sets, same counters, the same constraint-graph edge
list (in insertion order — vindication depends on it), and the same
end-of-trace clocks, under every ``force_order`` / ``transitive_force``
combination and with or without the lockset prefilter.

The adversarial cases target the batching machinery's edges: fork
consumption by a batched-looking first event, joins whose child ran
only batched events (the own-component catch-up), held accesses to
single- vs multi-accessor variables (the rule (a) no-op argument),
program-order graph edges bulk-inserted around fallback events, and
streaming error parity (the streaming path is inherited from the epoch
detectors unchanged).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.analysis.batch import BatchDCDetector, BatchWCPDetector
from repro.analysis.dc import DCDetector
from repro.analysis.wcp import WCPDetector
from repro.core.exceptions import MalformedTraceError
from repro.core.trace import TraceBuilder
from repro.runtime import execute
from repro.runtime.workloads import WORKLOADS
from repro.static.lockset import analyze_locksets
from repro.traces.gen import GeneratorConfig, random_trace
from repro.traces.litmus import ALL as LITMUS
from repro.traces.litmus import figure1, figure3
from repro.vindicate.vindicator import Vindicator

from test_parallel import normalize

SETTINGS = settings(max_examples=60, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

configs = st.builds(
    GeneratorConfig,
    threads=st.integers(2, 4),
    events=st.integers(6, 30),
    variables=st.integers(1, 3),
    locks=st.integers(1, 3),
    max_nesting=st.integers(1, 3),
    use_fork_join=st.booleans(),
    volatiles=st.integers(0, 1),
)

seeds = st.integers(0, 10_000)

FLAG_COMBOS = [(True, True), (True, False), (False, False)]
flag_combos = st.sampled_from(FLAG_COMBOS)


def assert_equivalent(ref, fast, trace, flags=(True, True), graphs=False):
    reports = []
    for det in (ref, fast):
        det.force_order, det.transitive_force = flags
        reports.append(det.analyze(trace))
    ref_report, fast_report = reports
    assert ([(r.first.eid, r.second.eid) for r in ref_report.races]
            == [(r.first.eid, r.second.eid) for r in fast_report.races])
    assert dict(ref.racing_at) == dict(fast.racing_at)
    assert ref_report.counters == fast_report.counters
    if graphs:
        assert list(ref.graph.edges()) == list(fast.graph.edges())
    # Batched events only ever touch a thread's own clock component, so
    # the end-of-trace clocks must land exactly where the per-event
    # interpreter leaves them (clock_of drives vindication re-queries).
    for tid in trace.threads:
        a, b = ref.clock_of(tid), fast.clock_of(tid)
        assert (a is None) == (b is None)
        if a is not None:
            assert {t: a.get(t) for t in trace.threads} == \
                   {t: b.get(t) for t in trace.threads}
    return fast


class TestRandomTraces:
    @SETTINGS
    @given(seed=seeds, config=configs, flags=flag_combos)
    def test_wcp_differential(self, seed, config, flags):
        trace = random_trace(seed, config)
        assert_equivalent(WCPDetector(), BatchWCPDetector(), trace, flags)

    @SETTINGS
    @given(seed=seeds, config=configs, flags=flag_combos)
    def test_dc_differential_with_graph(self, seed, config, flags):
        trace = random_trace(seed, config)
        assert_equivalent(DCDetector(build_graph=True),
                          BatchDCDetector(build_graph=True),
                          trace, flags, graphs=True)

    @SETTINGS
    @given(seed=seeds, config=configs)
    def test_dc_differential_without_graph(self, seed, config):
        trace = random_trace(seed, config)
        assert_equivalent(DCDetector(build_graph=False),
                          BatchDCDetector(build_graph=False), trace)

    @SETTINGS
    @given(seed=seeds, config=configs)
    def test_prefilter_parity(self, seed, config):
        trace = random_trace(seed, config)
        candidates = analyze_locksets(trace.events).race_candidates
        assert_equivalent(WCPDetector(prefilter=candidates),
                          BatchWCPDetector(prefilter=candidates), trace)
        assert_equivalent(DCDetector(prefilter=candidates),
                          BatchDCDetector(prefilter=candidates),
                          trace, graphs=True)


class TestLitmusAndWorkloads:
    @pytest.mark.parametrize("name", sorted(LITMUS))
    @pytest.mark.parametrize("flags", FLAG_COMBOS,
                             ids=["force+trans", "force", "off"])
    def test_litmus(self, name, flags):
        trace = LITMUS[name]()
        assert_equivalent(WCPDetector(), BatchWCPDetector(), trace, flags)
        assert_equivalent(DCDetector(), BatchDCDetector(), trace, flags,
                          graphs=True)

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_workloads(self, name):
        trace = execute(WORKLOADS[name](scale=0.3), seed=3)
        assert_equivalent(WCPDetector(), BatchWCPDetector(), trace)
        fast = assert_equivalent(DCDetector(), BatchDCDetector(), trace,
                                 graphs=True)
        stats = fast.fast_stats()
        # Batching must actually engage on a realistic workload, and the
        # accounting must cover the whole trace.
        assert stats["batch_events"] > 0
        assert stats["batch_runs"] > 0
        assert (stats["batch_events"] + stats["batch_fallback_events"]
                == len(trace))

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_workloads_prefiltered(self, name):
        trace = execute(WORKLOADS[name](scale=0.3), seed=3)
        candidates = analyze_locksets(trace.events).race_candidates
        assert_equivalent(WCPDetector(prefilter=candidates),
                          BatchWCPDetector(prefilter=candidates), trace)
        assert_equivalent(DCDetector(prefilter=candidates),
                          BatchDCDetector(prefilter=candidates),
                          trace, graphs=True)


class TestAdversarial:
    def test_fork_consuming_access_stays_per_event(self):
        # t2's first event is a plain access to a thread-local variable:
        # batchable by every other criterion, but it must consume the
        # pending fork snapshot (and add the fork edge for DC).
        trace = (TraceBuilder()
                 .wr(1, "x").fork(1, 2)
                 .wr(2, "y").wr(2, "y").wr(2, "y")
                 .join(1, 2).rd(1, "x")
                 .build())
        assert_equivalent(WCPDetector(), BatchWCPDetector(), trace)
        fast = assert_equivalent(DCDetector(), BatchDCDetector(), trace,
                                 graphs=True)
        assert fast.fast_stats()["batch_events"] > 0

    def test_join_of_fully_batched_child(self):
        # Every event of t2 after the fork consumption is batched; the
        # join must still see the child's final clock component.
        builder = TraceBuilder().wr(1, "x").fork(1, 2)
        for _ in range(6):
            builder.wr(2, "y")
        trace = builder.join(1, 2).wr(1, "y").build()
        assert_equivalent(WCPDetector(), BatchWCPDetector(), trace)
        assert_equivalent(DCDetector(), BatchDCDetector(), trace,
                          graphs=True)

    def test_held_single_accessor_accesses_are_batched(self):
        # Lock-protected accesses to a variable only one thread ever
        # touches do no observable rule (a) work: they must batch, and
        # verdicts/graph/counters must still match the reference, which
        # *does* run rule (a) recording for them.
        builder = TraceBuilder()
        for _ in range(4):
            builder.acq(1, "m").wr(1, "x").rd(1, "x").rel(1, "m")
        builder.fork(1, 2)
        for _ in range(4):
            builder.acq(2, "m").wr(2, "z").rel(2, "m")
        trace = builder.join(1, 2).rd(1, "x").build()
        fast = assert_equivalent(DCDetector(), BatchDCDetector(), trace,
                                 graphs=True)
        stats = fast.fast_stats()
        assert stats["batch_events"] >= 13  # all of x's and z's accesses
        assert_equivalent(WCPDetector(), BatchWCPDetector(), trace)

    def test_held_shared_accesses_fall_back(self):
        # x is accessed by both threads under m: rule (a) joins real
        # cross-thread recordings, so these accesses must not batch.
        trace = (TraceBuilder()
                 .acq(1, "m").wr(1, "x").rel(1, "m")
                 .fork(1, 2)
                 .acq(2, "m").rd(2, "x").rel(2, "m")
                 .join(1, 2).wr(1, "x")
                 .build())
        fast = assert_equivalent(DCDetector(), BatchDCDetector(), trace,
                                 graphs=True)
        assert fast.fast_stats()["batch_events"] == 0
        assert_equivalent(WCPDetector(), BatchWCPDetector(), trace)

    def test_po_edges_interleave_with_fallback_events(self):
        # Alternating batched accesses and sync events on two threads:
        # the bulk PO-edge sweep must interleave with per-event edges in
        # exactly the reference's (destination-ordered) insertion order;
        # assert_equivalent compares the edge *lists*, not sets.
        builder = TraceBuilder()
        for i in range(5):
            builder.wr(1, "a").acq(1, "m").rel(1, "m")
            builder.wr(2, "b").acq(2, "n").rel(2, "n")
        trace = builder.build()
        assert_equivalent(DCDetector(), BatchDCDetector(), trace,
                          graphs=True)

    def test_streaming_release_without_acquire_parity_dc(self):
        # The streaming path is inherited: error parity with the
        # reference must survive the analyze() override.
        trace = TraceBuilder().acq(1, "m").rel(1, "m").build()
        errors = []
        for det in (DCDetector(), BatchDCDetector()):
            det.begin_trace(trace)
            with pytest.raises(MalformedTraceError) as exc:
                det.handle(trace.events[1])
            errors.append((str(exc.value), exc.value.event_index))
        assert errors[0] == errors[1]

    def test_streaming_release_without_acquire_parity_wcp(self):
        trace = TraceBuilder().acq(1, "m").rel(1, "m").build()
        errors = []
        for det in (WCPDetector(), BatchWCPDetector()):
            det.begin_trace(trace)
            with pytest.raises(KeyError) as exc:
                det.handle(trace.events[1])
            errors.append(exc.value.args)
        assert errors[0] == errors[1]

    @SETTINGS
    @given(seed=seeds,
           config=st.builds(GeneratorConfig,
                            threads=st.integers(3, 5),
                            events=st.integers(10, 40),
                            variables=st.integers(1, 2),
                            locks=st.integers(1, 2),
                            use_fork_join=st.just(True)))
    def test_fork_join_interleavings(self, seed, config):
        trace = random_trace(seed, config)
        assert_equivalent(WCPDetector(), BatchWCPDetector(), trace)
        assert_equivalent(DCDetector(), BatchDCDetector(), trace,
                          graphs=True)


class TestVindicatorBatch:
    """End-to-end: ``variant="batch"`` through the full pipeline must
    produce the reference's ``analyze/1`` document bit-for-bit (modulo
    the wall-clock/worker fields ``normalize`` strips) — classification,
    distances, and vindication verdicts included, since those consume
    the DC graph and clocks the batch interpreter produced."""

    @pytest.mark.parametrize("trace_factory", [figure1, figure3],
                             ids=["figure1", "figure3"])
    def test_documents_identical_on_litmus(self, trace_factory):
        trace = trace_factory()
        ref = normalize(Vindicator(vindicate_all=True).run(trace)
                        .to_document())
        batch = normalize(Vindicator(vindicate_all=True, variant="batch")
                          .run(trace).to_document())
        assert ref == batch

    def test_documents_identical_on_workload(self):
        trace = execute(WORKLOADS["xalan"](scale=0.4), seed=2)
        ref = normalize(Vindicator(prefilter=True).run(trace)
                        .to_document())
        batch = normalize(Vindicator(prefilter=True, variant="batch")
                          .run(trace).to_document())
        assert ref == batch

    def test_parallel_batch_matches_serial_reference(self):
        trace = execute(WORKLOADS["avrora"](scale=0.4), seed=2)
        ref = normalize(Vindicator().run(trace).to_document())
        batch = normalize(Vindicator(variant="batch", jobs=2)
                          .run(trace).to_document())
        assert ref == batch

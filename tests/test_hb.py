"""Unit tests for the happens-before detector."""

from repro.core.trace import TraceBuilder
from repro.analysis.hb import HBDetector


def races_of(trace):
    return [(r.first.eid, r.second.eid) for r in HBDetector().analyze(trace).races]


class TestRaceDetection:
    def test_plain_write_write_race(self):
        trace = TraceBuilder().wr(1, "x").wr(2, "x").build()
        assert races_of(trace) == [(0, 1)]

    def test_plain_write_read_race(self):
        trace = TraceBuilder().wr(1, "x").rd(2, "x").build()
        assert races_of(trace) == [(0, 1)]

    def test_read_read_is_not_a_race(self):
        trace = TraceBuilder().rd(1, "x").rd(2, "x").build()
        assert races_of(trace) == []

    def test_read_then_write_race(self):
        trace = TraceBuilder().rd(1, "x").wr(2, "x").build()
        assert races_of(trace) == [(0, 1)]

    def test_same_thread_never_races(self):
        trace = TraceBuilder().wr(1, "x").wr(1, "x").rd(1, "x").build()
        assert races_of(trace) == []

    def test_lock_protected_accesses_do_not_race(self):
        trace = (TraceBuilder()
                 .acq(1, "m").wr(1, "x").rel(1, "m")
                 .acq(2, "m").rd(2, "x").rel(2, "m")
                 .build())
        assert races_of(trace) == []

    def test_sync_order_transitively_orders(self):
        # T1 writes x, releases m; T2 acquires m, reads x: ordered.
        trace = (TraceBuilder()
                 .wr(1, "x").acq(1, "m").rel(1, "m")
                 .acq(2, "m").rel(2, "m").rd(2, "x")
                 .build())
        assert races_of(trace) == []

    def test_different_locks_do_not_order(self):
        trace = (TraceBuilder()
                 .wr(1, "x").acq(1, "m").rel(1, "m")
                 .acq(2, "n").rel(2, "n").rd(2, "x")
                 .build())
        assert races_of(trace) == [(0, 5)]

    def test_figure1_has_no_hb_race(self):
        from repro.traces.litmus import figure1
        assert races_of(figure1()) == []


class TestShortestRaceRecording:
    def test_race_recorded_against_latest_prior(self):
        # Two unordered prior writes by different threads; the race pairs
        # the read with the later one.
        trace = (TraceBuilder()
                 .wr(1, "x").wr(2, "x").rd(3, "x").build())
        report = HBDetector().analyze(trace)
        # wr-wr race first, then the read races with the *latest* write.
        assert (1, 2) in [(r.first.eid, r.second.eid) for r in report.races]

    def test_racing_at_contains_all_unordered_priors(self):
        trace = TraceBuilder().wr(1, "x").wr(2, "x").build()
        det = HBDetector()
        det.analyze(trace)
        assert det.racing_at[1] == frozenset({0})

    def test_one_race_per_access(self):
        # A write racing with both a prior write and a prior read still
        # records a single dynamic race.
        trace = (TraceBuilder()
                 .wr(1, "x").rd(2, "x").wr(3, "x").build())
        report = HBDetector().analyze(trace)
        seconds = [r.second.eid for r in report.races]
        assert seconds.count(2) == 1


class TestForcedOrdering:
    def test_forced_order_suppresses_dependent_race(self):
        # After the race (0, 1) is reported, the pair is force-ordered, so
        # thread 2's next read of x does not race with event 0 again.
        trace = TraceBuilder().wr(1, "x").wr(2, "x").rd(2, "x").build()
        assert races_of(trace) == [(0, 1)]

    def test_force_order_disabled_keeps_clocks_pure(self):
        trace = TraceBuilder().wr(1, "x").rd(2, "x").rd(2, "x").build()
        det = HBDetector()
        det.force_order = False
        report = det.analyze(trace)
        # Without forcing, both reads race with the unordered write.
        assert [(r.first.eid, r.second.eid) for r in report.races] == \
            [(0, 1), (0, 2)]


class TestThreadEdges:
    def test_fork_orders_parent_before_child(self):
        trace = (TraceBuilder()
                 .wr(1, "x").fork(1, 2).rd(2, "x").build())
        assert races_of(trace) == []

    def test_parent_after_fork_races_with_child(self):
        trace = (TraceBuilder()
                 .fork(1, 2).wr(1, "x").rd(2, "x").build())
        assert races_of(trace) == [(1, 2)]

    def test_join_orders_child_before_parent(self):
        trace = (TraceBuilder()
                 .wr(2, "x").join(1, 2).rd(1, "x").build())
        assert races_of(trace) == []

    def test_no_join_leaves_unordered(self):
        trace = TraceBuilder().wr(2, "x").rd(1, "x").build()
        assert races_of(trace) == [(0, 1)]


class TestVolatiles:
    def test_volatile_write_read_orders(self):
        trace = (TraceBuilder()
                 .wr(1, "x").vwr(1, "flag")
                 .vrd(2, "flag").rd(2, "x")
                 .build())
        assert races_of(trace) == []

    def test_volatile_read_alone_does_not_order(self):
        # No volatile write happened: the later read is unordered.
        trace = (TraceBuilder()
                 .wr(1, "x").vrd(2, "flag").rd(2, "x").build())
        assert races_of(trace) == [(0, 2)]

    def test_volatile_accesses_are_not_race_candidates(self):
        trace = TraceBuilder().vwr(1, "v").vwr(2, "v").build()
        assert races_of(trace) == []

    def test_volatile_write_after_read_orders(self):
        trace = (TraceBuilder()
                 .wr(1, "x").vrd(1, "v")
                 .vwr(2, "v").rd(2, "x")
                 .build())
        assert races_of(trace) == []


class TestQueries:
    def test_ordered_to_current_same_thread(self):
        trace = TraceBuilder().wr(1, "x").rd(1, "x").build()
        det = HBDetector()
        det.analyze(trace)
        assert det.ordered_to_current(trace[0], 1)

    def test_ordered_to_current_cross_thread(self):
        trace = (TraceBuilder()
                 .wr(1, "x").acq(1, "m").rel(1, "m")
                 .acq(2, "m").rel(2, "m")
                 .build())
        det = HBDetector()
        det.analyze(trace)
        assert det.ordered_to_current(trace[0], 2)
        assert not det.ordered_to_current(trace[4], 1)

    def test_streaming_api(self):
        trace = TraceBuilder().wr(1, "x").wr(2, "x").build()
        det = HBDetector()
        det.begin_trace(trace)
        for e in trace:
            det.handle(e)
        assert det.finish().dynamic_count == 1

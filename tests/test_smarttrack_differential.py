"""Differential tests: epoch/ownership detectors vs the references.

:class:`~repro.analysis.smarttrack.EpochWCPDetector` and
:class:`~repro.analysis.smarttrack.EpochDCDetector` are *optimisations*,
never semantic changes: for every trace they must report the same races
in the same order, the same per-access ``racing_at`` sets, the same
counters, and (for DC) the same constraint-graph edge list as
:class:`~repro.analysis.wcp.WCPDetector` /
:class:`~repro.analysis.dc.DCDetector` — under every combination of the
``force_order`` / ``transitive_force`` flags and with or without the
lockset pre-filter.

Alongside hypothesis-generated traces, the adversarial cases target the
epoch state machine's edges specifically: shared-read inflation and the
write that re-arms the gate afterwards, gate consultation with forcing
disabled, deep lock nesting, fork/join interleavings, and malformed
streaming input (where the epoch detectors must fail with the *same*
exception type and message as the references — reentrant locks cannot
reach any detector: ``Trace`` construction rejects them).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.dc import DCDetector
from repro.analysis.smarttrack import EpochDCDetector, EpochWCPDetector
from repro.analysis.wcp import WCPDetector
from repro.core.exceptions import MalformedTraceError
from repro.core.trace import TraceBuilder
from repro.runtime import execute
from repro.runtime.workloads import WORKLOADS
from repro.static.lockset import analyze_locksets
from repro.traces.gen import GeneratorConfig, random_trace
from repro.traces.litmus import ALL as LITMUS

SETTINGS = settings(max_examples=60, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

configs = st.builds(
    GeneratorConfig,
    threads=st.integers(2, 4),
    events=st.integers(6, 30),
    variables=st.integers(1, 3),
    locks=st.integers(1, 3),
    max_nesting=st.integers(1, 3),
    use_fork_join=st.booleans(),
    volatiles=st.integers(0, 1),
)

seeds = st.integers(0, 10_000)

#: (force_order, transitive_force) — the DC epoch gates are only armed
#: under (True, True) and must silently stand down otherwise.
FLAG_COMBOS = [(True, True), (True, False), (False, False)]
flag_combos = st.sampled_from(FLAG_COMBOS)


def assert_equivalent(ref, fast, trace, flags=(True, True), graphs=False):
    reports = []
    for det in (ref, fast):
        det.force_order, det.transitive_force = flags
        reports.append(det.analyze(trace))
    ref_report, fast_report = reports
    assert ([(r.first.eid, r.second.eid) for r in ref_report.races]
            == [(r.first.eid, r.second.eid) for r in fast_report.races])
    assert dict(ref.racing_at) == dict(fast.racing_at)
    assert ref_report.counters == fast_report.counters
    if graphs:
        assert list(ref.graph.edges()) == list(fast.graph.edges())
    return fast


class TestRandomTraces:
    @SETTINGS
    @given(seed=seeds, config=configs, flags=flag_combos)
    def test_wcp_differential(self, seed, config, flags):
        trace = random_trace(seed, config)
        assert_equivalent(WCPDetector(), EpochWCPDetector(), trace, flags)

    @SETTINGS
    @given(seed=seeds, config=configs, flags=flag_combos)
    def test_dc_differential_with_graph(self, seed, config, flags):
        trace = random_trace(seed, config)
        assert_equivalent(DCDetector(build_graph=True),
                          EpochDCDetector(build_graph=True),
                          trace, flags, graphs=True)

    @SETTINGS
    @given(seed=seeds, config=configs)
    def test_dc_differential_without_graph(self, seed, config):
        trace = random_trace(seed, config)
        assert_equivalent(DCDetector(build_graph=False),
                          EpochDCDetector(build_graph=False), trace)

    @SETTINGS
    @given(seed=seeds, config=configs)
    def test_prefilter_parity(self, seed, config):
        trace = random_trace(seed, config)
        candidates = analyze_locksets(trace.events).race_candidates
        assert_equivalent(WCPDetector(prefilter=candidates),
                          EpochWCPDetector(prefilter=candidates), trace)
        assert_equivalent(DCDetector(prefilter=candidates),
                          EpochDCDetector(prefilter=candidates),
                          trace, graphs=True)


class TestLitmusAndWorkloads:
    @pytest.mark.parametrize("name", sorted(LITMUS))
    @pytest.mark.parametrize("flags", FLAG_COMBOS,
                             ids=["force+trans", "force", "off"])
    def test_litmus(self, name, flags):
        trace = LITMUS[name]()
        assert_equivalent(WCPDetector(), EpochWCPDetector(), trace, flags)
        assert_equivalent(DCDetector(), EpochDCDetector(), trace, flags,
                          graphs=True)

    @pytest.mark.parametrize("name", ["avrora", "xalan"])
    def test_workloads(self, name):
        trace = execute(WORKLOADS[name](scale=0.5), seed=3)
        assert_equivalent(WCPDetector(), EpochWCPDetector(), trace)
        fast = assert_equivalent(DCDetector(), EpochDCDetector(), trace,
                                 graphs=True)
        stats = fast.fast_stats()
        # The fast paths must actually engage on a realistic workload.
        assert stats["epoch_exclusive_hits"] > 0
        assert stats["snapshots_reused"] >= stats["snapshots_copied"]


class TestAdversarial:
    def test_shared_read_inflation_then_write_rearms_gate(self):
        # t2/t3 read x concurrently after the forking write (the read
        # epoch inflates to shared); the joining write re-arms the write
        # gate; the trailing unordered read must still race-check
        # identically to the reference.
        trace = (TraceBuilder()
                 .wr(1, "x").fork(1, 2).fork(1, 3)
                 .rd(2, "x").rd(3, "x")
                 .join(1, 2).join(1, 3)
                 .wr(1, "x").fork(1, 4).rd(4, "x").wr(1, "x")
                 .build())
        fast = assert_equivalent(DCDetector(), EpochDCDetector(), trace,
                                 graphs=True)
        stats = fast.fast_stats()
        assert stats["epoch_promotions"] >= 1
        assert stats["epoch_read_inflations"] >= 1

    def test_demotion_never_happens_verdicts_still_match(self):
        # Once shared, a variable stays shared (demotion would have to
        # prove exclusivity again); a long exclusive tail after sharing
        # exercises the shared-stage bookkeeping path.
        builder = TraceBuilder().wr(1, "x").fork(1, 2).rd(2, "x").join(1, 2)
        for _ in range(10):
            builder.wr(1, "x").rd(1, "x")
        trace = builder.build()
        fast = assert_equivalent(DCDetector(), EpochDCDetector(), trace,
                                 graphs=True)
        assert fast.fast_stats()["epoch_write_gate_hits"] >= 1

    def test_gates_stand_down_without_transitive_force(self):
        # Identical verdicts under every flag combo — the write/read
        # gates are only sound when forcing propagates transitively, so
        # they must not fire otherwise.
        trace = (TraceBuilder()
                 .wr(1, "x").fork(1, 2).rd(2, "x").wr(2, "x")
                 .join(1, 2).rd(1, "x")
                 .build())
        for flags in FLAG_COMBOS:
            assert_equivalent(DCDetector(), EpochDCDetector(), trace,
                              flags, graphs=True)
            fast = EpochDCDetector()
            fast.force_order, fast.transitive_force = flags
            fast.analyze(trace)
            if flags != (True, True):
                stats = fast.fast_stats()
                assert stats["epoch_write_gate_hits"] == 0
                assert stats["epoch_read_gate_hits"] == 0

    def test_deep_nesting_and_lock_ownership_transfer(self):
        trace = (TraceBuilder()
                 .acq(1, "a").acq(1, "b").acq(1, "c")
                 .wr(1, "x").rel(1, "c").rel(1, "b").rel(1, "a")
                 .acq(2, "a").acq(2, "b").rd(2, "x")
                 .rel(2, "b").rel(2, "a")
                 .acq(1, "a").wr(1, "y").rel(1, "a")
                 .build())
        fast = assert_equivalent(DCDetector(), EpochDCDetector(), trace,
                                 graphs=True)
        stats = fast.fast_stats()
        # Lock "a" changed hands: its rule-(b) owner skip must be off.
        assert stats["ownership_lock_transfers"] >= 1
        assert_equivalent(WCPDetector(), EpochWCPDetector(), trace)

    def test_single_owner_lock_skips_rule_b(self):
        builder = TraceBuilder()
        for _ in range(4):
            builder.acq(1, "m").wr(1, "x").rel(1, "m")
        builder.fork(1, 2).rd(2, "y")
        trace = builder.build()
        fast = assert_equivalent(DCDetector(), EpochDCDetector(), trace,
                                 graphs=True)
        assert fast.fast_stats()["ownership_rule_b_skips"] >= 3

    def test_reentrant_locks_cannot_reach_detectors(self):
        with pytest.raises(MalformedTraceError, match="already held"):
            TraceBuilder().acq(1, "m").acq(1, "m").build()

    def test_streaming_release_without_acquire_parity_dc(self):
        trace = TraceBuilder().acq(1, "m").rel(1, "m").build()
        errors = []
        for det in (DCDetector(), EpochDCDetector()):
            det.begin_trace(trace)
            with pytest.raises(MalformedTraceError) as exc:
                det.handle(trace.events[1])
            errors.append((str(exc.value), exc.value.event_index))
        assert errors[0] == errors[1]

    def test_streaming_release_by_wrong_thread_parity_dc(self):
        trace = (TraceBuilder()
                 .acq(1, "m").rel(1, "m")
                 .acq(2, "m").rel(2, "m")
                 .build())
        errors = []
        for det in (DCDetector(), EpochDCDetector()):
            det.begin_trace(trace)
            det.handle(trace.events[0])
            with pytest.raises(MalformedTraceError) as exc:
                det.handle(trace.events[3])
            errors.append((str(exc.value), exc.value.event_index))
        assert errors[0] == errors[1]

    def test_streaming_release_without_acquire_parity_wcp(self):
        # The reference WCP detector leaks a KeyError here (pre-existing
        # behaviour); the epoch variant must match it exactly rather
        # than invent a different failure mode.
        trace = TraceBuilder().acq(1, "m").rel(1, "m").build()
        errors = []
        for det in (WCPDetector(), EpochWCPDetector()):
            det.begin_trace(trace)
            with pytest.raises(KeyError) as exc:
                det.handle(trace.events[1])
            errors.append(exc.value.args)
        assert errors[0] == errors[1]

    @SETTINGS
    @given(seed=seeds,
           config=st.builds(GeneratorConfig,
                            threads=st.integers(3, 5),
                            events=st.integers(10, 40),
                            variables=st.integers(1, 2),
                            locks=st.integers(1, 2),
                            use_fork_join=st.just(True)))
    def test_fork_join_interleavings(self, seed, config):
        trace = random_trace(seed, config)
        assert_equivalent(WCPDetector(), EpochWCPDetector(), trace)
        assert_equivalent(DCDetector(), EpochDCDetector(), trace,
                          graphs=True)

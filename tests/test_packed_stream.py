"""The canonical packed byte encoding and the determinism hash.

These are the two foundations of serve's checkpoint/resume guarantee:

* ``to_bytes``/``from_bytes`` is a *canonical* codec — decode then
  re-encode is byte-identical, so a checkpoint's payload has exactly
  one valid spelling;
* the determinism hash is a pure function of the event sequence —
  invariant under chunk splits, builder vs. batch construction, and
  encode/decode round trips;
* ``from_bytes`` treats its input as untrusted: any truncation or
  mid-frame corruption surfaces as
  :class:`~repro.core.exceptions.MalformedTraceError` (with an event
  index where one is known), never a raw ``struct.error`` /
  ``IndexError`` / ``KeyError``.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.exceptions import MalformedTraceError, TraceFormatError
from repro.runtime import execute
from repro.runtime.workloads import WORKLOADS
from repro.traces.gen import GeneratorConfig, random_trace
from repro.traces.io import format_event, parse_event_line
from repro.traces.litmus import ALL as LITMUS
from repro.traces.packed import (PACKED_MAGIC, PackedBuilder, TraceHasher,
                                 from_bytes, pack, to_bytes, trace_hash)


def workload_trace(name="avrora", scale=0.2, seed=0):
    return execute(WORKLOADS[name](scale=scale), seed=seed)


def gen_trace(seed, threads=3, events=60, use_fork_join=True):
    return random_trace(seed, GeneratorConfig(
        threads=threads, events=events, use_fork_join=use_fork_join))


def assert_columns_equal(a, b):
    assert list(a.kinds) == list(b.kinds)
    assert list(a.tid_idx) == list(b.tid_idx)
    assert list(a.target_idx) == list(b.target_idx)
    assert list(a.loc_idx) == list(b.loc_idx)
    assert list(a.local_time) == list(b.local_time)
    assert list(a.tids) == list(b.tids)
    assert list(a.targets) == list(b.targets)
    assert list(a.locs) == list(b.locs)
    assert a.provenance == b.provenance


class TestCanonicalCodec:
    @pytest.mark.parametrize("name", sorted(LITMUS))
    def test_litmus_round_trip_is_byte_stable(self, name):
        packed = pack(LITMUS[name]())
        data = to_bytes(packed)
        assert data.startswith(PACKED_MAGIC)
        decoded = from_bytes(data)
        assert_columns_equal(decoded, packed)
        assert to_bytes(decoded) == data

    def test_workload_with_locs_round_trips(self):
        packed = pack(workload_trace())
        assert packed.locs
        data = to_bytes(packed)
        assert to_bytes(from_bytes(data)) == data

    def test_empty_trace_round_trips(self):
        builder = PackedBuilder(provenance={"kind": "empty"})
        data = to_bytes(builder.to_packed())
        decoded = from_bytes(data)
        assert len(decoded) == 0
        assert decoded.provenance == {"kind": "empty"}
        assert to_bytes(decoded) == data

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), threads=st.integers(2, 4),
           events=st.integers(1, 60), use_fork_join=st.booleans())
    def test_random_round_trip_is_byte_stable(self, seed, threads, events,
                                              use_fork_join):
        packed = pack(gen_trace(seed, threads, events, use_fork_join))
        data = to_bytes(packed)
        decoded = from_bytes(data)
        assert_columns_equal(decoded, packed)
        assert to_bytes(decoded) == data

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), events=st.integers(1, 60))
    def test_builder_matches_batch_pack(self, seed, events):
        trace = gen_trace(seed, events=events)
        builder = PackedBuilder(provenance=trace.provenance)
        for event in trace:
            builder.append(event)
        assert to_bytes(builder.to_packed()) == to_bytes(pack(trace))

    def test_unpacked_events_match(self):
        trace = workload_trace()
        restored = from_bytes(to_bytes(pack(trace))).unpack()
        for orig, back in zip(trace.events, restored.events):
            assert (orig.eid, orig.tid, orig.kind, orig.target, orig.loc) \
                == (back.eid, back.tid, back.kind, back.target, back.loc)


class TestDeterminismHash:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000), events=st.integers(1, 80),
           data=st.data())
    def test_chunk_split_invariance(self, seed, events, data):
        """The hash depends only on the event sequence, never on how
        the stream was chunked — the property that lets serve verify a
        resumed shard against an uninterrupted run."""
        trace = gen_trace(seed, events=events)
        whole = trace_hash(trace)
        cuts = sorted(data.draw(st.lists(
            st.integers(0, len(trace)), max_size=5)))
        hasher = TraceHasher()
        previous = 0
        for cut in cuts + [len(trace)]:
            for event in trace.events[previous:cut]:
                hasher.update(event)
            previous = cut
        assert hasher.hexdigest() == whole
        assert hasher.count == len(trace)

    def test_copy_is_independent(self):
        trace = gen_trace(3, events=20)
        hasher = TraceHasher()
        for event in trace.events[:10]:
            hasher.update(event)
        snapshot = hasher.copy()
        for event in trace.events[10:]:
            hasher.update(event)
        assert snapshot.count == 10
        assert hasher.hexdigest() == trace_hash(trace)
        assert snapshot.hexdigest() == trace_hash(trace.events[:10])

    def test_hash_distinguishes_field_changes(self):
        trace = gen_trace(4, events=30)
        base = trace_hash(trace)
        # Dropping any single event changes the hash.
        for skip in (0, len(trace) // 2, len(trace) - 1):
            events = [e for e in trace.events if e.eid != skip]
            assert trace_hash(events) != base

    def test_survives_encode_decode(self):
        trace = workload_trace()
        restored = from_bytes(to_bytes(pack(trace))).unpack()
        assert trace_hash(restored) == trace_hash(trace)


class TestUntrustedInput:
    """Satellite: no byte stream may escape as a raw low-level error."""

    ESCAPEES = (KeyError, IndexError, ValueError, TypeError,
                UnicodeDecodeError, EOFError)

    def _assert_rejects(self, data):
        try:
            from_bytes(data)
        except MalformedTraceError:
            return True
        except self.ESCAPEES as exc:  # pragma: no cover - the bug itself
            pytest.fail(f"raw {type(exc).__name__} escaped from_bytes: {exc}")
        return False

    def test_every_truncation_point_is_malformed(self):
        data = to_bytes(pack(gen_trace(1, events=30)))
        for cut in range(len(data)):
            assert self._assert_rejects(data[:cut]), \
                f"truncation at {cut} was accepted"

    def test_truncated_column_reports_event_index(self):
        packed = pack(gen_trace(2, events=40))
        data = to_bytes(packed)
        # Cut inside the trailing local_time column: the error should
        # name how many complete events the chunk still holds.
        with pytest.raises(MalformedTraceError) as excinfo:
            from_bytes(data[:-7])
        assert excinfo.value.event_index >= 0
        assert excinfo.value.event_index < len(packed)

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_single_byte_corruption_never_escapes(self, data):
        blob = bytearray(to_bytes(pack(gen_trace(5, events=25))))
        pos = data.draw(st.integers(0, len(blob) - 1))
        flip = data.draw(st.integers(1, 255))
        blob[pos] ^= flip
        try:
            decoded = from_bytes(bytes(blob))
            # A surviving decode (e.g. a flipped loc character) must
            # still be internally consistent enough to re-encode.
            to_bytes(decoded)
        except MalformedTraceError:
            pass
        except self.ESCAPEES as exc:
            pytest.fail(
                f"byte {pos} ^ {flip}: raw {type(exc).__name__}: {exc}")

    def test_bad_magic(self):
        with pytest.raises(MalformedTraceError):
            from_bytes(b"NOTPACKED" + b"\x00" * 64)

    def test_header_not_json(self):
        data = bytearray(to_bytes(pack(gen_trace(6, events=10))))
        start = len(PACKED_MAGIC) + 8
        data[start] = 0xFF
        assert self._assert_rejects(bytes(data))

    def test_builder_rejects_eid_gap(self):
        trace = gen_trace(7, events=10)
        builder = PackedBuilder()
        builder.append(trace.events[0])
        with pytest.raises(MalformedTraceError) as excinfo:
            builder.append(trace.events[2])  # skipped eid 1
        assert excinfo.value.event_index == 1


class TestEventLineParsing:
    """Satellite: the text-format line parser used by serve ingestion."""

    def test_round_trips_every_litmus_event(self):
        for name in sorted(LITMUS):
            trace = LITMUS[name]()
            for event in trace:
                line = format_event(event)
                back = parse_event_line(line, eid=event.eid)
                assert back is not None
                assert (back.tid, back.kind, back.target, back.loc) == \
                    (event.tid, event.kind, event.target, event.loc)

    def test_blank_and_comment_lines_parse_to_nothing(self):
        assert parse_event_line("", eid=0) is None
        assert parse_event_line("   \n", eid=0) is None
        assert parse_event_line("# comment", eid=0) is None

    @pytest.mark.parametrize("line", [
        "T1",                 # missing operation
        "T1 frobnicate x",    # unknown operation
        "T1 rd",              # access without target
        "T1 join",            # thread op without target
    ])
    def test_bad_lines_raise_with_line_number(self, line):
        with pytest.raises(TraceFormatError) as excinfo:
            parse_event_line(line, eid=0, line_number=17)
        assert excinfo.value.line_number == 17
        assert "line 17" in str(excinfo.value)

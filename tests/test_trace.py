"""Unit tests for traces: validation, paper notation, and the builder."""

import pytest

from repro.core.events import Event, EventKind
from repro.core.exceptions import MalformedTraceError
from repro.core.trace import Trace, TraceBuilder


def simple_trace():
    return (TraceBuilder()
            .wr(1, "x")
            .acq(1, "m")
            .wr(1, "y")
            .rel(1, "m")
            .acq(2, "m")
            .rd(2, "y")
            .rel(2, "m")
            .rd(2, "x")
            .build())


class TestValidation:
    def test_eids_must_match_positions(self):
        events = [Event(5, 1, EventKind.WRITE, "x")]
        with pytest.raises(MalformedTraceError, match="eid"):
            Trace(events)

    def test_from_events_renumbers(self):
        events = [Event(5, 1, EventKind.WRITE, "x"),
                  Event(9, 2, EventKind.READ, "x")]
        trace = Trace.from_events(events)
        assert [e.eid for e in trace] == [0, 1]

    def test_double_acquire_rejected(self):
        with pytest.raises(MalformedTraceError, match="already held"):
            TraceBuilder().acq(1, "m").acq(2, "m").build()

    def test_reentrant_acquire_rejected(self):
        with pytest.raises(MalformedTraceError, match="already held"):
            TraceBuilder().acq(1, "m").acq(1, "m").build()

    def test_release_without_acquire_rejected(self):
        with pytest.raises(MalformedTraceError, match="not held"):
            TraceBuilder().rel(1, "m").build()

    def test_release_by_wrong_thread_rejected(self):
        with pytest.raises(MalformedTraceError, match="not held"):
            TraceBuilder().acq(1, "m").rel(2, "m").build()

    def test_unnested_release_rejected(self):
        with pytest.raises(MalformedTraceError, match="nesting"):
            TraceBuilder().acq(1, "m").acq(1, "n").rel(1, "m").build()

    def test_nested_locks_accepted(self):
        trace = (TraceBuilder()
                 .acq(1, "m").acq(1, "n").rel(1, "n").rel(1, "m").build())
        assert len(trace) == 4

    def test_open_critical_section_accepted(self):
        trace = TraceBuilder().acq(1, "m").wr(1, "x").build()
        assert len(trace) == 2

    def test_fork_self_rejected(self):
        with pytest.raises(MalformedTraceError, match="forks itself"):
            TraceBuilder().fork(1, 1).build()

    def test_double_fork_rejected(self):
        with pytest.raises(MalformedTraceError, match="forked twice"):
            TraceBuilder().fork(1, 2).fork(3, 2).build()

    def test_event_before_fork_rejected(self):
        with pytest.raises(MalformedTraceError, match="before its fork"):
            TraceBuilder().wr(2, "x").fork(1, 2).build()

    def test_event_after_join_rejected(self):
        with pytest.raises(MalformedTraceError, match="after its join"):
            TraceBuilder().wr(2, "x").join(1, 2).wr(2, "y").build()

    def test_double_join_rejected(self):
        with pytest.raises(MalformedTraceError, match="joined twice"):
            TraceBuilder().join(1, 2).join(1, 2).build()

    def test_begin_must_be_first(self):
        with pytest.raises(MalformedTraceError, match="first"):
            TraceBuilder().wr(1, "x").begin(1).build()

    def test_end_must_be_last(self):
        with pytest.raises(MalformedTraceError, match="last"):
            TraceBuilder().end(1).wr(1, "x").build()

    def test_validation_can_be_disabled(self):
        # Out-of-nesting-order releases are tolerated without validation
        # (lock matching still requires releases to match a held acquire).
        t = (TraceBuilder().acq(1, "m").acq(1, "n").rel(1, "m").rel(1, "n")
             .build(validate=False))
        assert len(t) == 4
        with pytest.raises(MalformedTraceError):
            (TraceBuilder().acq(1, "m").acq(1, "n").rel(1, "m").rel(1, "n")
             .build(validate=True))


class TestPaperNotation:
    def test_acquire_of(self):
        trace = simple_trace()
        rel_t1 = trace[3]
        assert trace.acquire_of(rel_t1) is trace[1]

    def test_release_of(self):
        trace = simple_trace()
        assert trace.release_of(trace[1]) is trace[3]
        assert trace.release_of(trace[4]) is trace[6]

    def test_release_of_open_section_is_none(self):
        trace = TraceBuilder().acq(1, "m").wr(1, "x").build()
        assert trace.release_of(trace[0]) is None

    def test_critical_section_members(self):
        trace = simple_trace()
        cs = trace.critical_section(trace[3])
        assert [e.eid for e in cs] == [1, 2, 3]

    def test_critical_section_includes_nested(self):
        trace = (TraceBuilder()
                 .acq(1, "m").acq(1, "n").wr(1, "x").rel(1, "n").rel(1, "m")
                 .build())
        outer = trace.critical_section(trace[4])
        assert [e.eid for e in outer] == [0, 1, 2, 3, 4]
        inner = trace.critical_section(trace[3])
        assert [e.eid for e in inner] == [1, 2, 3]

    def test_held_locks_nested(self):
        trace = (TraceBuilder()
                 .acq(1, "m").acq(1, "n").wr(1, "x").rel(1, "n").rel(1, "m")
                 .build())
        assert trace.held_locks(trace[2]) == ("m", "n")
        assert trace.held_locks(trace[0]) == ("m",)
        assert trace.held_locks(trace[3]) == ("m", "n")
        assert trace.held_locks(trace[4]) == ("m",)

    def test_held_locks_outside_cs_empty(self):
        trace = simple_trace()
        assert trace.held_locks(trace[0]) == ()
        assert trace.held_locks(trace[7]) == ()

    def test_program_ordered(self):
        trace = simple_trace()
        assert trace.program_ordered(trace[0], trace[1])
        assert not trace.program_ordered(trace[1], trace[0])
        assert not trace.program_ordered(trace[0], trace[7])  # cross-thread


class TestAccessors:
    def test_threads_in_first_appearance_order(self):
        assert simple_trace().threads == [1, 2]

    def test_events_of(self):
        trace = simple_trace()
        assert [e.eid for e in trace.events_of(1)] == [0, 1, 2, 3]
        assert trace.events_of("missing") == []

    def test_local_time_counts_per_thread(self):
        trace = simple_trace()
        assert trace.local_time[0] == 1
        assert trace.local_time[3] == 4
        assert trace.local_time[4] == 1  # thread 2's first event

    def test_variables_and_locks(self):
        trace = simple_trace()
        assert trace.variables() == {"x", "y"}
        assert trace.locks() == {"m"}

    def test_accesses_iterator(self):
        assert sum(1 for _ in simple_trace().accesses()) == 4

    def test_conflicting_pairs(self):
        pairs = {(a.eid, b.eid) for a, b in simple_trace().conflicting_pairs()}
        assert pairs == {(0, 7), (2, 5)}

    def test_len_iter_getitem(self):
        trace = simple_trace()
        assert len(trace) == 8
        assert list(trace)[0] is trace[0]

    def test_repr(self):
        assert "8 events" in repr(simple_trace())


class TestBuilder:
    def test_sync_idiom_expands_to_four_events(self):
        trace = TraceBuilder().sync(1, "o").build()
        kinds = [e.kind for e in trace]
        assert kinds == [EventKind.ACQUIRE, EventKind.READ, EventKind.WRITE,
                         EventKind.RELEASE]
        assert trace[1].target == "oVar"

    def test_builder_loc_propagates(self):
        trace = TraceBuilder().wr(1, "x", loc="A.b():3").build()
        assert trace[0].loc == "A.b():3"

    def test_volatile_ops(self):
        trace = TraceBuilder().vwr(1, "v").vrd(2, "v").build()
        assert trace[0].kind is EventKind.VOLATILE_WRITE
        assert trace[1].kind is EventKind.VOLATILE_READ

    def test_begin_end_markers(self):
        trace = TraceBuilder().begin(1).wr(1, "x").end(1).build()
        assert trace[0].kind is EventKind.BEGIN
        assert trace[2].kind is EventKind.END

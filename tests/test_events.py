"""Unit tests for the event model (repro.core.events)."""

import pytest

from repro.core.events import Event, EventKind, conflicts


class TestEventKind:
    def test_access_predicates(self):
        assert EventKind.READ.is_access
        assert EventKind.WRITE.is_access
        assert not EventKind.ACQUIRE.is_access
        assert not EventKind.VOLATILE_WRITE.is_access

    def test_read_write_predicates(self):
        assert EventKind.READ.is_read and not EventKind.READ.is_write
        assert EventKind.WRITE.is_write and not EventKind.WRITE.is_read

    def test_lock_ops(self):
        assert EventKind.ACQUIRE.is_lock_op
        assert EventKind.RELEASE.is_lock_op
        assert not EventKind.READ.is_lock_op

    def test_volatile_predicates(self):
        assert EventKind.VOLATILE_READ.is_volatile
        assert EventKind.VOLATILE_WRITE.is_volatile
        assert not EventKind.WRITE.is_volatile

    def test_thread_ops(self):
        for kind in (EventKind.FORK, EventKind.JOIN, EventKind.BEGIN,
                     EventKind.END):
            assert kind.is_thread_op
        assert not EventKind.ACQUIRE.is_thread_op


class TestEvent:
    def test_str_with_target(self):
        e = Event(3, 1, EventKind.WRITE, "x")
        assert str(e) == "wr(x)@T1#3"

    def test_str_without_target(self):
        e = Event(0, 2, EventKind.BEGIN)
        assert str(e) == "begin()@T2#0"

    def test_event_predicates(self):
        wr = Event(0, 1, EventKind.WRITE, "x")
        rd = Event(1, 1, EventKind.READ, "x")
        acq = Event(2, 1, EventKind.ACQUIRE, "m")
        rel = Event(3, 1, EventKind.RELEASE, "m")
        assert wr.is_write and wr.is_access and not wr.is_read
        assert rd.is_read and rd.is_access
        assert acq.is_acquire and not acq.is_release
        assert rel.is_release and not rel.is_acquire

    def test_loc_not_compared(self):
        a = Event(0, 1, EventKind.WRITE, "x", loc="A:1")
        b = Event(0, 1, EventKind.WRITE, "x", loc="B:2")
        assert a == b

    def test_frozen(self):
        e = Event(0, 1, EventKind.WRITE, "x")
        with pytest.raises(AttributeError):
            e.tid = 2  # type: ignore[misc]


class TestConflicts:
    def _e(self, eid, tid, kind, target="x"):
        return Event(eid, tid, kind, target)

    def test_write_write_conflicts(self):
        assert conflicts(self._e(0, 1, EventKind.WRITE),
                         self._e(1, 2, EventKind.WRITE))

    def test_write_read_conflicts_both_orders(self):
        w = self._e(0, 1, EventKind.WRITE)
        r = self._e(1, 2, EventKind.READ)
        assert conflicts(w, r)
        assert conflicts(r, w)

    def test_read_read_does_not_conflict(self):
        assert not conflicts(self._e(0, 1, EventKind.READ),
                             self._e(1, 2, EventKind.READ))

    def test_same_thread_does_not_conflict(self):
        assert not conflicts(self._e(0, 1, EventKind.WRITE),
                             self._e(1, 1, EventKind.WRITE))

    def test_different_variable_does_not_conflict(self):
        assert not conflicts(self._e(0, 1, EventKind.WRITE, "x"),
                             self._e(1, 2, EventKind.WRITE, "y"))

    def test_volatiles_do_not_conflict(self):
        assert not conflicts(self._e(0, 1, EventKind.VOLATILE_WRITE),
                             self._e(1, 2, EventKind.VOLATILE_READ))

    def test_non_access_does_not_conflict(self):
        assert not conflicts(self._e(0, 1, EventKind.ACQUIRE, "m"),
                             self._e(1, 2, EventKind.WRITE, "m"))

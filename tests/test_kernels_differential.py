"""Differential tests: compiled kernel backend vs the pure-Python reference.

The ``py_*`` functions in :mod:`repro.core.kernels` *define* the
semantics of the kernel layer; :mod:`repro.core._kernels` re-implements
them natively and must be bit-identical — same mutations, same return
values, same iteration (and therefore edge/race insertion) order. Two
layers of checking:

* **Kernel-op parity** — hypothesis drives each dispatched kernel with
  randomized clock/table states and compares the compiled function
  against its reference side by side (including the in-place mutations
  both perform).
* **End-to-end bit-identity** — the epoch detectors (whose per-access
  hot path is the *fused* ``access_wcp`` / ``access_dc`` kernels under
  the compiled backend, and the open-coded ``_on_access`` under the
  python one) and the full :class:`~repro.vindicate.vindicator.Vindicator`
  pipeline must produce identical races, counters, ``racing_at`` sets,
  DC edge lists, and ``analyze/1`` documents on litmus tests and
  workload traces under either backend — modulo the ``kernels``
  provenance stanza itself, which is exactly what must differ.

The whole module skips cleanly when the extension is not built (the
default pure-Python checkout): there is nothing to differentiate.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.trace import TraceBuilder
from repro.analysis.smarttrack import EpochDCDetector, EpochWCPDetector
from repro.runtime import execute
from repro.runtime.workloads import WORKLOADS
from repro.traces.gen import GeneratorConfig, random_trace
from repro.traces.litmus import ALL as LITMUS
from repro.vindicate.vindicator import Vindicator

pytestmark = pytest.mark.skipif(
    not kernels.compiled_available(),
    reason="repro.core._kernels extension not built (pure-Python checkout)")

_c = kernels._compiled_mod

SETTINGS = settings(max_examples=80, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

times = st.integers(0, 40)


@pytest.fixture(autouse=True)
def restore_backend():
    """Every test leaves the process-global backend as it found it."""
    before = kernels.active_backend()
    yield
    kernels.set_backend(before)


# ----------------------------------------------------------------------
# Kernel-op parity (randomized clock sequences)
# ----------------------------------------------------------------------
class TestKernelOps:
    @SETTINGS
    @given(data=st.data())
    def test_join_into_list(self, data):
        dst = data.draw(st.lists(times, min_size=1, max_size=8))
        src = data.draw(st.lists(times, max_size=len(dst)))
        d_py, d_c = list(dst), list(dst)
        kernels.py_join_into_list(d_py, src)
        _c.join_into_list(d_c, src)
        assert d_py == d_c

    @SETTINGS
    @given(data=st.data())
    def test_join_into_list_changed(self, data):
        dst = data.draw(st.lists(times, min_size=1, max_size=8))
        src = data.draw(st.lists(times, max_size=len(dst)))
        d_py, d_c = list(dst), list(dst)
        r_py = kernels.py_join_into_list_changed(d_py, src)
        r_c = _c.join_into_list_changed(d_c, src)
        assert (r_py, d_py) == (r_c, d_c)

    @SETTINGS
    @given(big=st.lists(times, max_size=8), small=st.lists(times, max_size=8))
    def test_dominates_list(self, big, small):
        assert (kernels.py_dominates_list(big, small)
                == _c.dominates_list(big, small))

    @SETTINGS
    @given(ops=st.lists(st.tuples(st.integers(0, 4), st.integers(0, 99)),
                        max_size=30))
    def test_record_latest_preserves_recency_order(self, ops):
        t_py, t_c = {}, {}
        for key, value in ops:
            kernels.py_record_latest(t_py, key, value)
            _c.record_latest(t_c, key, value)
        # Same content *and* same iteration order — the scans and the
        # del-then-insert maintenance depend on most-recent-last.
        assert list(t_py.items()) == list(t_c.items())

    @SETTINGS
    @given(tids=st.lists(st.integers(0, 5), min_size=1, max_size=20))
    def test_slot_intern(self, tids):
        s_py = ({}, [], [])
        s_c = ({}, [], [])
        for tid in tids:
            i_py = kernels.py_slot_intern(*s_py, tid)
            i_c = _c.slot_intern(*s_c, tid)
            assert i_py == i_c
        assert s_py == s_c

    @SETTINGS
    @given(data=st.data())
    def test_source_join_into(self, data):
        T = data.draw(st.integers(1, 5))
        entries = data.draw(st.dictionaries(
            st.integers(0, T - 1),
            st.tuples(st.integers(0, 99), times,
                      st.lists(times, min_size=T, max_size=T)),
            max_size=T))
        values = data.draw(st.lists(times, min_size=T, max_size=T))
        skip_ti = data.draw(st.integers(0, T - 1))
        v_py, v_c = list(values), list(values)
        r_py = kernels.py_source_join_into(entries, v_py, skip_ti)
        r_c = _c.source_join_into(entries, v_c, skip_ti)
        assert (r_py, v_py) == (r_c, v_c)

    @SETTINGS
    @given(data=st.data())
    def test_rule_b_fixpoint(self, data):
        T = data.draw(st.integers(1, 4))
        snap = st.one_of(st.none(), st.lists(times, min_size=T, max_size=T))
        records = data.draw(st.dictionaries(
            st.integers(0, T - 1),
            st.lists(st.tuples(times, st.integers(0, 99), times, snap)
                     .map(list), max_size=4),
            max_size=T))
        values = data.draw(st.lists(times, min_size=T, max_size=T))
        cursors_py, cursors_c = {}, {}
        v_py, v_c = list(values), list(values)
        r_py = kernels.py_rule_b_fixpoint(records, cursors_py, v_py)
        r_c = _c.rule_b_fixpoint(records, cursors_c, v_c)
        assert (r_py, v_py, cursors_py) == (r_c, v_c, cursors_c)

    @SETTINGS
    @given(data=st.data())
    def test_gated_scan(self, data):
        T = data.draw(st.integers(1, 5))
        access_map = st.dictionaries(
            st.integers(0, T - 1),
            st.tuples(times, st.integers(0, 999),
                      st.one_of(st.none(),
                                st.lists(times, min_size=T, max_size=T))),
            max_size=T)
        writes = data.draw(st.one_of(st.none(), access_map))
        reads = data.draw(st.one_of(st.none(), access_map))
        ti = data.draw(st.integers(0, T - 1))
        values = data.draw(st.lists(times, min_size=T, max_size=T))
        use_gates = data.draw(st.booleans())
        we_time, rg_time = data.draw(times), data.draw(times)
        we_ti = data.draw(st.integers(0, T - 1))
        rg_ti = data.draw(st.integers(0, T - 1))
        rg_shared = data.draw(st.booleans())
        r_py = kernels.py_gated_scan(writes, reads, ti, values, use_gates,
                                     we_time, we_ti, rg_time, rg_ti,
                                     rg_shared)
        r_c = _c.gated_scan(writes, reads, ti, values, use_gates,
                            we_time, we_ti, rg_time, rg_ti, rg_shared)
        assert r_py == r_c

    @SETTINGS
    @given(data=st.data())
    def test_scan_racing_sparse(self, data):
        class Ev:
            __slots__ = ("tid", "eid")

            def __init__(self, tid, eid):
                self.tid = tid
                self.eid = eid

        n = data.draw(st.integers(1, 10))
        local_time = data.draw(st.lists(times, min_size=n, max_size=n))
        ev = st.builds(Ev, st.integers(0, 3), st.integers(0, n - 1))
        table = st.dictionaries(st.integers(0, 3),
                                st.tuples(ev, st.integers(0, 99)), max_size=4)
        last_write = data.draw(table)
        last_read = data.draw(st.one_of(st.none(), table))
        tid = data.draw(st.integers(0, 3))
        clock = data.draw(st.dictionaries(st.integers(0, 3), times,
                                          max_size=4))
        clock_get = lambda t: clock.get(t, 0)  # noqa: E731
        r_py = kernels.py_scan_racing_sparse(last_write, last_read, tid,
                                             local_time, clock_get)
        r_c = _c.scan_racing_sparse(last_write, last_read, tid,
                                    local_time, clock_get)
        assert r_py == r_c


# ----------------------------------------------------------------------
# Fused per-access kernels: epoch detectors across backends
# ----------------------------------------------------------------------
configs = st.builds(
    GeneratorConfig,
    threads=st.integers(2, 4),
    events=st.integers(6, 40),
    variables=st.integers(1, 3),
    locks=st.integers(1, 3),
    max_nesting=st.integers(1, 3),
    use_fork_join=st.booleans(),
    volatiles=st.integers(0, 1),
)


def _epoch_results(trace, backend):
    kernels.set_backend(backend)
    out = []
    for det in (EpochWCPDetector(), EpochDCDetector(build_graph=False),
                EpochDCDetector(build_graph=True)):
        report = det.analyze(trace)
        edges = (list(det.graph.edges())
                 if getattr(det, "build_graph", False) else None)
        out.append((
            [(r.first.eid, r.second.eid) for r in report.races],
            dict(report.counters), dict(det.racing_at), edges,
            det.fast_stats(),
        ))
    return out


class TestFusedAccessKernels:
    @SETTINGS
    @given(seed=st.integers(0, 10_000), config=configs)
    def test_epoch_detectors_bit_identical(self, seed, config):
        trace = random_trace(seed, config)
        assert (_epoch_results(trace, "python")
                == _epoch_results(trace, "compiled"))

    @pytest.mark.parametrize("name", sorted(LITMUS))
    def test_litmus_bit_identical(self, name):
        trace = LITMUS[name]()
        assert (_epoch_results(trace, "python")
                == _epoch_results(trace, "compiled"))

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_workloads_bit_identical(self, name):
        trace = execute(WORKLOADS[name](scale=0.3), seed=3)
        assert (_epoch_results(trace, "python")
                == _epoch_results(trace, "compiled"))

    def test_fused_kernel_actually_engages(self):
        # Guard against silently falling back to the open-coded path:
        # on a workload trace the compiled backend must route accesses
        # and sync ops through the fused kernels (visible as bound
        # _c_access / _c_acquire / etc.).
        trace = execute(WORKLOADS["xalan"](scale=0.3), seed=3)
        kernels.set_backend("compiled")
        det = EpochDCDetector(build_graph=False)
        det.begin_trace(trace)
        assert det._c_access is _c.access_dc
        assert det._c_acquire is _c.acquire_dc
        assert det._c_release is _c.release_dc
        assert det._c_fork is _c.fork_dc
        assert det._c_join is _c.join_dc
        det_wcp = EpochWCPDetector()
        det_wcp.begin_trace(trace)
        assert det_wcp._c_access is _c.access_wcp
        assert det_wcp._c_acquire is _c.acquire_wcp
        assert det_wcp._c_release is _c.release_wcp
        assert det_wcp._c_fork is _c.fork_wcp
        assert det_wcp._c_join is _c.join_wcp
        # Since the edge buffer landed, DC+graph is fused too: edges
        # are staged C-side and drained at finish().
        det_graph = EpochDCDetector(build_graph=True)
        det_graph.begin_trace(trace)
        assert det_graph._c_access is _c.access_dc
        assert det_graph._c_release is _c.release_dc
        assert det_graph._ctx[-1] is det_graph._ebuf
        assert det_graph._sctx[16] is det_graph._ebuf

    def test_sync_fusion_toggle_unbinds_sync_kernels(self):
        # set_sync_fusion(False) is the A/B lever for benchmarking the
        # sync-op fusion in isolation: access kernels stay bound, sync
        # kernels fall back to the open-coded handlers.
        trace = execute(WORKLOADS["xalan"](scale=0.3), seed=3)
        kernels.set_backend("compiled")
        try:
            kernels.set_sync_fusion(False)
            assert not kernels.sync_fusion_enabled()
            det = EpochWCPDetector()
            det.begin_trace(trace)
            assert det._c_access is _c.access_wcp
            assert det._c_acquire is None
            assert det._c_release is None
        finally:
            kernels.set_sync_fusion(True)
        assert kernels.acquire_wcp is _c.acquire_wcp


# ----------------------------------------------------------------------
# Adversarial lock churn: the sync-op kernels under hostile schedules
# ----------------------------------------------------------------------
# The random generator above reaches sync ops incidentally; these
# builders construct traces that are *mostly* sync ops, each shaped to
# stress one leg of the fused acquire/release/fork/join kernels: deep
# nesting (lock_h/lock_p maintenance at many levels), release-heavy
# streams (rule-(b) queue churn and cursor fixpoints), fork/join storms
# (pending-fork tables and rule-(a) child edges), and ownership flips
# (the DC exclusive-owner tag's fast/slow boundary). Critical sections
# on one lock are emitted contiguously, so every trace is a valid
# execution by construction.


def _nested_trace(threads, locks, depth, rounds):
    """Each thread repeatedly acquires a rotated stack of distinct
    locks, touches shared state at the innermost level, and unwinds."""
    b = TraceBuilder()
    depth = min(depth, locks)
    for r in range(rounds):
        for t in range(1, threads + 1):
            stack = [f"m{(r + t + i) % locks}" for i in range(depth)]
            for lock in stack:
                b.acq(t, lock)
            b.wr(t, f"x{r % 2}")
            b.rd(t, "y")
            for lock in reversed(stack):
                b.rel(t, lock)
        b.wr(1 + (r % threads), "y")
    return b.build()


def _release_heavy_trace(threads, locks, sections):
    """Many tiny critical sections round-robined across threads and
    locks — the queue-maintenance worst case: every release runs the
    rule-(b) scan over every other thread's history."""
    b = TraceBuilder()
    for i in range(sections):
        t = 1 + (i % threads)
        lock = f"m{i % locks}"
        b.acq(t, lock)
        if i % 3 == 0:
            b.wr(t, f"v{i % 2}")
        b.rel(t, lock)
    b.rd(1, "v0")
    return b.build()


def _fork_join_storm(children, rounds):
    """A root thread forks a wave of children, each doing a small
    critical section plus shared writes, then joins the wave in
    reverse order — pending-fork tables and rule-(a) edges dominate."""
    b = TraceBuilder()
    root = 1
    tid = 2
    for r in range(rounds):
        wave = []
        for _ in range(children):
            child = tid
            tid += 1
            b.fork(root, child)
            wave.append(child)
        for child in wave:
            b.acq(child, "m")
            b.wr(child, "shared")
            b.rel(child, "m")
            b.end(child)
        for child in reversed(wave):
            b.join(root, child)
        b.rd(root, "shared")
    return b.build()


def _ownership_flip_trace(exclusive_runs, flip_every):
    """A lock monopolized by one thread (exclusive-owner fast path) is
    periodically stolen by the other (ownership transfer), flipping the
    DC owner tag between fast and slow release paths."""
    b = TraceBuilder()
    for run in range(exclusive_runs):
        holder = 1 if (run // max(1, flip_every)) % 2 == 0 else 2
        b.acq(holder, "hot")
        b.wr(holder, "guarded")
        b.rel(holder, "hot")
    b.rd(1, "guarded")
    b.rd(2, "guarded")
    return b.build()


class TestAdversarialLockChurn:
    @SETTINGS
    @given(threads=st.integers(1, 3), locks=st.integers(1, 4),
           depth=st.integers(1, 4), rounds=st.integers(1, 5))
    def test_deep_nested_acquires(self, threads, locks, depth, rounds):
        trace = _nested_trace(threads, locks, depth, rounds)
        assert (_epoch_results(trace, "python")
                == _epoch_results(trace, "compiled"))

    @SETTINGS
    @given(threads=st.integers(1, 4), locks=st.integers(1, 3),
           sections=st.integers(1, 40))
    def test_release_heavy_streams(self, threads, locks, sections):
        trace = _release_heavy_trace(threads, locks, sections)
        assert (_epoch_results(trace, "python")
                == _epoch_results(trace, "compiled"))

    @SETTINGS
    @given(children=st.integers(1, 5), rounds=st.integers(1, 4))
    def test_fork_join_storms(self, children, rounds):
        trace = _fork_join_storm(children, rounds)
        assert (_epoch_results(trace, "python")
                == _epoch_results(trace, "compiled"))

    @SETTINGS
    @given(exclusive_runs=st.integers(1, 24), flip_every=st.integers(1, 8))
    def test_ownership_flips(self, exclusive_runs, flip_every):
        trace = _ownership_flip_trace(exclusive_runs, flip_every)
        assert (_epoch_results(trace, "python")
                == _epoch_results(trace, "compiled"))


# ----------------------------------------------------------------------
# End-to-end: Vindicator documents across backends
# ----------------------------------------------------------------------
def _normalize(doc):
    """Strip wall-clock fields and the backend stanza itself — the one
    field documented to differ between the two runs."""
    doc = json.loads(json.dumps(doc))
    doc["timing"] = None
    doc["metrics"] = None
    assert doc["kernels"]["backend"] in ("python", "compiled")
    doc["kernels"] = None
    for vindication in doc.get("vindications", []):
        vindication["elapsed_seconds"] = None
    return doc


def _document(trace, backend, **kwargs):
    kernels.set_backend(backend)
    return _normalize(Vindicator(**kwargs).run(trace).to_document())


class TestVindicatorAcrossBackends:
    @pytest.mark.parametrize("name", sorted(LITMUS))
    def test_documents_identical_on_litmus(self, name):
        trace = LITMUS[name]()
        assert (_document(trace, "python", vindicate_all=True)
                == _document(trace, "compiled", vindicate_all=True))

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_documents_identical_on_workloads(self, name):
        trace = execute(WORKLOADS[name](scale=0.3), seed=2)
        assert (_document(trace, "python", prefilter=True)
                == _document(trace, "compiled", prefilter=True))

    def test_document_names_its_backend(self):
        trace = LITMUS["figure1"]()
        for backend in kernels.backends():
            kernels.set_backend(backend)
            doc = Vindicator().run(trace).to_document()
            assert doc["kernels"]["backend"] == backend


# ----------------------------------------------------------------------
# Composite mode: --batch with the compiled kernels
# ----------------------------------------------------------------------
np = pytest.importorskip("numpy")


class TestCompositeBatchAcrossBackends:
    """The composed fast path: the batch planner's vectorized segments
    stay numpy while its per-event replay segments dispatch to the
    fused C kernels. Documents must stay bit-identical to both the
    batch+python run and the plain reference run."""

    @pytest.mark.parametrize("name", sorted(LITMUS))
    def test_litmus(self, name):
        trace = LITMUS[name]()
        composite = _document(trace, "compiled", vindicate_all=True,
                              variant="batch")
        assert composite == _document(trace, "python", vindicate_all=True,
                                      variant="batch")
        assert composite == _document(trace, "python", vindicate_all=True)

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_workloads(self, name):
        trace = execute(WORKLOADS[name](scale=0.3), seed=2)
        composite = _document(trace, "compiled", prefilter=True,
                              variant="batch")
        assert composite == _document(trace, "python", prefilter=True,
                                      variant="batch")
        assert composite == _document(trace, "python", prefilter=True)

    @SETTINGS
    @given(seed=st.integers(0, 10_000), config=configs)
    def test_random_traces(self, seed, config):
        from repro.analysis.batch import BatchDCDetector, BatchWCPDetector

        trace = random_trace(seed, config)

        def results(backend):
            kernels.set_backend(backend)
            out = []
            for det in (BatchWCPDetector(), BatchDCDetector(build_graph=True)):
                report = det.analyze(trace)
                edges = (list(det.graph.edges())
                         if getattr(det, "build_graph", False) else None)
                out.append((
                    [(r.first.eid, r.second.eid) for r in report.races],
                    dict(report.counters), dict(det.racing_at), edges,
                ))
            return out

        assert results("python") == results("compiled")

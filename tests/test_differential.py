"""Differential tests: the linear-time online detectors must compute the
exact relations that the fixpoint reference engines define.

For each random trace, each detector runs with race forcing disabled and
its per-event clock snapshots are compared, ordering by ordering, against
the reference matrix.
"""

import pytest

from repro.analysis.dc import DCDetector
from repro.analysis.fasttrack import FastTrackDetector
from repro.analysis.hb import HBDetector
from repro.analysis.reference import ReferenceAnalysis
from repro.analysis.wcp import WCPDetector
from repro.static.lockset import analyze_locksets, cross_check
from repro.traces.gen import GeneratorConfig, random_trace

CONFIGS = {
    "basic": GeneratorConfig(threads=3, events=24, locks=2, variables=3),
    "nested": GeneratorConfig(threads=3, events=28, locks=3, variables=2,
                              max_nesting=2),
    "two_threads": GeneratorConfig(threads=2, events=26, locks=2,
                                   variables=2, max_nesting=2),
    "forks": GeneratorConfig(threads=3, events=24, locks=2, variables=2,
                             use_fork_join=True),
    "volatiles": GeneratorConfig(threads=3, events=24, locks=2, variables=2,
                                 volatiles=2),
    "everything": GeneratorConfig(threads=4, events=32, locks=3, variables=3,
                                  volatiles=1, use_fork_join=True,
                                  max_nesting=2),
}


def clock_snapshots(detector, trace):
    detector.force_order = False
    detector.begin_trace(trace)
    snaps = []
    for e in trace:
        detector.handle(e)
        snaps.append(detector.clock_of(e.tid).copy())
    return snaps


def assert_orderings_match(trace, snapshots, matrix, relation):
    local_time = trace.local_time
    for j, ej in enumerate(trace):
        snap = snapshots[j]
        for i in range(j):
            ei = trace[i]
            if ei.tid == ej.tid:
                continue
            online = snap.get(ei.tid) >= local_time[i]
            expected = bool(matrix[i, j])
            assert online == expected, (
                f"{relation}: {ei} -> {ej}: online={online}, "
                f"reference={expected}")


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("seed", range(12))
class TestOnlineMatchesReference:
    def test_hb(self, config_name, seed):
        trace = random_trace(seed, CONFIGS[config_name])
        ref = ReferenceAnalysis(trace)
        snaps = clock_snapshots(HBDetector(), trace)
        assert_orderings_match(trace, snaps, ref.hb, "HB")

    def test_wcp(self, config_name, seed):
        trace = random_trace(seed, CONFIGS[config_name])
        ref = ReferenceAnalysis(trace)
        snaps = clock_snapshots(WCPDetector(), trace)
        assert_orderings_match(trace, snaps, ref.wcp, "WCP")

    def test_dc(self, config_name, seed):
        trace = random_trace(seed, CONFIGS[config_name])
        ref = ReferenceAnalysis(trace)
        snaps = clock_snapshots(DCDetector(build_graph=False), trace)
        assert_orderings_match(trace, snaps, ref.dc, "DC")


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("seed", range(12))
class TestRacesAreLocksetCandidates:
    """Structural cross-check (the ``--sanitize`` invariant): every race a
    detector reports must be on a variable the lockset pre-analysis left
    as a race candidate.  The static pass over-approximates the dynamic
    detectors, so a violation here means a detector bug (or a filter
    soundness bug), not a flaky trace."""

    def _check(self, detector, trace):
        report = detector.analyze(trace)
        lockset = analyze_locksets(trace.events)
        assert cross_check(report.races, lockset) == []

    def test_hb(self, config_name, seed):
        self._check(HBDetector(), random_trace(seed, CONFIGS[config_name]))

    def test_fasttrack(self, config_name, seed):
        self._check(FastTrackDetector(),
                    random_trace(seed, CONFIGS[config_name]))

    def test_wcp(self, config_name, seed):
        self._check(WCPDetector(), random_trace(seed, CONFIGS[config_name]))

    def test_dc(self, config_name, seed):
        self._check(DCDetector(build_graph=False),
                    random_trace(seed, CONFIGS[config_name]))


@pytest.mark.parametrize("seed", range(8))
def test_graph_closure_equals_dc_relation(seed):
    """With the graph enabled and forcing off, graph reachability must be
    exactly the reference DC relation."""
    trace = random_trace(seed, CONFIGS["nested"])
    ref = ReferenceAnalysis(trace)
    det = DCDetector(build_graph=True)
    det.force_order = False
    det.analyze(trace)
    for i in range(len(trace)):
        descendants = det.graph.descendants([i])
        for j in range(i + 1, len(trace)):
            graph_ordered = j in descendants
            if trace[i].tid == trace[j].tid:
                assert graph_ordered  # PO chain
            else:
                assert graph_ordered == bool(ref.dc[i, j]), (i, j)

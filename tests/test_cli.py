"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.traces.io import dump_trace
from repro.traces.litmus import figure1, figure2


class TestLitmusCommand:
    def test_single_litmus(self, capsys):
        assert main(["litmus", "figure2"]) == 0
        out = capsys.readouterr().out
        assert "figure2" in out
        assert "DC: 1 static races" in out
        assert "predictable race" in out

    def test_all_litmus(self, capsys):
        assert main(["litmus"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "figure4b" in out

    def test_unknown_litmus(self, capsys):
        assert main(["litmus", "nope"]) == 2
        assert "unknown litmus" in capsys.readouterr().err

    def test_witness_flag(self, capsys):
        assert main(["litmus", "figure2", "--witness"]) == 0
        out = capsys.readouterr().out
        assert "witness (correctly reordered trace)" in out


class TestAnalyzeCommand:
    def test_analyze_file(self, tmp_path, capsys):
        path = tmp_path / "t.txt"
        dump_trace(figure1(), path)
        assert main(["analyze", str(path), "--vindicate-all"]) == 0
        out = capsys.readouterr().out
        assert "WCP: 1 static races" in out
        assert "vindication:" in out

    def test_analyze_reports_distances(self, tmp_path, capsys):
        path = tmp_path / "t.txt"
        dump_trace(figure2(), path)
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "DC-only static races" in out

    def test_policy_flag(self, tmp_path, capsys):
        path = tmp_path / "t.txt"
        dump_trace(figure2(), path)
        assert main(["analyze", str(path), "--policy", "earliest"]) == 0


class TestWorkloadCommand:
    def test_workload_runs(self, capsys):
        assert main(["workload", "luindex", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "static races" in out

    def test_workload_fast_path(self, capsys):
        assert main(["workload", "luindex", "--scale", "0.2",
                     "--fast-path"]) == 0
        assert "fast path removed" in capsys.readouterr().out

    def test_unknown_workload(self, capsys):
        assert main(["workload", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.schema import (
    validate_lint_document,
    validate_scan_document,
)
from repro.traces.io import dump_trace
from repro.traces.litmus import figure1, figure2

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestLitmusCommand:
    def test_single_litmus(self, capsys):
        assert main(["litmus", "figure2"]) == 0
        out = capsys.readouterr().out
        assert "figure2" in out
        assert "DC: 1 static races" in out
        assert "predictable race" in out

    def test_all_litmus(self, capsys):
        assert main(["litmus"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "figure4b" in out

    def test_unknown_litmus(self, capsys):
        assert main(["litmus", "nope"]) == 2
        assert "unknown litmus" in capsys.readouterr().err

    def test_witness_flag(self, capsys):
        assert main(["litmus", "figure2", "--witness"]) == 0
        out = capsys.readouterr().out
        assert "witness (correctly reordered trace)" in out


class TestAnalyzeCommand:
    def test_analyze_file(self, tmp_path, capsys):
        path = tmp_path / "t.txt"
        dump_trace(figure1(), path)
        assert main(["analyze", str(path), "--vindicate-all"]) == 0
        out = capsys.readouterr().out
        assert "WCP: 1 static races" in out
        assert "vindication:" in out

    def test_analyze_reports_distances(self, tmp_path, capsys):
        path = tmp_path / "t.txt"
        dump_trace(figure2(), path)
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "DC-only static races" in out

    def test_policy_flag(self, tmp_path, capsys):
        path = tmp_path / "t.txt"
        dump_trace(figure2(), path)
        assert main(["analyze", str(path), "--policy", "earliest"]) == 0


class TestWorkloadCommand:
    def test_workload_runs(self, capsys):
        assert main(["workload", "luindex", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "static races" in out

    def test_workload_fast_path(self, capsys):
        assert main(["workload", "luindex", "--scale", "0.2",
                     "--fast-path"]) == 0
        assert "fast path removed" in capsys.readouterr().out

    def test_unknown_workload(self, capsys):
        assert main(["workload", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err


class TestLintCommand:
    def test_clean_trace(self, tmp_path, capsys):
        path = tmp_path / "t.txt"
        dump_trace(figure1(), path)
        assert main(["lint", str(path)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s), 0 note(s)" in out

    def test_errors_reported_with_line_and_code(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("# comment\nT1 wr x\nT2 rel m\n")
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert f"{path}:line 3: SA101 error:" in out
        assert "1 error(s)" in out

    def test_warnings_do_not_fail(self, tmp_path, capsys):
        path = tmp_path / "warn.txt"
        path.write_text("T1 acq m\nT1 wr x\n")
        assert main(["lint", str(path)]) == 0
        out = capsys.readouterr().out
        assert "SA120 warning" in out

    def test_accepts_traces_analyze_rejects(self, tmp_path, capsys):
        # `analyze` would raise TraceFormatError on this trace; `lint`
        # must still process it and report every finding.
        path = tmp_path / "mess.txt"
        path.write_text("T1 rel m\nT1 rel m\nT2 join T9\n")
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert out.count("SA101") == 2
        assert "SA110" in out

    def test_missing_file_is_usage_failure(self, tmp_path, capsys):
        # Exit-code contract: 2 is reserved for usage/IO failures, so a
        # missing trace is distinguishable from a trace with findings.
        assert main(["lint", str(tmp_path / "absent.txt")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_json_document_is_schema_valid(self, tmp_path, capsys):
        path = tmp_path / "t.txt"
        dump_trace(figure1(), path)
        assert main(["lint", str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        validate_lint_document(doc)
        assert doc["schema"] == "vindicator.lint/1"
        assert doc["summary"]["findings"] == 0

    def test_json_reports_findings_and_exit_1(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("# comment\nT1 wr x\nT2 rel m\n")
        assert main(["lint", str(path), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        validate_lint_document(doc)
        assert doc["summary"]["errors"] == 1
        [finding] = doc["findings"]
        assert finding["code"] == "SA101"
        assert finding["severity"] == "error"
        assert finding["line"] == 3


class TestScanCommand:
    def test_broken_cache_reports_the_race(self, capsys):
        assert main(["scan", str(EXAMPLES / "broken_cache.py")]) == 1
        out = capsys.readouterr().out
        assert "SA201" in out
        assert "cache.entry" in out

    def test_json_document_is_schema_valid(self, capsys):
        assert main(["scan", str(EXAMPLES / "broken_cache.py"),
                     "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        validate_scan_document(doc)
        assert doc["schema"] == "vindicator.scan/1"
        [module] = doc["modules"]
        assert "cache.entry" in [f["path"] for f in module["findings"]]
        # The instrumentation plan prunes thread-local sites.
        pruned = [s for s in module["plan"] if not s["instrument"]]
        assert pruned
        assert all(s["tier"] == "thread-local" for s in pruned)

    def test_clean_source_exits_0(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text(
            "import threading\n"
            "LOCK = threading.Lock()\n"
            "total = 0\n"
            "def work():\n"
            "    global total\n"
            "    with LOCK:\n"
            "        total += 1\n"
            "def main():\n"
            "    t = threading.Thread(target=work)\n"
            "    t.start()\n"
            "    work()\n"
            "    t.join()\n")
        assert main(["scan", str(path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_missing_path_is_usage_failure(self, tmp_path, capsys):
        assert main(["scan", str(tmp_path / "absent.py")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_syntax_error_is_usage_failure(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("def broken(:\n")
        assert main(["scan", str(path)]) == 2
        assert "bad.py" in capsys.readouterr().err

    def test_directory_scan_aggregates(self, capsys):
        assert main(["scan", str(EXAMPLES), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        validate_scan_document(doc)
        assert doc["summary"]["modules"] >= 4
        assert doc["summary"]["errors"] >= 3


class TestStaticFlags:
    def test_prefilter_reports_counters(self, capsys):
        assert main(["litmus", "figure2", "--prefilter"]) == 0
        out = capsys.readouterr().out
        assert "lockset pre-analysis:" in out
        assert "pre-filter: skipped" in out
        # Verdicts are unchanged by the filter.
        assert "DC: 1 static races" in out
        assert "predictable race" in out

    def test_prefilter_matches_unfiltered_output(self, capsys):
        assert main(["litmus", "figure1"]) == 0
        plain = capsys.readouterr().out
        assert main(["litmus", "figure1", "--prefilter"]) == 0
        filtered = capsys.readouterr().out
        keep = [line for line in plain.splitlines()
                if ("races" in line or "race" in line)
                and "ms)" not in line]  # vindication lines embed wall time
        for line in keep:
            assert line in filtered

    def test_sanitize_passes_on_litmus(self, capsys):
        assert main(["litmus", "figure2", "--sanitize"]) == 0
        assert "lockset pre-analysis:" in capsys.readouterr().out

    def test_sanitize_with_prefilter_on_workload(self, capsys):
        assert main(["workload", "luindex", "--scale", "0.2",
                     "--prefilter", "--sanitize"]) == 0
        out = capsys.readouterr().out
        assert "pre-filter: skipped" in out

    def test_analyze_accepts_both_flags(self, tmp_path, capsys):
        path = tmp_path / "t.txt"
        dump_trace(figure2(), path)
        assert main(["analyze", str(path), "--prefilter", "--sanitize",
                     "--vindicate-all"]) == 0
        out = capsys.readouterr().out
        assert "lockset pre-analysis:" in out
        assert "vindication:" in out


#: Every valid composition of the detector-variant, parallelism, and
#: static-analysis flags. --fast-vc and --batch are mutually exclusive
#: (both pick the WCP/DC implementation); everything else composes.
VARIANT_FLAGS = [[], ["--fast-vc"], ["--batch"]]


class TestVariantFlagMatrix:
    @pytest.mark.parametrize("variant", VARIANT_FLAGS,
                             ids=["reference", "fast-vc", "batch"])
    @pytest.mark.parametrize("static", [[], ["--prefilter"]],
                             ids=["plain", "prefilter"])
    def test_workload_matrix_serial(self, variant, static, capsys):
        assert main(["workload", "luindex", "--scale", "0.2",
                     "--vindicate-all", *variant, *static]) == 0
        out = capsys.readouterr().out
        assert "DC:" in out
        if static:
            assert "pre-filter: skipped" in out

    @pytest.mark.parametrize("variant", VARIANT_FLAGS,
                             ids=["reference", "fast-vc", "batch"])
    def test_workload_matrix_parallel(self, variant, capsys):
        # The variant must reach the worker processes (bit-identical
        # verdict lines vs the serial run of the same variant).
        assert main(["workload", "luindex", "--scale", "0.2",
                     "--vindicate-all", *variant]) == 0
        serial = capsys.readouterr().out
        assert main(["workload", "luindex", "--scale", "0.2",
                     "--vindicate-all", "--jobs", "2", *variant]) == 0
        parallel = capsys.readouterr().out
        keep = [line for line in serial.splitlines()
                if "race" in line and "ms)" not in line]
        assert keep
        for line in keep:
            assert line in parallel

    @pytest.mark.parametrize("variant", VARIANT_FLAGS[1:],
                             ids=["fast-vc", "batch"])
    def test_litmus_and_analyze_accept_variants(self, variant, tmp_path,
                                                capsys):
        assert main(["litmus", "figure2", *variant]) == 0
        assert "DC: 1 static races" in capsys.readouterr().out
        path = tmp_path / "t.txt"
        dump_trace(figure2(), path)
        assert main(["analyze", str(path), "--vindicate-all",
                     *variant]) == 0
        assert "vindication:" in capsys.readouterr().out

    def test_batch_matches_reference_output(self, capsys):
        assert main(["workload", "xalan", "--scale", "0.3",
                     "--vindicate-all"]) == 0
        plain = capsys.readouterr().out
        assert main(["workload", "xalan", "--scale", "0.3",
                     "--vindicate-all", "--batch"]) == 0
        batched = capsys.readouterr().out
        keep = [line for line in plain.splitlines()
                if "race" in line and "ms)" not in line]
        assert keep
        for line in keep:
            assert line in batched

    def test_fast_vc_and_batch_compose_to_batch(self, capsys):
        # The flags are no longer mutually exclusive: batch subsumes
        # fast-vc (repro.analysis.variants.resolve), so giving both is
        # simply batch and must match the batch-only report.
        def stable(out: str) -> list:
            return [line for line in out.splitlines() if "ms)" not in line]

        assert main(["litmus", "figure2", "--batch"]) == 0
        batch_only = stable(capsys.readouterr().out)
        assert main(["litmus", "figure2", "--fast-vc", "--batch"]) == 0
        assert stable(capsys.readouterr().out) == batch_only

    def test_variant_resolution_precedence(self):
        from repro.analysis.variants import VariantSpec, resolve

        assert resolve() == VariantSpec("reference", None)
        assert resolve(fast_vc=True).variant == "fast"
        assert resolve(batch=True).variant == "batch"
        assert resolve(fast_vc=True, batch=True).variant == "batch"
        assert resolve(variant="fast", batch=True).variant == "fast"
        spec = resolve(batch=True, kernels_backend="python")
        assert spec == VariantSpec("batch", "python")
        with pytest.raises(ValueError):
            resolve(variant="warp")
        with pytest.raises(ValueError):
            resolve(kernels_backend="fortran")


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

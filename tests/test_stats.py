"""Tests for the statistics helpers (distances, CDFs)."""

from repro.core.events import Event, EventKind
from repro.analysis.races import DynamicRace, RaceClass
from repro.stats.cdf import (
    ascii_cdf_plot,
    cdf_csv,
    median,
    percentage_at_least,
    survival_series,
)
from repro.stats.distances import (
    distance_range,
    distances_by_class,
    static_distance_ranges,
)


def race(eid1, eid2, loc="L", race_class=None):
    e1 = Event(eid1, 1, EventKind.WRITE, "x", loc=f"{loc}.w")
    e2 = Event(eid2, 2, EventKind.READ, "x", loc=f"{loc}.r")
    return DynamicRace(first=e1, second=e2, relation="DC",
                       race_class=race_class)


class TestDistances:
    def test_distance_range(self):
        rng = distance_range([race(0, 5), race(1, 100)])
        assert rng.minimum == 5 and rng.maximum == 99 and rng.count == 2

    def test_distance_range_empty(self):
        assert distance_range([]) is None

    def test_range_str_single(self):
        assert str(distance_range([race(0, 5)])) == "5"

    def test_range_str_span(self):
        rng = distance_range([race(0, 5), race(0, 2000)])
        assert str(rng) == "5-2,000"

    def test_static_distance_ranges(self):
        races = [race(0, 5, "A"), race(10, 100, "A"), race(0, 7, "B")]
        ranges = static_distance_ranges(races)
        assert ranges[frozenset({"A.w", "A.r"})].maximum == 90
        assert ranges[frozenset({"B.w", "B.r"})].count == 1

    def test_distances_by_class(self):
        races = [race(0, 5, race_class=RaceClass.HB),
                 race(0, 50, race_class=RaceClass.DC_ONLY),
                 race(0, 9)]
        by = distances_by_class(races)
        assert by[RaceClass.HB] == [5]
        assert by[RaceClass.DC_ONLY] == [50]
        assert len(by) == 2


class TestSurvival:
    def test_series_shape(self):
        series = survival_series([1, 10, 100])
        assert series[0] == (1, 100.0)
        assert series[-1] == (100, pytest_approx(100.0 / 3))

    def test_duplicates_collapse(self):
        series = survival_series([5, 5, 5])
        assert series == [(5, 100.0)]

    def test_empty(self):
        assert survival_series([]) == []

    def test_percentage_at_least(self):
        values = [1, 10, 100, 1000]
        assert percentage_at_least(values, 10) == 75.0
        assert percentage_at_least(values, 10_000) == 0.0
        assert percentage_at_least([], 1) == 0.0

    def test_median(self):
        assert median([1, 3, 5]) == 3
        assert median([1, 3]) == 2.0
        assert median([]) == 0.0


class TestRendering:
    def test_ascii_plot_contains_legend(self):
        plot = ascii_cdf_plot({"HB": [1, 5, 10], "DC-only": [100, 1000]})
        assert "HB (n=3)" in plot
        assert "DC-only (n=2)" in plot
        assert "100%" in plot

    def test_ascii_plot_empty(self):
        assert "no dynamic races" in ascii_cdf_plot({})

    def test_csv(self):
        csv = cdf_csv({"HB": [2, 4]})
        lines = csv.splitlines()
        assert lines[0] == "class,event_distance,percent_at_least"
        assert "HB,2,100.00" in lines


def pytest_approx(x):
    import pytest
    return pytest.approx(x)

"""Tests for the CLI's observability surface: ``profile``, the global
``--metrics`` flag, and ``--json``."""

import json
import re

import pytest

from repro import obs
from repro.cli import main
from repro.obs.schema import (
    validate_analyze_document,
    validate_jsonl_path,
    validate_snapshot,
)
from repro.traces.io import dump_trace
from repro.traces.litmus import figure2


@pytest.fixture()
def trace_file(tmp_path):
    path = tmp_path / "t.txt"
    dump_trace(figure2(), path)
    return str(path)


class TestProfileCommand:
    def test_trace_file_prints_span_tree(self, trace_file, capsys):
        assert main(["profile", trace_file]) == 0
        out = capsys.readouterr().out
        for phase in ("profile.load", "pipeline.run", "pipeline.analysis",
                      "pipeline.vindicate"):
            assert phase in out
        assert "counters:" in out
        assert re.search(r"analysis\.dc\.events\s+12", out)

    def test_phase_times_sum_to_total(self, trace_file, capsys):
        # Acceptance: the root phase accounts for ~all wall time, and
        # each printed percentage is relative to it.
        assert main(["profile", trace_file]) == 0
        out = capsys.readouterr().out
        rows = re.findall(r"^(\s*)(\S+)\s+([0-9.]+) ms\s+(\d+)%",
                          out, flags=re.MULTILINE)
        assert rows, out
        indent, root_name, root_ms, root_pct = rows[0]
        assert indent == "" and int(root_pct) == 100
        # Direct children of the root sum to <= and ~= the root time.
        child_ms = [float(ms) for ind, _, ms, _ in rows[1:]
                    if len(ind) == 2]
        assert child_ms
        assert sum(child_ms) <= float(root_ms) * 1.01
        assert sum(child_ms) >= float(root_ms) * 0.5

    def test_workload_target(self, capsys):
        assert main(["profile", "avrora", "--scale", "0.2",
                     "--min-ms", "0"]) == 0
        out = capsys.readouterr().out
        assert "runtime.execute" in out
        assert "runtime.context_switches" in out

    def test_unknown_target(self, capsys):
        assert main(["profile", "not-a-thing"]) == 2
        assert "unknown trace file or workload" in capsys.readouterr().err

    def test_metrics_export(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "prof.jsonl"
        assert main(["profile", trace_file, "--metrics",
                     str(out_path)]) == 0
        counts = validate_jsonl_path(str(out_path))
        assert counts["meta"] == 1 and counts["metrics"] == 1
        assert counts["span"] >= 4

    def test_obs_disabled_after_profile(self, trace_file, capsys):
        assert main(["profile", trace_file]) == 0
        assert not obs.enabled()


class TestGlobalMetricsFlag:
    def test_jsonl_stream(self, tmp_path, capsys):
        out_path = tmp_path / "run.jsonl"
        assert main(["--metrics", str(out_path), "litmus", "figure2"]) == 0
        counts = validate_jsonl_path(str(out_path))
        assert counts["meta"] == 1 and counts["metrics"] == 1
        assert counts["span"] >= 5
        # Human output is unchanged by --metrics.
        assert "DC: 1 static races" in capsys.readouterr().out

    def test_json_snapshot(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "run.json"
        assert main(["--metrics", str(out_path), "analyze",
                     trace_file]) == 0
        doc = json.loads(out_path.read_text())
        validate_snapshot(doc)
        assert doc["metrics"]["counters"]["analysis.dc.events"] == 12
        assert doc["spans"][0]["name"] == "pipeline.run"

    def test_prometheus_text(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "run.prom"
        assert main(["--metrics", str(out_path), "analyze",
                     trace_file]) == 0
        text = out_path.read_text()
        assert "# TYPE vindicator_analysis_dc_events counter" in text

    def test_disabled_without_flag(self, trace_file, capsys):
        assert main(["analyze", trace_file]) == 0
        assert not obs.enabled()


class TestJsonFlag:
    def test_analyze_json_validates(self, trace_file, capsys):
        assert main(["analyze", trace_file, "--vindicate-all",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        validate_analyze_document(doc)
        assert doc["analyses"]["dc"]["static_races"] == 1
        assert doc["vindications"][0]["verdict"] == "predictable race"
        assert doc["trace"]["provenance"]["kind"] == "file"
        assert doc["metrics"] is None  # obs was off

    def test_workload_json_validates(self, capsys):
        assert main(["workload", "avrora", "--scale", "0.2", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        validate_analyze_document(doc)
        assert doc["trace"]["provenance"]["kind"] == "scheduler"

    def test_json_with_metrics_carries_snapshot(self, trace_file,
                                                tmp_path, capsys):
        out_path = tmp_path / "m.json"
        assert main(["--metrics", str(out_path), "analyze", trace_file,
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        validate_analyze_document(doc)
        assert doc["metrics"]["counters"]["analysis.hb.events"] == 12

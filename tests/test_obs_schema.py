"""Unit tests for the dependency-free schema validator (repro.obs.schema)."""

import pytest

from repro.obs import schema as obs_schema
from repro.obs.schema import (
    SchemaError,
    validate,
    validate_jsonl_lines,
    validate_jsonl_record,
    validate_lint_document,
    validate_scan_document,
    validate_snapshot,
)


class TestValidator:
    def test_type_checks(self):
        validate(3, {"type": "integer"})
        validate(3.5, {"type": "number"})
        validate(3, {"type": "number"})  # ints are numbers
        with pytest.raises(SchemaError):
            validate("x", {"type": "integer"})

    def test_bool_is_not_an_integer(self):
        # JSON distinguishes true from 1; bool is an int subclass in
        # Python, so the validator must special-case it.
        with pytest.raises(SchemaError):
            validate(True, {"type": "integer"})
        validate(True, {"type": "boolean"})

    def test_union_types(self):
        schema = {"type": ["string", "null"]}
        validate("x", schema)
        validate(None, schema)
        with pytest.raises(SchemaError):
            validate(3, schema)

    def test_required_and_additional_properties(self):
        schema = {"type": "object", "required": ["a"],
                  "additionalProperties": False,
                  "properties": {"a": {"type": "integer"}}}
        validate({"a": 1}, schema)
        with pytest.raises(SchemaError, match="missing required key"):
            validate({}, schema)
        with pytest.raises(SchemaError, match="unexpected keys"):
            validate({"a": 1, "b": 2}, schema)

    def test_additional_properties_schema(self):
        schema = {"type": "object",
                  "additionalProperties": {"type": "number"}}
        validate({"x": 1, "y": 2.5}, schema)
        with pytest.raises(SchemaError):
            validate({"x": "not a number"}, schema)

    def test_items_and_enum(self):
        validate([1, 2], {"type": "array", "items": {"type": "integer"}})
        with pytest.raises(SchemaError, match=r"\[1\]"):
            validate([1, "x"], {"type": "array",
                                "items": {"type": "integer"}})
        with pytest.raises(SchemaError, match="enum"):
            validate("c", {"enum": ["a", "b"]})

    def test_ref_recursion(self):
        node = {"type": "object", "required": ["name"],
                "properties": {"name": {"type": "string"},
                               "kids": {"type": "array",
                                        "items": {"$ref": "node"}}}}
        defs = {"node": node}
        validate({"name": "a", "kids": [{"name": "b", "kids": []}]},
                 node, defs=defs)
        with pytest.raises(SchemaError, match=r"kids\[0\]"):
            validate({"name": "a", "kids": [{"kids": []}]}, node, defs=defs)

    def test_unresolvable_ref(self):
        with pytest.raises(SchemaError, match="unresolvable"):
            validate({}, {"$ref": "nowhere"})

    def test_error_names_the_path(self):
        schema = {"type": "object",
                  "properties": {"a": {"type": "object",
                                       "properties": {
                                           "b": {"type": "integer"}}}}}
        with pytest.raises(SchemaError) as err:
            validate({"a": {"b": "x"}}, schema)
        assert err.value.path == "$.a.b"


class TestStreamGrammar:
    META = '{"type":"meta","schema":"vindicator.obs/1"}'
    SPAN = '{"type":"span","name":"s","elapsed_seconds":0.1,"depth":0}'
    METRICS = ('{"type":"metrics","metrics":'
               '{"counters":{},"gauges":{},"histograms":{}}}')

    def test_valid_stream(self):
        counts = validate_jsonl_lines([self.META, self.SPAN, self.METRICS])
        assert counts == {"meta": 1, "span": 1, "metrics": 1}

    def test_blank_lines_are_skipped(self):
        validate_jsonl_lines([self.META, "", self.METRICS, "  "])

    def test_must_start_with_meta(self):
        with pytest.raises(SchemaError, match="first record"):
            validate_jsonl_lines([self.SPAN, self.METRICS])

    def test_must_end_with_exactly_one_metrics(self):
        with pytest.raises(SchemaError, match="metrics"):
            validate_jsonl_lines([self.META, self.SPAN])
        with pytest.raises(SchemaError, match="metrics"):
            validate_jsonl_lines([self.META, self.METRICS, self.METRICS])
        with pytest.raises(SchemaError, match="metrics"):
            validate_jsonl_lines([self.META, self.METRICS, self.SPAN])

    def test_empty_stream_rejected(self):
        with pytest.raises(SchemaError, match="empty"):
            validate_jsonl_lines([])

    def test_invalid_json_names_the_line(self):
        with pytest.raises(SchemaError, match="f:2"):
            validate_jsonl_lines([self.META, "{nope"], source="f")

    def test_unknown_record_type(self):
        with pytest.raises(SchemaError, match="unknown record type"):
            validate_jsonl_record({"type": "mystery"})

    def test_span_record_rejects_extra_keys(self):
        with pytest.raises(SchemaError, match="unexpected keys"):
            validate_jsonl_record(
                {"type": "span", "name": "s", "elapsed_seconds": 0.1,
                 "depth": 0, "surprise": 1})


class TestSnapshotSchema:
    def test_minimal_snapshot(self):
        validate_snapshot({
            "schema": "vindicator.obs-snapshot/1",
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
            "spans": [],
        })

    def test_wrong_schema_tag_rejected(self):
        with pytest.raises(SchemaError, match="enum"):
            validate_snapshot({
                "schema": "vindicator.obs-snapshot/2",
                "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
                "spans": [],
            })

    def test_nested_span_tree_validates(self):
        validate_snapshot({
            "schema": "vindicator.obs-snapshot/1",
            "metrics": {"counters": {"a": 1}, "gauges": {},
                        "histograms": {"h": {"buckets": [1.0],
                                             "counts": [0, 1],
                                             "sum": 2.0, "count": 1}}},
            "spans": [{"name": "root", "elapsed_seconds": 0.5,
                       "children": [{"name": "kid",
                                     "elapsed_seconds": 0.25}]}],
        })
        with pytest.raises(SchemaError, match=r"children\[0\]"):
            validate_snapshot({
                "schema": "vindicator.obs-snapshot/1",
                "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
                "spans": [{"name": "root", "elapsed_seconds": 0.5,
                           "children": [{"elapsed_seconds": 0.25}]}],
            })


class TestLintSchema:
    def document(self):
        return {
            "schema": "vindicator.lint/1",
            "source": "t.txt",
            "events": 3,
            "summary": {"findings": 1, "errors": 1, "warnings": 0,
                        "notes": 0},
            "findings": [{"code": "SA101", "severity": "error",
                          "message": "boom", "event_index": 2,
                          "line": 3}],
        }

    def test_valid_document(self):
        validate_lint_document(self.document())

    def test_schema_id_matches_the_producer(self):
        from repro.static.lint import LINT_SCHEMA_ID
        assert obs_schema.LINT_SCHEMA_ID == LINT_SCHEMA_ID

    def test_real_document_validates(self):
        from repro.static.lint import lint_document, lint_events
        from repro.traces.litmus import figure1
        trace = figure1()
        diags = lint_events(trace.events)
        validate_lint_document(
            lint_document("t.txt", len(trace.events), diags, {}))

    def test_bad_severity_rejected(self):
        doc = self.document()
        doc["findings"][0]["severity"] = "fatal"
        with pytest.raises(SchemaError, match="enum"):
            validate_lint_document(doc)

    def test_extra_keys_rejected(self):
        doc = self.document()
        doc["surprise"] = 1
        with pytest.raises(SchemaError, match="unexpected keys"):
            validate_lint_document(doc)


class TestScanSchema:
    def document(self):
        from repro.static.pysrc import scan_path
        return scan_path("examples/broken_cache.py").to_document()

    def test_real_document_validates(self):
        validate_scan_document(self.document())

    def test_schema_id_matches_the_producer(self):
        from repro.static.pysrc import SCAN_SCHEMA_ID
        assert obs_schema.SCAN_SCHEMA_ID == SCAN_SCHEMA_ID

    def test_wrong_schema_tag_rejected(self):
        doc = self.document()
        doc["schema"] = "vindicator.scan/2"
        with pytest.raises(SchemaError, match="enum"):
            validate_scan_document(doc)

    def test_bad_tier_rejected(self):
        doc = self.document()
        doc["modules"][0]["plan"][0]["tier"] = "mysterious"
        with pytest.raises(SchemaError, match="enum"):
            validate_scan_document(doc)

    def test_missing_plan_rejected(self):
        doc = self.document()
        del doc["modules"][0]["plan"]
        with pytest.raises(SchemaError, match="missing required key"):
            validate_scan_document(doc)

"""Tests for the FastTrack (epoch-optimised HB) detector."""

import pytest

from repro.core.trace import TraceBuilder
from repro.analysis.fasttrack import FastTrackDetector
from repro.analysis.hb import HBDetector
from repro.traces.gen import GeneratorConfig, random_trace


def racy_accesses(detector, trace):
    """The set of access events at which the detector reported a race."""
    report = detector.analyze(trace)
    return {r.second.eid for r in report.races}


class TestBasics:
    def test_write_write_race(self):
        trace = TraceBuilder().wr(1, "x").wr(2, "x").build()
        assert racy_accesses(FastTrackDetector(), trace) == {1}

    def test_write_read_race(self):
        trace = TraceBuilder().wr(1, "x").rd(2, "x").build()
        assert racy_accesses(FastTrackDetector(), trace) == {1}

    def test_read_share_then_write_race(self):
        # Two concurrent reads inflate the epoch into a read map; the
        # unordered write then races.
        trace = (TraceBuilder()
                 .rd(1, "x").rd(2, "x").wr(3, "x").build())
        det = FastTrackDetector()
        assert racy_accesses(det, trace) == {2}
        assert det.report.counters.get("ft_read_inflations") == 1

    def test_ordered_reads_keep_epoch(self):
        trace = (TraceBuilder()
                 .rd(1, "x").acq(1, "m").rel(1, "m")
                 .acq(2, "m").rel(2, "m").rd(2, "x")
                 .build())
        det = FastTrackDetector()
        det.analyze(trace)
        assert det.report.counters.get("ft_read_inflations", 0) == 0

    def test_lock_protected_no_race(self):
        trace = (TraceBuilder()
                 .acq(1, "m").wr(1, "x").rel(1, "m")
                 .acq(2, "m").wr(2, "x").rd(2, "x").rel(2, "m")
                 .build())
        assert racy_accesses(FastTrackDetector(), trace) == set()

    def test_read_then_unordered_write_races(self):
        trace = TraceBuilder().rd(1, "x").wr(2, "x").build()
        assert racy_accesses(FastTrackDetector(), trace) == {1}


class TestAgreementWithHB:
    """FastTrack must flag a first race per variable exactly when the
    full-vector-clock HB detector does."""

    @pytest.mark.parametrize("seed", range(40))
    def test_first_race_of_trace_agrees(self, seed):
        """Until the first race, no forcing has polluted either detector's
        state, so the first reported race must be identical (FastTrack's
        precision guarantee). After a race the detectors may diverge:
        epochs cannot represent the per-thread history that forced
        ordering absorbs."""
        cfg = GeneratorConfig(threads=3, events=30, locks=2, variables=3)
        trace = random_trace(seed, cfg)
        hb = HBDetector()
        hb.transitive_force = False
        hb_races = hb.analyze(trace).races
        ft_races = FastTrackDetector().analyze(trace).races
        first_hb = (hb_races[0].first.eid, hb_races[0].second.eid) if hb_races else None
        first_ft = (ft_races[0].first.eid, ft_races[0].second.eid) if ft_races else None
        assert first_hb == first_ft

    @pytest.mark.parametrize("seed", range(40, 60))
    def test_race_existence_agrees(self, seed):
        cfg = GeneratorConfig(threads=4, events=40, locks=2, variables=2,
                              use_fork_join=True)
        trace = random_trace(seed, cfg)
        hb_detector = HBDetector()
        hb_detector.transitive_force = False
        hb = hb_detector.analyze(trace)
        ft = FastTrackDetector().analyze(trace)
        assert bool(hb.races) == bool(ft.races)

"""Unit tests for the obs exporters (JSONL stream, snapshot, Prometheus)."""

import io
import json

from repro import obs
from repro.obs.export import (
    JsonlWriter,
    meta_record,
    metrics_record,
    snapshot_document,
    span_record,
    to_prometheus,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import (
    OBS_SNAPSHOT_SCHEMA_ID,
    OBS_STREAM_SCHEMA_ID,
    validate_jsonl_lines,
    validate_snapshot,
)
from repro.obs.spans import Tracer


def _sample_registry():
    reg = MetricsRegistry()
    reg.add("analysis.dc.events", 100)
    reg.gauge("graph.nodes").set(12)
    reg.histogram("vindicate.seconds", buckets=(0.1, 1.0)).observe(0.5)
    return reg


def _sample_tracer(on_close=None):
    tracer = Tracer(sample_memory=False, on_close=on_close)
    with tracer.span("root") as root:
        root.annotate("events", 100)
        with tracer.span("child"):
            pass
    return tracer


class TestStreamRecords:
    def test_meta_record_shape(self):
        rec = meta_record(command="analyze t.txt",
                          provenance={"kind": "file", "path": "t.txt"})
        assert rec["type"] == "meta"
        assert rec["schema"] == OBS_STREAM_SCHEMA_ID
        assert rec["provenance"] == {"kind": "file", "path": "t.txt"}

    def test_streamed_lines_validate_and_carry_depth(self):
        buf = io.StringIO()
        writer = JsonlWriter(buf)
        reg = _sample_registry()
        writer.write(meta_record(command="test"))
        _sample_tracer(on_close=writer.on_close)
        writer.write(metrics_record(reg))
        lines = buf.getvalue().splitlines()
        counts = validate_jsonl_lines(lines)
        assert counts == {"meta": 1, "span": 2, "metrics": 1}
        spans = [json.loads(x) for x in lines if json.loads(x)["type"] == "span"]
        # Post-order: child (depth 1) closes before root (depth 0).
        assert [(s["name"], s["depth"]) for s in spans] == [
            ("child", 1), ("root", 0)]

    def test_span_record_includes_counts(self):
        tracer = _sample_tracer()
        rec = span_record(tracer.roots[0], depth=0)
        assert rec["counts"] == {"events": 100}


class TestSnapshot:
    def test_snapshot_document_validates(self):
        doc = snapshot_document(_sample_registry(), _sample_tracer(),
                                meta={"command": "test"})
        assert doc["schema"] == OBS_SNAPSHOT_SCHEMA_ID
        validate_snapshot(doc)
        assert doc["spans"][0]["children"][0]["name"] == "child"


class TestPrometheus:
    def test_counter_gauge_histogram_exposition(self):
        text = to_prometheus(_sample_registry())
        assert "# TYPE vindicator_analysis_dc_events counter" in text
        assert "vindicator_analysis_dc_events 100" in text
        assert "# TYPE vindicator_graph_nodes gauge" in text
        assert "vindicator_graph_nodes 12" in text
        # Histogram buckets are cumulative with a +Inf overflow.
        assert 'vindicator_vindicate_seconds_bucket{le="0.1"} 0' in text
        assert 'vindicator_vindicate_seconds_bucket{le="1"} 1' in text
        assert 'vindicator_vindicate_seconds_bucket{le="+Inf"} 1' in text
        assert "vindicator_vindicate_seconds_count 1" in text

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestWriteMetrics:
    def test_dispatch_by_extension(self, tmp_path):
        reg, tracer = _sample_registry(), _sample_tracer()

        json_path = tmp_path / "out.json"
        write_metrics(str(json_path), reg, tracer)
        validate_snapshot(json.loads(json_path.read_text()))

        prom_path = tmp_path / "out.prom"
        write_metrics(str(prom_path), reg, tracer)
        assert "# TYPE" in prom_path.read_text()

        jsonl_path = tmp_path / "out.jsonl"
        write_metrics(str(jsonl_path), reg, tracer,
                      meta={"command": "test"})
        counts = validate_jsonl_lines(
            jsonl_path.read_text().splitlines())
        assert counts["span"] == 2


class TestSessionExport:
    def test_jsonl_session_streams(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.session(metrics_path=str(path),
                         meta={"command": "unit"}) as handle:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
            handle.registry.add("a.b", 1)
        counts = validate_jsonl_lines(path.read_text().splitlines())
        assert counts == {"meta": 1, "span": 2, "metrics": 1}
        last = json.loads(path.read_text().splitlines()[-1])
        assert last["metrics"]["counters"] == {"a.b": 1}

    def test_json_session_snapshots(self, tmp_path):
        path = tmp_path / "run.json"
        with obs.session(metrics_path=str(path)):
            with obs.span("outer"):
                pass
        validate_snapshot(json.loads(path.read_text()))

"""End-to-end tests for VINDICATERACE and the Vindicator pipeline."""

import pytest

from repro.analysis.dc import DCDetector
from repro.analysis.races import RaceClass
from repro.vindicate.vindicator import Verdict, Vindicator, vindicate_race
from repro.vindicate.verify import check_witness
from repro.traces.litmus import (
    ALL,
    appendix_c_greedy,
    figure1,
    figure2,
    figure3,
    figure4a,
    figure4b,
    retry_case,
)


class TestVindicateRace:
    def test_true_race_confirmed_with_witness(self):
        trace = figure2()
        det = DCDetector()
        report = det.analyze(trace)
        result = vindicate_race(det.graph, trace, report.races[0])
        assert result.verdict is Verdict.RACE
        assert result.witness is not None
        check_witness(trace, result.witness, result.race.first,
                      result.race.second)

    def test_graph_restored_after_vindication(self):
        trace = figure2()
        det = DCDetector()
        report = det.analyze(trace)
        edges_before = set(det.graph.edges())
        vindicate_race(det.graph, trace, report.races[0])
        assert set(det.graph.edges()) == edges_before

    def test_graph_restored_even_on_refutation(self):
        trace = figure4b()
        det = DCDetector()
        det.transitive_force = False
        report = det.analyze(trace)
        edges_before = set(det.graph.edges())
        result = vindicate_race(det.graph, trace, report.races[-1])
        assert result.verdict is Verdict.NO_RACE
        assert set(det.graph.edges()) == edges_before

    def test_false_race_refuted_with_cycle(self):
        trace = figure4a()
        det = DCDetector()
        det.transitive_force = False
        report = det.analyze(trace)
        race = next(r for r in report.races
                    if (r.first.eid, r.second.eid) == (2, 7))
        result = vindicate_race(det.graph, trace, race)
        assert result.verdict is Verdict.NO_RACE
        assert result.cycle is not None
        assert result.witness is None

    def test_unknown_when_greedy_fails(self):
        trace = appendix_c_greedy()
        det = DCDetector()
        report = det.analyze(trace)
        race = next(r for r in report.races
                    if (r.first.eid, r.second.eid) == (6, 7))
        result = vindicate_race(det.graph, trace, race, policy="earliest")
        assert result.verdict is Verdict.UNKNOWN
        assert result.witness is None

    def test_same_race_vindicates_repeatedly(self):
        trace = figure2()
        det = DCDetector()
        report = det.analyze(trace)
        for _ in range(3):
            result = vindicate_race(det.graph, trace, report.races[0])
            assert result.verdict is Verdict.RACE

    def test_elapsed_time_recorded(self):
        trace = figure1()
        det = DCDetector()
        report = det.analyze(trace)
        result = vindicate_race(det.graph, trace, report.races[0])
        assert result.elapsed_seconds >= 0.0

    def test_retry_statistics(self):
        trace = retry_case()
        det = DCDetector()
        report = det.analyze(trace)
        race = next(r for r in report.races
                    if (r.first.eid, r.second.eid) == (2, 10))
        result = vindicate_race(det.graph, trace, race)
        assert result.verdict is Verdict.RACE
        assert result.attempts == 2


class TestVindicatorPipeline:
    def test_figure1_classification(self):
        report = Vindicator(vindicate_all=True).run(figure1())
        assert report.hb.dynamic_count == 0
        assert report.wcp.dynamic_count == 1
        assert report.dc.dynamic_count == 1
        assert report.dc.races[0].race_class is RaceClass.WCP_ONLY

    def test_figure2_dc_only_classification(self):
        report = Vindicator().run(figure2())
        assert report.dc_only_races
        assert report.dc.races[0].race_class is RaceClass.DC_ONLY

    def test_default_vindicates_only_dc_only_races(self):
        report = Vindicator().run(figure1())
        # Figure 1's race is WCP-only; nothing to vindicate by default.
        assert report.vindications == []

    def test_vindicate_all_covers_every_race(self):
        report = Vindicator(vindicate_all=True).run(figure1())
        assert len(report.vindications) == 1

    def test_confirmed_races_accessor(self):
        report = Vindicator(vindicate_all=True).run(figure2())
        assert len(report.confirmed_races) == 1

    def test_timings_populated(self):
        report = Vindicator(vindicate_all=True).run(figure2())
        assert report.analysis_seconds > 0.0
        assert report.vindication_seconds >= 0.0

    def test_summary_mentions_counts(self):
        report = Vindicator(vindicate_all=True).run(figure2())
        text = report.summary()
        assert "DC-only dynamic races: 1" in text
        assert "predictable race" in text

    def test_race_free_trace(self):
        from repro.core.trace import TraceBuilder
        trace = (TraceBuilder()
                 .acq(1, "m").wr(1, "x").rel(1, "m")
                 .acq(2, "m").rd(2, "x").rel(2, "m")
                 .build())
        report = Vindicator(vindicate_all=True).run(trace)
        assert report.dc.dynamic_count == 0
        assert report.vindications == []

    @pytest.mark.parametrize("name", sorted(ALL))
    def test_litmus_traces_never_crash(self, name):
        report = Vindicator(vindicate_all=True).run(ALL[name]())
        for v in report.vindications:
            assert v.verdict in (Verdict.RACE, Verdict.NO_RACE, Verdict.UNKNOWN)

    def test_subset_property_on_reports(self):
        for name in ALL:
            report = Vindicator(vindicate_all=True).run(ALL[name]())
            assert report.hb.dynamic_count <= report.wcp.dynamic_count
            assert report.wcp.dynamic_count <= report.dc.dynamic_count


class TestHeadlineClaim:
    """The paper's bolded claim: VINDICATERACE confirms that every
    DC-only race (under default transitive forcing) is a true
    predictable race."""

    def test_figure3_dc_only_race_vindicated(self):
        report = Vindicator().run(figure3())
        assert len(report.vindications) == 1
        v = report.vindications[0]
        assert v.race.race_class is RaceClass.DC_ONLY
        assert v.verdict is Verdict.RACE
        assert v.ls_constraints >= 1

    def test_all_litmus_dc_only_races_true(self):
        for name, factory in ALL.items():
            report = Vindicator().run(factory())
            for v in report.vindications:
                assert v.verdict is Verdict.RACE, (name, v)

"""Unit tests for the collecting trace linter (repro.static.lint)."""

import pytest

from repro.core.events import Event, EventKind
from repro.core.trace import TraceBuilder
from repro.static.lint import (
    RULES,
    Diagnostic,
    Severity,
    lint_events,
    max_severity,
)
from repro.traces.litmus import ALL as LITMUS


def events_of(builder: TraceBuilder):
    """The builder's raw events, without Trace construction (which
    refuses unmatched releases even with validate=False)."""
    return builder.events()


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestCleanTraces:
    @pytest.mark.parametrize("name", sorted(LITMUS))
    def test_litmus_traces_lint_clean(self, name):
        diags = lint_events(LITMUS[name]().events)
        if name == "wcp_deadlock":
            # This trace's whole point is that x is accessed under
            # disjoint locksets — SA133 flagging it is a true positive.
            assert codes(diags) == ["SA133"]
            assert diags[0].severity is Severity.WARNING
        else:
            assert diags == []

    def test_fork_join_volatiles_clean(self):
        b = (TraceBuilder()
             .fork(1, 2).vwr(1, "v").vrd(2, "v")
             .acq(2, "m").wr(2, "x").rel(2, "m")
             .join(1, 2))
        assert lint_events(events_of(b)) == []

    def test_empty_trace(self):
        assert lint_events([]) == []


class TestLockRules:
    def test_sa101_release_without_acquire(self):
        diags = lint_events(events_of(TraceBuilder().rel(1, "m")))
        assert codes(diags) == ["SA101"]
        assert diags[0].severity is Severity.ERROR
        assert diags[0].event_index == 0

    def test_sa102_cross_thread_release(self):
        b = TraceBuilder().acq(1, "m").rel(2, "m")
        diags = lint_events(events_of(b))
        assert "SA102" in codes(diags)
        [sa102] = [d for d in diags if d.code == "SA102"]
        assert sa102.event_index == 1
        # Thread 1 also never releases the lock it still holds.
        assert "SA120" in codes(diags)

    def test_sa103_reentrant_acquire(self):
        b = TraceBuilder().acq(1, "m").acq(1, "m").rel(1, "m")
        diags = lint_events(events_of(b))
        assert "SA103" in codes(diags)

    def test_sa104_acquire_of_held_lock(self):
        b = TraceBuilder().acq(1, "m").acq(2, "m").rel(1, "m").rel(2, "m")
        diags = lint_events(events_of(b))
        assert "SA104" in codes(diags)
        # Recovery transfers the lock: thread 1's release then looks
        # cross-thread, which is exactly what happened in the trace.
        assert "SA102" in codes(diags)

    def test_sa105_out_of_nesting_order(self):
        b = (TraceBuilder()
             .acq(1, "m").acq(1, "n").rel(1, "m").rel(1, "n"))
        diags = lint_events(events_of(b))
        assert codes(diags) == ["SA105"]
        assert diags[0].severity is Severity.WARNING

    def test_sa120_lock_held_at_end(self):
        b = TraceBuilder().acq(1, "m").wr(1, "x")
        diags = lint_events(events_of(b))
        assert codes(diags) == ["SA120"]
        assert diags[0].event_index == 0  # points at the open acquire


class TestThreadRules:
    def test_sa110_join_without_fork(self):
        diags = lint_events(events_of(TraceBuilder().join(1, 2)))
        assert codes(diags) == ["SA110"]

    def test_sa111_fork_without_join(self):
        b = TraceBuilder().fork(1, 2).wr(2, "x")
        diags = lint_events(events_of(b))
        assert codes(diags) == ["SA111"]
        assert diags[0].severity is Severity.NOTE

    def test_sa112_double_fork(self):
        b = TraceBuilder().fork(1, 2).fork(1, 2).join(1, 2)
        assert "SA112" in codes(lint_events(events_of(b)))

    def test_sa113_double_join(self):
        b = TraceBuilder().fork(1, 2).wr(2, "x").join(1, 2).join(1, 2)
        assert "SA113" in codes(lint_events(events_of(b)))

    def test_sa114_self_fork(self):
        diags = lint_events(events_of(TraceBuilder().fork(1, 1)))
        assert codes(diags) == ["SA114"]

    def test_sa115_event_before_fork(self):
        b = TraceBuilder().wr(2, "x").fork(1, 2).join(1, 2)
        assert "SA115" in codes(lint_events(events_of(b)))

    def test_sa116_event_after_join(self):
        b = TraceBuilder().fork(1, 2).wr(2, "x").join(1, 2).wr(2, "x")
        diags = lint_events(events_of(b))
        assert "SA116" in codes(diags)

    def test_sa117_begin_not_first(self):
        b = TraceBuilder().wr(1, "x").begin(1)
        assert "SA117" in codes(lint_events(events_of(b)))

    def test_sa118_end_not_last(self):
        b = TraceBuilder().end(1).wr(1, "x")
        assert "SA118" in codes(lint_events(events_of(b)))

    def test_begin_end_well_placed_are_clean(self):
        b = TraceBuilder().begin(1).wr(1, "x").end(1)
        assert lint_events(events_of(b)) == []


class TestUsageRules:
    def test_sa130_volatile_as_lock(self):
        b = TraceBuilder().vwr(1, "v").acq(2, "v").rel(2, "v")
        diags = lint_events(events_of(b))
        assert "SA130" in codes(diags)

    def test_sa131_volatile_as_plain_data(self):
        b = TraceBuilder().vwr(1, "v").rd(2, "v")
        diags = lint_events(events_of(b))
        assert "SA131" in codes(diags)

    def test_sa132_lock_as_plain_variable(self):
        b = TraceBuilder().acq(1, "m").rel(1, "m").wr(2, "m")
        diags = lint_events(events_of(b))
        assert "SA132" in codes(diags)
        assert diags[-1].severity is Severity.NOTE

    def test_sa140_access_without_target(self):
        diags = lint_events([Event(0, 1, EventKind.WRITE, None)])
        assert codes(diags) == ["SA140"]


class TestLinterContract:
    def test_never_raises_on_garbage(self):
        # A trace violating many rules at once: the linter must collect,
        # not throw.
        b = (TraceBuilder()
             .rel(1, "m").acq(1, "m").acq(2, "m")
             .join(3, 9).fork(1, 1).wr(2, "m"))
        diags = lint_events(events_of(b))
        assert len(diags) >= 4

    def test_diagnostics_sorted_by_position(self):
        b = TraceBuilder().rel(1, "m").rel(1, "n").join(1, 9)
        indices = [d.event_index for d in lint_events(events_of(b))]
        assert indices == sorted(indices)

    def test_all_emitted_codes_are_registered(self):
        b = (TraceBuilder()
             .rel(1, "m").acq(1, "n").acq(1, "n")
             .join(3, 9).vwr(2, "n"))
        for diag in lint_events(events_of(b)):
            assert diag.code in RULES
            assert diag.severity is RULES[diag.code][0]

    def test_format_with_line_number(self):
        diag = Diagnostic("SA101", Severity.ERROR, "boom", 4)
        assert diag.format(12).startswith("line 12: SA101 error")
        assert diag.format().startswith("event #4: SA101 error")

    def test_max_severity(self):
        assert max_severity([]) is None
        b = TraceBuilder().acq(1, "m")
        assert max_severity(lint_events(events_of(b))) is Severity.WARNING
        b = TraceBuilder().rel(1, "m")
        assert max_severity(lint_events(events_of(b))) is Severity.ERROR

    def test_severity_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.NOTE
        assert str(Severity.WARNING) == "warning"

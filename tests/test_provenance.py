"""Provenance stamping: every trace records how to regenerate it, and
the stamp survives into reports and the analyze --json document."""

from repro import obs
from repro.obs.schema import validate_analyze_document
from repro.runtime import execute, fast_path_filter
from repro.runtime.workloads import WORKLOADS
from repro.traces.gen import GeneratorConfig, random_trace
from repro.traces.io import dump_trace, load_trace, loads_trace
from repro.traces.litmus import figure2
from repro.vindicate.vindicator import Vindicator


class TestTraceStamps:
    def test_generator_stamps_seed_and_config(self):
        cfg = GeneratorConfig(threads=2, events=10)
        trace = random_trace(42, cfg)
        assert trace.provenance["kind"] == "generator"
        assert trace.provenance["seed"] == 42
        assert trace.provenance["config"]["threads"] == 2
        # The stamp is sufficient to regenerate the identical trace.
        again = random_trace(trace.provenance["seed"],
                             GeneratorConfig(**trace.provenance["config"]))
        assert [(e.tid, e.kind, e.target) for e in again] == \
               [(e.tid, e.kind, e.target) for e in trace]

    def test_scheduler_stamps_program_and_seed(self):
        trace = execute(WORKLOADS["avrora"](scale=0.2), seed=7,
                        policy="round_robin", quantum=4)
        prov = trace.provenance
        assert prov["kind"] == "scheduler"
        assert prov["program"] == "avrora"
        assert prov["seed"] == 7
        assert prov["policy"] == "round_robin"
        assert prov["quantum"] == 4

    def test_file_load_stamps_path(self, tmp_path):
        path = tmp_path / "t.txt"
        dump_trace(figure2(), path)
        trace = load_trace(path)
        assert trace.provenance == {"kind": "file", "path": str(path)}

    def test_string_load_has_no_stamp(self, tmp_path):
        path = tmp_path / "t.txt"
        dump_trace(figure2(), path)
        trace = loads_trace(path.read_text())
        assert trace.provenance == {}

    def test_fast_path_filter_propagates_and_marks(self):
        trace = execute(WORKLOADS["xalan"](scale=0.3), seed=1)
        filtered, _ = fast_path_filter(trace)
        assert filtered.provenance["kind"] == "scheduler"
        assert filtered.provenance["seed"] == 1
        assert filtered.provenance["fast_path_filtered"] is True
        assert "fast_path_filtered" not in trace.provenance


class TestReportStamps:
    def test_report_carries_trace_provenance(self):
        trace = execute(WORKLOADS["avrora"](scale=0.2), seed=5)
        report = Vindicator().run(trace)
        assert report.provenance["kind"] == "scheduler"
        assert report.provenance["seed"] == 5

    def test_obs_snapshot_stamped_when_enabled(self):
        trace = figure2()
        report_off = Vindicator().run(trace)
        assert report_off.obs is None
        try:
            obs.enable()
            report_on = Vindicator().run(trace)
        finally:
            obs.disable()
        assert report_on.obs is not None
        assert report_on.obs["counters"]["analysis.dc.events"] == len(trace)

    def test_to_document_validates_and_carries_provenance(self):
        trace = execute(WORKLOADS["avrora"](scale=0.2), seed=9)
        try:
            obs.enable()
            report = Vindicator(vindicate_all=True).run(trace)
        finally:
            obs.disable()
        doc = report.to_document()
        validate_analyze_document(doc)
        assert doc["schema"] == "vindicator.analyze/1"
        assert doc["trace"]["provenance"]["seed"] == 9
        assert doc["metrics"] is not None
        assert set(doc["analyses"]) == {"hb", "wcp", "dc"}

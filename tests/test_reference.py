"""Tests for the exact (fixpoint) reference engines."""

import numpy as np
import pytest

from repro.core.trace import TraceBuilder
from repro.analysis.reference import ReferenceAnalysis
from repro.traces.litmus import figure1, figure2
from repro.traces.gen import GeneratorConfig, random_trace


class TestHBMatrix:
    def test_po_ordering(self):
        trace = TraceBuilder().wr(1, "x").rd(1, "x").build()
        ref = ReferenceAnalysis(trace)
        assert ref.hb_ordered(0, 1)
        assert not ref.hb_ordered(1, 0)

    def test_sync_order(self):
        trace = (TraceBuilder()
                 .acq(1, "m").rel(1, "m").acq(2, "m").rel(2, "m").build())
        ref = ReferenceAnalysis(trace)
        assert ref.hb_ordered(1, 2)  # release before later acquire
        assert not ref.hb_ordered(0, 1) is False  # PO holds

    def test_transitivity(self):
        trace = (TraceBuilder()
                 .wr(1, "x").acq(1, "m").rel(1, "m")
                 .acq(2, "m").rel(2, "m").rd(2, "x")
                 .build())
        assert ReferenceAnalysis(trace).hb_ordered(0, 5)

    def test_strictness(self):
        trace = TraceBuilder().wr(1, "x").build()
        assert not ReferenceAnalysis(trace).hb_ordered(0, 0)


class TestRelationInclusions:
    """DC ⊆ WCP ∪ PO ⊆ HB as sets of ordered pairs (weaker relations
    order fewer events, hence predict more races)."""

    @pytest.mark.parametrize("seed", range(25))
    def test_inclusion_chain(self, seed):
        cfg = GeneratorConfig(threads=3, events=25, locks=2, variables=2,
                              max_nesting=2)
        trace = random_trace(seed, cfg)
        ref = ReferenceAnalysis(trace)
        n = len(trace)
        po = np.zeros((n, n), dtype=bool)
        for i, ei in enumerate(trace):
            for j in range(i + 1, n):
                if trace[j].tid == ei.tid:
                    po[i, j] = True
        wcp_po = ref.wcp | po
        assert not (ref.dc & ~wcp_po).any(), "DC must be within WCP ∪ PO"
        assert not (wcp_po & ~ref.hb).any(), "WCP ∪ PO must be within HB"

    @pytest.mark.parametrize("seed", range(10))
    def test_race_count_monotonicity(self, seed):
        cfg = GeneratorConfig(threads=3, events=25, locks=2, variables=2)
        trace = random_trace(seed, cfg)
        ref = ReferenceAnalysis(trace)
        hb = {(r.first.eid, r.second.eid) for r in ref.hb_races()}
        wcp = {(r.first.eid, r.second.eid) for r in ref.wcp_races()}
        dc = {(r.first.eid, r.second.eid) for r in ref.dc_races()}
        assert hb <= wcp <= dc


class TestLitmusAgainstReference:
    def test_figure1(self):
        ref = ReferenceAnalysis(figure1())
        assert len(ref.hb_races()) == 0
        assert len(ref.wcp_races()) == 1
        assert len(ref.dc_races()) == 1

    def test_figure2(self):
        ref = ReferenceAnalysis(figure2())
        assert len(ref.hb_races()) == 0
        assert len(ref.wcp_races()) == 0
        races = ref.dc_races()
        assert [(r.first.eid, r.second.eid) for r in races] == [(0, 11)]


class TestStructure:
    def test_open_critical_section_rule_a(self):
        # The second section is still open at trace end; rule (a) applies
        # because the earlier section closed before its acquire.
        trace = (TraceBuilder()
                 .acq(1, "m").wr(1, "x").rel(1, "m")
                 .acq(2, "m").rd(2, "x")
                 .build())
        ref = ReferenceAnalysis(trace)
        assert ref.dc_ordered(2, 4)
        assert ref.dc_ordered(1, 4)

    def test_nested_sections_membership(self):
        trace = (TraceBuilder()
                 .acq(1, "m").acq(1, "n").wr(1, "x").rel(1, "n").rel(1, "m")
                 .acq(2, "n").rd(2, "x").rel(2, "n")
                 .build())
        ref = ReferenceAnalysis(trace)
        # x is protected by n in both threads: rule (a) on n orders.
        assert ref.dc_ordered(3, 6)  # rel(n)T1 before rd(x)T2

    def test_wcp_race_check_uses_po(self):
        trace = TraceBuilder().wr(1, "x").rd(1, "x").build()
        ref = ReferenceAnalysis(trace)
        assert ref.wcp_ordered(0, 1)  # same thread: PO
        assert not bool(ref.wcp[0, 1])  # pure WCP does not include PO

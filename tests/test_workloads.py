"""Tests for the DaCapo-analog workloads (Table 1's shape)."""

import pytest

from repro.analysis.races import RaceClass
from repro.runtime import execute, fast_path_filter
from repro.runtime.workloads import WORKLOADS
from repro.vindicate.vindicator import Verdict, Vindicator

RACE_FREE = {"batik", "lusearch"}


@pytest.fixture(scope="module")
def reports():
    """One analysed execution per workload (module-cached)."""
    out = {}
    for name, factory in WORKLOADS.items():
        trace = execute(factory(scale=0.5), seed=11)
        filtered, _ = fast_path_filter(trace)
        out[name] = (trace, Vindicator().run(filtered))
    return out


class TestStructure:
    def test_all_ten_dacapo_programs_present(self):
        assert sorted(WORKLOADS) == ["avrora", "batik", "h2", "jython",
                                     "luindex", "lusearch", "pmd", "sunflow",
                                     "tomcat", "xalan"]

    def test_traces_are_valid_and_multithreaded(self, reports):
        for name, (trace, _) in reports.items():
            assert len(trace.threads) >= 2, name
            assert len(trace) > 50, name

    def test_scale_controls_size(self):
        small = execute(WORKLOADS["avrora"](scale=0.2), seed=0)
        big = execute(WORKLOADS["avrora"](scale=1.0), seed=0)
        assert len(big) > len(small)

    def test_locations_attached_to_racy_accesses(self, reports):
        for name, (_, report) in reports.items():
            for race in report.dc.races:
                assert race.first.loc is not None, name
                assert race.second.loc is not None, name


class TestRaceShape:
    def test_race_free_workloads(self, reports):
        for name in RACE_FREE:
            _, report = reports[name]
            assert report.dc.dynamic_count == 0, name

    def test_racy_workloads_have_races(self, reports):
        for name, (_, report) in reports.items():
            if name not in RACE_FREE:
                assert report.dc.dynamic_count > 0, name

    def test_subset_property(self, reports):
        for name, (_, report) in reports.items():
            assert report.hb.static_count <= report.wcp.static_count, name
            assert report.wcp.static_count <= report.dc.static_count, name
            assert report.hb.dynamic_count <= report.wcp.dynamic_count, name
            assert report.wcp.dynamic_count <= report.dc.dynamic_count, name

    def test_xalan_wcp_exceeds_hb(self, reports):
        """Table 1's signature result: xalan has far more WCP than HB
        static races (4 vs 63 in the paper)."""
        _, report = reports["xalan"]
        assert report.wcp.static_count >= 2 * report.hb.static_count

    def test_xalan_has_dc_only_races(self, reports):
        _, report = reports["xalan"]
        assert report.dc_only_races

    def test_h2_has_dc_only_string_cache_race(self, reports):
        _, report = reports["h2"]
        locs = {loc for race in report.dc_only_races for loc in race.static_key}
        assert any("StringCache" in loc for loc in locs)

    def test_luindex_has_exactly_one_static_race(self, reports):
        _, report = reports["luindex"]
        assert report.dc.static_count == 1

    def test_tomcat_dominates_static_counts(self, reports):
        tomcat = reports["tomcat"][1].dc.static_count
        for name, (_, report) in reports.items():
            if name not in ("tomcat", "xalan"):
                assert tomcat >= report.dc.static_count, name


class TestHeadline:
    def test_every_dc_only_race_vindicates_true(self, reports):
        """The paper's headline: every dynamic DC-only race is confirmed
        to be a true predictable race."""
        for name, (_, report) in reports.items():
            for v in report.vindications:
                assert v.verdict is Verdict.RACE, (name, str(v))
                assert v.witness is not None

    def test_dc_only_distances_exceed_hb_distances(self, reports):
        """Figure 6's shape: DC-only races sit farther apart (checked on
        the aggregate over all workloads to smooth scheduling noise)."""
        from repro.stats.distances import distances_by_class
        from repro.stats.cdf import median
        all_races = [r for (_, report) in reports.values()
                     for r in report.dc.races]
        by_class = distances_by_class(all_races)
        dc_only = by_class.get(RaceClass.DC_ONLY, [])
        hb = by_class.get(RaceClass.HB, [])
        assert dc_only and hb
        assert median(dc_only) > median(hb)


class TestDeterminism:
    def test_workloads_reproducible(self):
        a = execute(WORKLOADS["pmd"](scale=0.3), seed=3)
        b = execute(WORKLOADS["pmd"](scale=0.3), seed=3)
        assert [str(e) for e in a] == [str(e) for e in b]

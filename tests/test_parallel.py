"""The parallel engine is an optimisation, never a semantic change.

``Vindicator(jobs=N)`` must produce reports **bit-identical** to the
serial path for every N: same races, classifications, verdicts,
witnesses, counters, and the same ``vindicator.analyze/1`` document —
modulo exactly the fields documented in ``docs/PARALLEL.md``:

* ``timing`` and per-vindication ``elapsed_seconds`` (wall clock),
* ``metrics`` (the obs snapshot embeds timing histograms),
* ``parallel.jobs`` (reports the worker count by design),
* ``reach_*`` counters (the reachability cache's hit/miss split depends
  on how races were partitioned across workers; the *verdicts* cannot).
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.parallel import partition
from repro.parallel.engine import CHUNKS_PER_WORKER
from repro.runtime import execute
from repro.runtime.workloads import WORKLOADS
from repro.traces.gen import GeneratorConfig, random_trace
from repro.traces.litmus import ALL as LITMUS
from repro.vindicate.vindicator import Vindicator

JOBS = (2, 4)


def normalize(doc):
    """Strip the documented worker-count-dependent fields from an
    ``analyze/1`` document; everything left must be bit-identical."""
    doc = json.loads(json.dumps(doc))
    doc["timing"] = None
    doc["metrics"] = None
    doc["parallel"] = None
    for vindication in doc.get("vindications", []):
        vindication["elapsed_seconds"] = None
    for analysis in doc.get("analyses", {}).values():
        analysis["counters"] = {
            key: value for key, value in analysis.get("counters", {}).items()
            if not key.startswith("reach_")
        }
    return doc


def run_doc(trace, jobs, **kwargs):
    return Vindicator(vindicate_all=True, jobs=jobs,
                      **kwargs).run(trace).to_document()


def assert_parallel_identical(trace, **kwargs):
    serial = run_doc(trace, 1, **kwargs)
    assert serial["parallel"] == {"jobs": 1}
    reference = normalize(serial)
    for jobs in JOBS:
        parallel = run_doc(trace, jobs, **kwargs)
        assert parallel["parallel"] == {"jobs": jobs}
        assert normalize(parallel) == reference
    return serial


class TestPartition:
    def test_empty(self):
        assert partition(0, 4) == []
        assert partition(-1, 4) == []

    def test_covers_range_exactly(self):
        for count in (1, 2, 7, 16, 100):
            for jobs in (1, 2, 3, 8):
                bounds = partition(count, jobs)
                flat = [i for start, stop in bounds
                        for i in range(start, stop)]
                assert flat == list(range(count))

    def test_chunks_never_empty(self):
        for count in (1, 5, 33):
            for jobs in (1, 2, 7):
                assert all(stop > start
                           for start, stop in partition(count, jobs))

    def test_deterministic_and_scheduling_independent(self):
        assert partition(10, 3) == partition(10, 3)

    def test_chunk_count_bounds(self):
        assert len(partition(100, 2)) == 2 * CHUNKS_PER_WORKER
        assert len(partition(3, 8)) == 3  # never more chunks than items
        assert len(partition(5, 1)) <= CHUNKS_PER_WORKER

    def test_near_uniform_sizes(self):
        sizes = [stop - start for start, stop in partition(13, 1)]
        assert max(sizes) - min(sizes) <= 1


class TestLitmusDifferential:
    @pytest.mark.parametrize("name", sorted(LITMUS))
    def test_bit_identical(self, name):
        assert_parallel_identical(LITMUS[name]())


class TestWorkloadDifferential:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_bit_identical(self, name):
        trace = execute(WORKLOADS[name](scale=0.25), seed=7)
        assert_parallel_identical(trace)

    def test_with_prefilter_and_sanitize(self):
        trace = execute(WORKLOADS["xalan"](scale=0.4), seed=3)
        assert_parallel_identical(trace, prefilter=True, sanitize=True)

    def test_dc_only_vindication_subset(self):
        # Default (not vindicate_all) exercises the DC-only selection in
        # the parallel path too.
        trace = execute(WORKLOADS["avrora"](scale=0.4), seed=0)
        serial = Vindicator(jobs=1).run(trace).to_document()
        parallel = Vindicator(jobs=2).run(trace).to_document()
        assert normalize(parallel) == normalize(serial)

    def test_race_report_objects_match(self):
        trace = execute(WORKLOADS["avrora"](scale=0.4), seed=0)
        serial = Vindicator(vindicate_all=True, jobs=1).run(trace)
        parallel = Vindicator(vindicate_all=True, jobs=2).run(trace)
        for label in ("hb", "wcp", "dc"):
            s, p = getattr(serial, label), getattr(parallel, label)
            assert [(r.first.eid, r.second.eid, r.race_class)
                    for r in s.races] == \
                   [(r.first.eid, r.second.eid, r.race_class)
                    for r in p.races]
        assert [(v.race.first.eid, v.race.second.eid, v.verdict,
                 v.attempts, v.ls_constraints)
                for v in serial.vindications] == \
               [(v.race.first.eid, v.race.second.eid, v.verdict,
                 v.attempts, v.ls_constraints)
                for v in parallel.vindications]
        assert [None if v.witness is None else [e.eid for e in v.witness]
                for v in serial.vindications] == \
               [None if v.witness is None else [e.eid for e in v.witness]
                for v in parallel.vindications]


class TestObsDifferential:
    def test_identical_with_metrics_on(self):
        trace = execute(WORKLOADS["avrora"](scale=0.3), seed=0)
        try:
            obs.enable()
            serial = run_doc(trace, 1)
            parallel = run_doc(trace, 2)
        finally:
            obs.disable()
        assert normalize(parallel) == normalize(serial)

    def test_counters_account_for_worker_work(self):
        trace = execute(WORKLOADS["avrora"](scale=0.3), seed=0)
        try:
            obs.enable()
            report = Vindicator(vindicate_all=True, jobs=2).run(trace)
            counters = obs.metrics().snapshot()["counters"]
        finally:
            obs.disable()
        assert counters["analysis.dc.events"] == len(trace)
        assert counters["vindicate.races_checked"] == \
            len(report.vindications)

    def test_worker_spans_graft_under_pipeline(self):
        trace = execute(WORKLOADS["avrora"](scale=0.3), seed=0)
        try:
            obs.enable()
            with obs.span("pipeline"):
                Vindicator(vindicate_all=True, jobs=2).run(trace)
            roots = obs.tracer().to_dicts()
        finally:
            obs.disable()

        def names(node):
            yield node["name"]
            for child in node.get("children", []):
                yield from names(child)

        all_names = [n for root in roots for n in names(root)]
        assert "analysis.dc" in all_names
        assert "vindicate.race" in all_names


class TestCLI:
    def test_jobs_flag_bit_identical_documents(self, capsys):
        from repro.cli import main
        assert main(["workload", "avrora", "--scale", "0.25",
                     "--json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(["workload", "avrora", "--scale", "0.25",
                     "--jobs", "2", "--json"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert serial["parallel"] == {"jobs": 1}
        assert parallel["parallel"] == {"jobs": 2}
        assert normalize(parallel) == normalize(serial)

    def test_jobs_rejects_zero(self):
        from repro.cli import main
        with pytest.raises(ValueError):
            main(["workload", "avrora", "--scale", "0.2", "--jobs", "0"])


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000),
       config=st.builds(GeneratorConfig,
                        threads=st.integers(2, 4),
                        events=st.integers(8, 30),
                        variables=st.integers(1, 3),
                        locks=st.integers(1, 2),
                        use_fork_join=st.booleans()))
def test_random_traces_bit_identical(seed, config):
    trace = random_trace(seed, config)
    serial = normalize(run_doc(trace, 1))
    assert normalize(run_doc(trace, 2)) == serial

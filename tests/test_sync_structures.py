"""Unit tests for the WCP/DC shared bookkeeping structures."""

from repro.core.vectorclock import VectorClock
from repro.analysis.sync_structures import CSRecord, LockQueues, SourceClocks


class TestSourceClocks:
    def test_join_skips_own_thread(self):
        table = SourceClocks()
        table.record(1, eid=5, local_time=3, clock=VectorClock({1: 3, 2: 7}))
        target = VectorClock()
        assert table.join_into(target, skip_tid=1) == []
        assert target.get(2) == 0

    def test_join_applies_other_threads(self):
        table = SourceClocks()
        table.record(1, eid=5, local_time=3, clock=VectorClock({1: 3, 2: 7}))
        target = VectorClock()
        assert table.join_into(target, skip_tid=2) == [5]
        assert target.get(1) == 3
        assert target.get(2) == 7

    def test_already_ordered_entry_skipped(self):
        table = SourceClocks()
        table.record(1, eid=5, local_time=3, clock=VectorClock({1: 3}))
        target = VectorClock({1: 10})
        assert table.join_into(target, skip_tid=99) == []

    def test_latest_entry_per_thread_wins(self):
        table = SourceClocks()
        table.record(1, eid=5, local_time=3, clock=VectorClock({1: 3}))
        table.record(1, eid=9, local_time=6, clock=VectorClock({1: 6, 3: 2}))
        target = VectorClock()
        assert table.join_into(target, skip_tid=99) == [9]
        assert target.get(1) == 6
        assert target.get(3) == 2

    def test_bool(self):
        table = SourceClocks()
        assert not table
        table.record(1, 0, 1, VectorClock())
        assert table


class TestLockQueues:
    def _queues_with_closed_section(self, tid, acq_time, rel_eid, rel_time,
                                    clock):
        queues = LockQueues()
        queues.on_acquire(tid, acq_time)
        queues.on_release(rel_eid, rel_time, clock)
        return queues

    def test_consumes_ordered_section(self):
        queues = self._queues_with_closed_section(
            1, acq_time=2, rel_eid=7, rel_time=4,
            clock=VectorClock({1: 4, 3: 9}))
        # Observer 2's clock already covers the acquire (time 2).
        clock = VectorClock({1: 2})
        assert queues.apply_rule_b(2, clock) == [7]
        assert clock.get(1) == 4
        assert clock.get(3) == 9

    def test_unordered_acquire_blocks(self):
        queues = self._queues_with_closed_section(
            1, acq_time=5, rel_eid=7, rel_time=6, clock=VectorClock({1: 6}))
        clock = VectorClock({1: 2})  # acquire (time 5) not covered
        assert queues.apply_rule_b(2, clock) == []
        assert clock.get(1) == 2

    def test_open_section_blocks(self):
        queues = LockQueues()
        queues.on_acquire(1, 1)
        clock = VectorClock({1: 5})
        assert queues.apply_rule_b(2, clock) == []

    def test_cursor_prevents_reconsuming(self):
        queues = self._queues_with_closed_section(
            1, acq_time=1, rel_eid=3, rel_time=2, clock=VectorClock({1: 2}))
        clock = VectorClock({1: 1})
        assert queues.apply_rule_b(2, clock) == [3]
        assert queues.apply_rule_b(2, clock) == []

    def test_fixpoint_cascades_across_threads(self):
        # Consuming thread 1's section orders thread 3's acquire, which
        # must then be consumed in the same call.
        queues = LockQueues()
        queues.on_acquire(1, 1)
        queues.on_release(rel_eid=2, rel_local_time=2,
                          snapshot=VectorClock({1: 2, 3: 4}))
        queues.on_acquire(3, 4)
        queues.on_release(rel_eid=9, rel_local_time=5,
                          snapshot=VectorClock({3: 5, 4: 8}))
        clock = VectorClock({1: 1})  # covers only thread 1's acquire
        consumed = queues.apply_rule_b(2, clock)
        assert consumed == [2, 9]
        assert clock.get(4) == 8

    def test_per_observer_cursors_are_independent(self):
        queues = self._queues_with_closed_section(
            1, acq_time=1, rel_eid=3, rel_time=2, clock=VectorClock({1: 2}))
        clock_a = VectorClock({1: 1})
        clock_b = VectorClock({1: 1})
        assert queues.apply_rule_b(2, clock_a) == [3]
        assert queues.apply_rule_b(3, clock_b) == [3]

    def test_already_covered_release_consumed_silently(self):
        queues = self._queues_with_closed_section(
            1, acq_time=1, rel_eid=3, rel_time=2, clock=VectorClock({1: 2}))
        clock = VectorClock({1: 5})  # already past the release
        assert queues.apply_rule_b(2, clock) == []
        # And the cursor advanced: nothing left to consume.
        assert queues.cursors[2][1] == 1

    def test_record_dataclass(self):
        record = CSRecord(tid=1, acq_local_time=4)
        assert not record.closed
        record.rel_clock = VectorClock()
        assert record.closed

"""Differential guarantee: observability never changes what is detected.

Instrumentation is observation only — with metrics on, every analysis
must report the bit-identical race set, classification, and vindication
verdict that it reports with metrics off. Violations would mean an
instrument call leaked into control flow (e.g. an extra RNG draw in the
scheduler, or a counter guard skipping work).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.runtime import execute, fast_path_filter
from repro.runtime.workloads import WORKLOADS
from repro.traces.gen import GeneratorConfig, random_trace
from repro.traces.litmus import ALL as LITMUS
from repro.vindicate.vindicator import Vindicator


def _signature(report):
    """Everything detection-relevant in a report, hashable-stable."""
    return {
        "races": {
            label: [(r.first.eid, r.second.eid, str(r.race_class))
                    for r in analysis.races]
            for label, analysis in (("hb", report.hb), ("wcp", report.wcp),
                                    ("dc", report.dc))
        },
        "counters": {
            label: analysis.counters
            for label, analysis in (("hb", report.hb), ("wcp", report.wcp),
                                    ("dc", report.dc))
        },
        "verdicts": [(v.race.first.eid, v.race.second.eid, v.verdict.value,
                      v.ls_constraints, v.attempts)
                     for v in report.vindications],
        "witnesses": [None if v.witness is None
                      else [e.eid for e in v.witness]
                      for v in report.vindications],
    }


def _run(trace, **kwargs):
    return _signature(Vindicator(vindicate_all=True, **kwargs).run(trace))


def _differ(trace, **kwargs):
    off = _run(trace, **kwargs)
    try:
        obs.enable()
        on = _run(trace, **kwargs)
    finally:
        obs.disable()
    assert on == off
    return off


@pytest.mark.parametrize("name", sorted(LITMUS))
def test_litmus_identical_with_metrics_on(name):
    _differ(LITMUS[name]())


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workloads_identical_with_metrics_on(name):
    # The scheduler draws from a seeded RNG; instrumentation must not
    # perturb the draw sequence, so the *traces* must match first.
    def trace_once():
        trace = execute(WORKLOADS[name](scale=0.3), seed=11)
        filtered, _ = fast_path_filter(trace)
        return filtered

    off_trace = trace_once()
    try:
        obs.enable()
        on_trace = trace_once()
    finally:
        obs.disable()
    assert [(e.tid, e.kind, e.target) for e in on_trace] == \
           [(e.tid, e.kind, e.target) for e in off_trace]
    _differ(off_trace)


def test_prefilter_and_sanitize_identical_with_metrics_on():
    trace = execute(WORKLOADS["xalan"](scale=0.5), seed=3)
    _differ(trace, prefilter=True, sanitize=True)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000),
       config=st.builds(GeneratorConfig,
                        threads=st.integers(2, 4),
                        events=st.integers(8, 30),
                        variables=st.integers(1, 3),
                        locks=st.integers(1, 2),
                        use_fork_join=st.booleans()))
def test_random_traces_identical_with_metrics_on(seed, config):
    assert not obs.enabled()  # hypothesis reuses the process; stay clean
    _differ(random_trace(seed, config))

"""Tests for the execution substrate: program model and scheduler."""

import pytest

from repro.core.events import EventKind
from repro.runtime.program import Program, ops
from repro.runtime.scheduler import (
    SchedulerDeadlockError,
    SchedulerError,
    execute,
)


def two_workers(body_a, body_b):
    def main():
        yield ops.fork("a", body_a)
        yield ops.fork("b", body_b)
        yield ops.join("a")
        yield ops.join("b")
    return Program(name="p", main=main)


class TestDeterminism:
    def _program(self):
        def worker(i):
            def body():
                for k in range(5):
                    yield ops.wr(f"v{i}.{k}")
                    yield ops.rd("shared")
            return body
        return two_workers(worker(0), worker(1))

    def test_same_seed_same_trace(self):
        t1 = execute(self._program(), seed=42)
        t2 = execute(self._program(), seed=42)
        assert [str(e) for e in t1] == [str(e) for e in t2]

    def test_different_seeds_differ(self):
        t1 = execute(self._program(), seed=1)
        t2 = execute(self._program(), seed=2)
        assert [str(e) for e in t1] != [str(e) for e in t2]

    def test_round_robin_policy_is_deterministic_too(self):
        t1 = execute(self._program(), seed=3, policy="round_robin")
        t2 = execute(self._program(), seed=3, policy="round_robin")
        assert [str(e) for e in t1] == [str(e) for e in t2]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            execute(self._program(), policy="fifo")


class TestLockSemantics:
    def test_blocked_acquire_waits(self):
        def holder():
            yield ops.acq("m")
            for _ in range(5):
                yield ops.wr("a")
            yield ops.rel("m")

        def contender():
            yield ops.acq("m")
            yield ops.wr("b")
            yield ops.rel("m")

        trace = execute(two_workers(holder, contender), seed=0)
        # The produced trace must be structurally valid (non-overlapping
        # critical sections), which Trace validation enforces.
        acquires = [e for e in trace if e.kind is EventKind.ACQUIRE]
        assert len(acquires) == 2

    def test_deadlock_detected(self):
        def left():
            yield ops.acq("m")
            yield ops.wr("x")
            yield ops.acq("n")
            yield ops.rel("n")
            yield ops.rel("m")

        def right():
            yield ops.acq("n")
            yield ops.wr("y")
            yield ops.acq("m")
            yield ops.rel("m")
            yield ops.rel("n")

        # Some schedules deadlock (left holds m, right holds n); find one.
        saw_deadlock = False
        for seed in range(30):
            try:
                execute(two_workers(left, right), seed=seed)
            except SchedulerDeadlockError:
                saw_deadlock = True
                break
        assert saw_deadlock

    def test_release_unheld_lock_rejected(self):
        def bad():
            yield ops.rel("m")
        with pytest.raises(SchedulerError, match="does not hold"):
            execute(Program(name="p", main=bad), seed=0)

    def test_finishing_with_held_lock_rejected(self):
        def bad():
            yield ops.acq("m")
        with pytest.raises(SchedulerError, match="holding locks"):
            execute(Program(name="p", main=bad), seed=0)


class TestForkJoin:
    def test_fork_emits_event_and_runs_child(self):
        def child():
            yield ops.wr("x")

        def main():
            yield ops.fork("c", child)
            yield ops.join("c")

        trace = execute(Program(name="p", main=main), seed=0)
        kinds = [e.kind for e in trace]
        assert kinds == [EventKind.FORK, EventKind.WRITE, EventKind.JOIN]

    def test_join_waits_for_child(self):
        def slow_child():
            for _ in range(10):
                yield ops.wr("c")

        def main():
            yield ops.fork("c", slow_child)
            yield ops.join("c")
            yield ops.wr("after")

        trace = execute(Program(name="p", main=main), seed=5)
        join_pos = next(i for i, e in enumerate(trace)
                        if e.kind is EventKind.JOIN)
        child_events = [i for i, e in enumerate(trace)
                        if e.tid == "p.c"]
        assert all(i < join_pos for i in child_events)

    def test_duplicate_thread_name_rejected(self):
        def child():
            yield ops.wr("x")

        def main():
            yield ops.fork("c", child)
            yield ops.join("c")
            yield ops.fork("c", child)
            yield ops.join("c")

        with pytest.raises(SchedulerError, match="reused"):
            execute(Program(name="p", main=main), seed=0)

    def test_nested_forks(self):
        def grandchild():
            yield ops.wr("g")

        def child():
            yield ops.fork("gc", grandchild)
            yield ops.join("gc")

        def main():
            yield ops.fork("c", child)
            yield ops.join("c")

        trace = execute(Program(name="p", main=main), seed=0)
        assert {e.tid for e in trace} == {"p.main", "p.c", "p.gc"}


class TestMarkersAndLimits:
    def test_thread_markers(self):
        def child():
            yield ops.wr("x")

        def main():
            yield ops.fork("c", child)
            yield ops.join("c")

        trace = execute(Program(name="p", main=main), seed=0,
                        thread_markers=True)
        kinds = [e.kind for e in trace]
        assert kinds[0] is EventKind.BEGIN       # main's begin
        assert EventKind.END in kinds            # child's end before join
        assert kinds[-1] is EventKind.END        # main's end

    def test_max_events_guard(self):
        def forever():
            while True:
                yield ops.wr("x")

        with pytest.raises(SchedulerError, match="max_events"):
            execute(Program(name="p", main=forever), seed=0, max_events=100)

    def test_loc_propagates_to_events(self):
        def main():
            yield ops.wr("x", loc="Main.go():7")

        trace = execute(Program(name="p", main=main), seed=0)
        assert trace[0].loc == "Main.go():7"

    def test_volatiles_emitted(self):
        def main():
            yield ops.vwr("v")
            yield ops.vrd("v")

        trace = execute(Program(name="p", main=main), seed=0)
        assert [e.kind for e in trace] == [EventKind.VOLATILE_WRITE,
                                           EventKind.VOLATILE_READ]

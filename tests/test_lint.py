"""In-repo lint gate: ban identity comparisons on value types.

Regression guard for the ``find_cycle_reaching`` colour bug, where
``color.get(root, WHITE) is not WHITE`` compared int values by identity
and only worked because CPython caches small ints. This test enforces
the ruff ``F632``/``E721`` class of rules without external dependencies,
so the guarantee holds even where ruff is not installed (CI additionally
runs ``ruff check``, which enforces the same rules — see pyproject's
``[tool.ruff.lint]`` and ``.github/workflows/ci.yml``).

Flagged patterns, for every file under ``src/`` and ``tests/``:

* ``x is <literal>`` / ``x is not <literal>`` where the literal is an
  int, float, str, bytes, or tuple constant (F632-equivalent);
* ``x is NAME`` / ``x is not NAME`` where NAME resolves, within the same
  module, to a module- or function-level int/float/str constant binding
  (the exact shape of the colour bug: ``WHITE, GRAY, BLACK = 0, 1, 2``);
* ``type(x) == type(y)`` comparisons (E721-equivalent).

``None`` / ``True`` / ``False`` / enum members and sentinel objects are
untouched: identity is the correct comparison for singletons.
"""

import ast
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
LINT_DIRS = ("src", "tests", "benchmarks", "examples")

#: Constant types for which identity comparison is a bug.
_VALUE_TYPES = (int, float, str, bytes, tuple)


def _python_files():
    for dirname in LINT_DIRS:
        root = REPO_ROOT / dirname
        if root.is_dir():
            yield from sorted(root.rglob("*.py"))


def _constant_value_bindings(tree: ast.Module):
    """Names bound (anywhere in the module) to int/float/str constants,
    excluding bool — e.g. ``WHITE, GRAY, BLACK = 0, 1, 2``."""
    bindings = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        targets = []
        values = []
        for target in node.targets:
            if isinstance(target, ast.Name):
                targets, values = [target], [node.value]
            elif isinstance(target, (ast.Tuple, ast.List)) and \
                    isinstance(node.value, (ast.Tuple, ast.List)) and \
                    len(target.elts) == len(node.value.elts):
                targets, values = target.elts, node.value.elts
        for tgt, val in zip(targets, values):
            if (isinstance(tgt, ast.Name) and isinstance(val, ast.Constant)
                    and not isinstance(val.value, bool)
                    and isinstance(val.value, (int, float, str))):
                bindings.add(tgt.id)
    return bindings


def _is_value_literal(node: ast.expr) -> bool:
    return (isinstance(node, ast.Constant)
            and not isinstance(node.value, bool)
            and node.value is not None
            and isinstance(node.value, _VALUE_TYPES))


def _is_type_call(node: ast.expr) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "type"
            and len(node.args) == 1)


def _violations(path: pathlib.Path):
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    const_names = _constant_value_bindings(tree)
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Is, ast.IsNot)):
                for side in (left, right):
                    if _is_value_literal(side):
                        found.append(
                            (node.lineno,
                             "F632-class: `is` comparison with a "
                             f"{type(side.value).__name__} literal"))
                        break
                    if isinstance(side, ast.Name) and side.id in const_names:
                        found.append(
                            (node.lineno,
                             f"F632-class: `is` comparison with {side.id!r}, "
                             "a module constant of value type — use ==/!="))
                        break
            elif isinstance(op, (ast.Eq, ast.NotEq)):
                if _is_type_call(left) and _is_type_call(right):
                    found.append(
                        (node.lineno,
                         "E721-class: compare types with `is` or "
                         "isinstance(), not =="))
    return found


@pytest.mark.parametrize(
    "path", list(_python_files()),
    ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_no_identity_comparison_on_value_types(path):
    violations = _violations(path)
    assert not violations, "\n".join(
        f"{path}:{line}: {msg}" for line, msg in violations)

"""Tests for race records, static de-duplication, and classification."""

import pytest

from repro.core.events import Event, EventKind
from repro.analysis.races import (
    DynamicRace,
    RaceClass,
    RaceReport,
    classify,
    static_races,
)


def make_race(eid1, eid2, loc1=None, loc2=None, relation="DC",
              race_class=None):
    e1 = Event(eid1, 1, EventKind.WRITE, "x", loc=loc1)
    e2 = Event(eid2, 2, EventKind.READ, "x", loc=loc2)
    return DynamicRace(first=e1, second=e2, relation=relation,
                       race_class=race_class)


class TestDynamicRace:
    def test_events_must_be_in_trace_order(self):
        with pytest.raises(ValueError):
            make_race(5, 3)

    def test_event_distance(self):
        assert make_race(3, 10).event_distance == 7

    def test_static_key_uses_locations(self):
        race = make_race(0, 1, loc1="A.f():1", loc2="B.g():2")
        assert race.static_key == frozenset({"A.f():1", "B.g():2"})

    def test_static_key_falls_back_to_kind_and_variable(self):
        race = make_race(0, 1)
        assert race.static_key == frozenset({"wr(x)", "rd(x)"})

    def test_same_location_pair_is_singleton_key(self):
        e1 = Event(0, 1, EventKind.WRITE, "x", loc="A:1")
        e2 = Event(1, 2, EventKind.WRITE, "x", loc="A:1")
        race = DynamicRace(first=e1, second=e2, relation="HB")
        assert race.static_key == frozenset({"A:1"})

    def test_str_mentions_class(self):
        race = make_race(0, 1, race_class=RaceClass.DC_ONLY)
        assert "DC-only" in str(race)


class TestStaticRaces:
    def test_grouping(self):
        races = [make_race(0, 1, "A", "B"), make_race(2, 3, "B", "A"),
                 make_race(4, 5, "C", "D")]
        groups = static_races(races)
        assert len(groups) == 2
        assert len(groups[frozenset({"A", "B"})]) == 2

    def test_order_preserved(self):
        races = [make_race(0, 1, "X", "Y"), make_race(2, 3, "A", "B")]
        keys = list(static_races(races))
        assert keys[0] == frozenset({"X", "Y"})


class TestRaceReport:
    def test_counts(self):
        report = RaceReport(relation="DC", races=[
            make_race(0, 1, "A", "B"), make_race(2, 3, "A", "B")])
        assert report.dynamic_count == 2
        assert report.static_count == 1

    def test_by_class_skips_unclassified(self):
        report = RaceReport(relation="DC", races=[
            make_race(0, 1, race_class=RaceClass.HB),
            make_race(2, 3),
        ])
        by = report.by_class()
        assert len(by[RaceClass.HB]) == 1
        assert RaceClass.DC_ONLY not in by

    def test_str(self):
        report = RaceReport(relation="WCP", races=[make_race(0, 1)])
        assert str(report) == "WCP: 1 static races (1 dynamic)"


class TestClassify:
    def test_hb_unordered_is_hb_race(self):
        assert classify((False, False)) is RaceClass.HB

    def test_hb_ordered_wcp_unordered_is_wcp_only(self):
        assert classify((True, False)) is RaceClass.WCP_ONLY

    def test_both_ordered_is_dc_only(self):
        assert classify((True, True)) is RaceClass.DC_ONLY

    def test_str(self):
        assert str(RaceClass.WCP_ONLY) == "WCP-only"

"""Windowed metadata GC: verdict-neutral and memory-bounding.

Two pinned properties:

* **Differential** — a streaming session with GC on produces a final
  report **bit-identical** to the same session with GC off (and to
  single-shot ``Vindicator.run``): verdicts, racing sets, DC edge
  lists, and counters all survive untouched, on workload traces and on
  hypothesis-generated fork-closed traces, across GC window sizes.
* **Bounded memory** — on a phased synthetic stream (threads are
  forked, do their work, and are joined, phase after phase) at least
  10x the GC window long, the detectors' live metadata stays flat: the
  peak live-entry count and the allocator's peak are a function of the
  *phase width*, not of how long the stream has been running.
"""

import json
import tracemalloc

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.events import Event, EventKind
from repro.core.exceptions import MalformedTraceError
from repro.runtime import execute
from repro.runtime.workloads import WORKLOADS
from repro.serve.session import SessionAnalyzer, SessionConfig
from repro.traces.gen import GeneratorConfig, random_trace
from repro.vindicate.vindicator import Vindicator

#: (workload, seed, retires): ``retires`` asserts the GC actually finds
#: work — true where threads synchronize enough for cover clocks to
#: dominate old entries (avrora/sunflow); pmd's threads barely
#: synchronize, so it pins the other edge: GC runs that retire nothing
#: must still be exact no-ops.
WORKLOAD_CASES = [("avrora", 3, True), ("pmd", 1, False),
                  ("sunflow", 2, True)]


def normalize(doc):
    """Strip wall-clock and environment fields; everything else must be
    bit-identical between GC-on, GC-off, and single-shot analyze."""
    doc = json.loads(json.dumps(doc))
    doc["timing"] = None
    doc["metrics"] = None
    doc["parallel"] = None
    doc["trace"]["provenance"] = None
    for vindication in doc.get("vindications", []):
        vindication["elapsed_seconds"] = None
    for analysis in doc.get("analyses", {}).values():
        analysis["counters"] = {
            key: value for key, value in analysis.get("counters", {}).items()
            if not key.startswith("reach_")
        }
    return doc


def run_session(trace, gc_window):
    config = SessionConfig(
        name="gc-test", gc_window=gc_window,
        require_fork_closed=None if gc_window else False)
    analyzer = SessionAnalyzer(config)
    analyzer.feed_events(trace)
    return analyzer


def session_fingerprint(analyzer):
    """Everything observable about a finished session that GC must not
    change: the document, the racing sets, and the DC edge list."""
    doc = normalize(analyzer.finish())
    racing = {
        rel: {eid: sorted(peers) for eid, peers in det.racing_at.items()}
        for rel, det in (("hb", analyzer.hb), ("wcp", analyzer.wcp),
                         ("dc", analyzer.dc))
    }
    graph = analyzer.dc.graph
    edges = sorted((src, dst) for src in range(graph.num_events)
                   for dst in graph._succ[src])
    return doc, racing, edges


class TestGCDifferential:
    @pytest.mark.parametrize("name,seed,retires", WORKLOAD_CASES)
    @pytest.mark.parametrize("gc_window", [32, 256])
    def test_workload_bit_identical(self, name, seed, retires, gc_window):
        trace = execute(WORKLOADS[name](scale=0.25), seed=seed)
        with_gc = run_session(trace, gc_window)
        without = run_session(trace, 0)
        assert with_gc.gc_runs > 0
        if retires and gc_window == 32:
            assert with_gc.gc_retired > 0  # the GC actually did something
        assert session_fingerprint(with_gc) == session_fingerprint(without)
        # ... and both match the single-shot batch pipeline.
        reference = normalize(Vindicator().run(trace).to_document())
        assert session_fingerprint(with_gc)[0] == reference

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000), threads=st.integers(2, 4),
           events=st.integers(20, 120), gc_window=st.integers(5, 40))
    def test_random_fork_closed_bit_identical(self, seed, threads, events,
                                              gc_window):
        trace = random_trace(seed, GeneratorConfig(
            threads=threads, events=events, use_fork_join=True))
        with_gc = run_session(trace, gc_window)
        without = run_session(trace, 0)
        assert session_fingerprint(with_gc) == session_fingerprint(without)

    def test_gc_session_rejects_unforked_threads(self):
        """GC is sound only on fork-closed streams, so GC-enabled
        sessions must refuse a thread that appears from nowhere."""
        analyzer = SessionAnalyzer(SessionConfig(name="strict", gc_window=8))
        analyzer.feed_events([
            Event(0, 1, EventKind.BEGIN, None),
            Event(1, 1, EventKind.WRITE, "x"),
        ])
        with pytest.raises(MalformedTraceError) as excinfo:
            analyzer.feed_events([Event(2, 2, EventKind.WRITE, "x")])
        assert excinfo.value.event_index == 2
        # The same stream is fine with GC off.
        relaxed = SessionAnalyzer(SessionConfig(
            name="relaxed", gc_window=0, require_fork_closed=False))
        relaxed.feed_events([
            Event(0, 1, EventKind.BEGIN, None),
            Event(1, 1, EventKind.WRITE, "x"),
            Event(2, 2, EventKind.WRITE, "x"),
        ])
        assert len(relaxed.trace) == 3


# ----------------------------------------------------------------------
# Bounded memory
# ----------------------------------------------------------------------
def phased_stream(phases, workers=3, accesses=6):
    """A fork-closed stream whose live set is one phase wide: the root
    forks ``workers`` threads, each hammers phase-private variables,
    and all are joined before the next phase starts. Total metadata is
    O(phases) without GC and O(1) with it."""
    events = []
    eid = 0

    def emit(tid, kind, target=None):
        nonlocal eid
        events.append(Event(eid, tid, kind, target))
        eid += 1

    emit(0, EventKind.BEGIN)
    for phase in range(phases):
        tids = [1 + phase * workers + w for w in range(workers)]
        for tid in tids:
            emit(0, EventKind.FORK, tid)
        for tid in tids:
            emit(tid, EventKind.BEGIN)
            for access in range(accesses):
                var = f"x{phase}_{access}"
                emit(tid, EventKind.ACQUIRE, f"m{phase}")
                emit(tid, EventKind.WRITE, var)
                emit(tid, EventKind.READ, var)
                emit(tid, EventKind.RELEASE, f"m{phase}")
            emit(tid, EventKind.END)
        for tid in tids:
            emit(0, EventKind.JOIN, tid)
    emit(0, EventKind.END)
    return events


def drive(events, gc_window, probe_every=500):
    """Feed the stream through a graph-less session, sampling the live
    metadata entry count; returns (analyzer, peak live entries)."""
    analyzer = SessionAnalyzer(SessionConfig(
        name="mem", gc_window=gc_window, build_graph=False,
        require_fork_closed=bool(gc_window)))
    peak = 0
    for i, event in enumerate(events):
        analyzer._feed_one(event)
        if i % probe_every == 0:
            live = sum(d.gc_live_entries() for d in analyzer._detectors)
            peak = max(peak, live)
    peak = max(peak, sum(d.gc_live_entries() for d in analyzer._detectors))
    return analyzer, peak


class TestBoundedMemory:
    GC_WINDOW = 200

    def test_live_entries_stay_flat(self):
        """Live metadata under GC is phase-local: 4x more phases must
        not grow the peak live-entry count, while the GC-off peak keeps
        growing with stream length."""
        short = phased_stream(phases=8)
        long = phased_stream(phases=32)
        assert len(long) >= 10 * self.GC_WINDOW  # the issue's floor

        _, peak_short = drive(short, self.GC_WINDOW)
        long_gc, peak_long = drive(long, self.GC_WINDOW)
        _, peak_off = drive(long, 0)

        assert long_gc.gc_retired > 0
        assert peak_long <= peak_short * 1.5  # flat, not growing
        assert peak_off >= peak_long * 4      # GC-off really does grow

    def test_allocator_peak_is_bounded(self):
        """The flatness shows up at the allocator too, not just in our
        own entry counts."""
        stream = phased_stream(phases=32)

        def peak_bytes(gc_window):
            tracemalloc.start()
            try:
                analyzer, _ = drive(stream, gc_window)
                _, peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            return analyzer, peak

        gc_on, on_peak = peak_bytes(self.GC_WINDOW)
        _, off_peak = peak_bytes(0)
        assert gc_on.gc_retired > 0
        # Identical stream, identical detectors; the only difference is
        # retired metadata. GC must at least halve the peak.
        assert on_peak * 2 <= off_peak, (on_peak, off_peak)

    def test_status_reports_gc_counters(self):
        events = phased_stream(phases=8)
        analyzer, _ = drive(events, self.GC_WINDOW)
        status = analyzer.status()
        assert status["gc_runs"] == len(events) // self.GC_WINDOW
        assert status["gc_retired"] == analyzer.gc_retired > 0
        assert status["events"] == len(events)

"""Property-based tests (hypothesis) for the paper's core guarantees.

Traces are generated from seeds through the library's own well-formed
generator, so hypothesis shrinks over the seed/config space:

* **DC completeness** (Theorem 1): every predictable race (per the
  exhaustive oracle) is a DC-race, and every trace with a predictable
  race has a DC-race;
* **Vindicator soundness**: a RACE verdict always comes with a witness
  the Definition 2.1 checker accepts, and the oracle confirms the pair;
  a NO_RACE verdict is never issued for an oracle-predictable pair;
* **Witness structure**: witnesses end with the racing pair, adjacent;
* **Monotonicity**: HB-races ⊆ WCP-races ⊆ DC-races at every access.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.dc import DCDetector
from repro.analysis.hb import HBDetector
from repro.analysis.reference import ReferenceAnalysis
from repro.analysis.wcp import WCPDetector
from repro.vindicate.oracle import (
    OracleBudgetExceededError,
    PredictabilityOracle,
)
from repro.vindicate.verify import check_witness
from repro.vindicate.vindicator import Verdict, Vindicator
from repro.traces.gen import GeneratorConfig, random_trace

SETTINGS = settings(max_examples=60, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

small_configs = st.builds(
    GeneratorConfig,
    threads=st.integers(2, 4),
    events=st.integers(6, 14),
    variables=st.integers(1, 3),
    locks=st.integers(1, 3),
    max_nesting=st.integers(1, 2),
    use_fork_join=st.booleans(),
    volatiles=st.integers(0, 1),
)

seeds = st.integers(0, 10_000)


def oracle_for(trace):
    try:
        oracle = PredictabilityOracle(trace, max_states=120_000)
        oracle.predictable_pairs()
        return oracle
    except OracleBudgetExceededError:
        return None


class TestDCCompleteness:
    @SETTINGS
    @given(seed=seeds, config=small_configs)
    def test_predictable_pairs_are_dc_unordered(self, seed, config):
        trace = random_trace(seed, config)
        oracle = oracle_for(trace)
        if oracle is None:
            return
        ref = ReferenceAnalysis(trace)
        for lo, hi in oracle.predictable_pairs():
            assert not ref.dc_ordered(lo, hi), (
                f"predictable pair ({lo},{hi}) is DC-ordered")

    @SETTINGS
    @given(seed=seeds, config=small_configs)
    def test_trace_with_predictable_race_has_dc_race(self, seed, config):
        trace = random_trace(seed, config)
        oracle = oracle_for(trace)
        if oracle is None:
            return
        if oracle.has_predictable_race():
            report = DCDetector(build_graph=False).analyze(trace)
            assert report.dynamic_count > 0


class TestVindicatorSoundness:
    @SETTINGS
    @given(seed=seeds, config=small_configs,
           transitive=st.booleans())
    def test_verdicts_agree_with_oracle(self, seed, config, transitive):
        trace = random_trace(seed, config)
        oracle = oracle_for(trace)
        if oracle is None:
            return
        report = Vindicator(vindicate_all=True,
                            transitive_force=transitive).run(trace)
        for v in report.vindications:
            predictable = oracle.is_predictable(v.race.first, v.race.second)
            if v.verdict is Verdict.RACE:
                assert predictable, f"false positive: {v}"
                assert v.witness is not None
                check_witness(trace, v.witness, v.race.first, v.race.second)
            elif v.verdict is Verdict.NO_RACE:
                assert not predictable, f"refuted a true race: {v}"

    @SETTINGS
    @given(seed=seeds, config=small_configs,
           policy=st.sampled_from(["latest", "earliest", "random"]))
    def test_witnesses_are_correct_under_any_policy(self, seed, config,
                                                    policy):
        trace = random_trace(seed, config)
        report = Vindicator(vindicate_all=True, policy=policy).run(trace)
        for v in report.vindications:
            if v.witness is not None:
                check_witness(trace, v.witness, v.race.first, v.race.second)
                assert v.witness[-2].eid == v.race.first.eid
                assert v.witness[-1].eid == v.race.second.eid


#: Configs that force volatile rd→wr chains between racing accesses —
#: the shape that broke WCP⊆DC nesting before forced edges were joined
#: into H as well as P (the seed-7500 bug): an order forced into P at a
#: race must survive WCP's H-snapshot propagation channels.
volatile_chain_configs = st.builds(
    GeneratorConfig,
    threads=st.integers(3, 5),
    events=st.integers(8, 24),
    variables=st.integers(1, 2),
    locks=st.integers(1, 2),
    max_nesting=st.just(1),
    use_fork_join=st.booleans(),
    volatiles=st.integers(1, 3),
)


def assert_racing_sets_nest(trace):
    hb, wcp, dc = HBDetector(), WCPDetector(), DCDetector(build_graph=False)
    for det in (hb, wcp, dc):
        assert det.force_order  # the invariant under test is the forced one
        det.analyze(trace)
    for eid, priors in hb.racing_at.items():
        assert priors <= wcp.racing_at.get(eid, frozenset())
    for eid, priors in wcp.racing_at.items():
        assert priors <= dc.racing_at.get(eid, frozenset())
    return hb, wcp, dc


class TestMonotonicity:
    @SETTINGS
    @given(seed=seeds, config=small_configs)
    def test_racing_sets_nest(self, seed, config):
        assert_racing_sets_nest(random_trace(seed, config))

    @SETTINGS
    @given(seed=seeds, config=volatile_chain_configs)
    def test_racing_sets_nest_volatile_chains(self, seed, config):
        assert_racing_sets_nest(random_trace(seed, config))

    def test_racing_sets_nest_seed_7500(self):
        # Pinned repro of the WCP forced-edge propagation bug (ROADMAP,
        # PR 5 close-out): T2's write races T4's read (0≺3 forced into
        # T4's P only), T4's volatile read then recorded an H-only
        # snapshot, so the forced component never reached T3's P via
        # the volatile rd→wr chain and WCP reported racing_at(8) =
        # {0,1,6} where DC had {1,6}. With forced edges joined into H
        # as well as P, prior 0 is ordered and the sets nest.
        config = GeneratorConfig(threads=4, events=9, variables=1,
                                 locks=1, max_nesting=1, volatiles=1)
        trace = random_trace(7500, config)
        _, wcp, dc = assert_racing_sets_nest(trace)
        assert wcp.racing_at[8] == frozenset({1, 6})
        assert dict(wcp.racing_at) == dict(dc.racing_at)

    @SETTINGS
    @given(seed=seeds, config=small_configs)
    def test_graph_is_never_left_mutated(self, seed, config):
        trace = random_trace(seed, config)
        det = DCDetector()
        report = det.analyze(trace)
        edges_before = set(det.graph.edges())
        from repro.vindicate.vindicator import vindicate_race
        for race in report.races:
            vindicate_race(det.graph, trace, race)
            assert set(det.graph.edges()) == edges_before


class TestFastPath:
    @SETTINGS
    @given(seed=seeds, config=small_configs)
    def test_fast_path_preserves_race_existence(self, seed, config):
        from repro.runtime.instrument import fast_path_filter
        trace = random_trace(seed, config)
        filtered, stats = fast_path_filter(trace)
        assert stats.filtered_events <= stats.original_events
        before = ReferenceAnalysis(trace)
        after = ReferenceAnalysis(filtered)
        assert bool(before.dc_races()) == bool(after.dc_races())
        assert bool(before.hb_races()) == bool(after.hb_races())

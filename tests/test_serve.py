"""End-to-end tests for the streaming analysis service (repro.serve).

The tentpole guarantee, exercised over the real daemon (sockets, shard
processes, checkpoints on disk): **any chunking, any worker count, any
kill point — the serve pipeline's final report is bit-identical to
single-shot ``vindicator analyze`` of the same events**, with GC
enabled, and every response valid under ``vindicator.serve/1`` (the
client schema-validates each frame before returning it).
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.runtime import execute
from repro.runtime.workloads import WORKLOADS
from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import MAX_FRAME_BYTES, ProtocolError, decode_frame
from repro.serve.server import ServeDaemon
from repro.serve.shard import checkpoint_path, shard_of
from repro.traces.io import dumps_trace, format_event
from repro.traces.packed import trace_hash
from repro.vindicate.vindicator import Vindicator

#: Differential matrix: enough workloads to cover fork/join, lock, and
#: volatile traffic, small enough to stream through a live daemon fast.
MATRIX_WORKLOADS = ["avrora", "sunflow", "pmd"]
SCALE = 0.2


def normalize(doc):
    """Strip wall-clock and environment fields; everything else must be
    bit-identical between serve and single-shot analyze."""
    doc = json.loads(json.dumps(doc))
    doc["timing"] = None
    doc["metrics"] = None
    doc["parallel"] = None
    doc["trace"]["provenance"] = None
    for vindication in doc.get("vindications", []):
        vindication["elapsed_seconds"] = None
    for analysis in doc.get("analyses", {}).values():
        analysis["counters"] = {
            key: value for key, value in analysis.get("counters", {}).items()
            if not key.startswith("reach_")
        }
    return doc


def workload(name, seed=3):
    return execute(WORKLOADS[name](scale=SCALE), seed=seed)


def event_lines(trace):
    return [format_event(e) for e in trace]


def reference_doc(trace):
    return normalize(Vindicator().run(trace).to_document())


def chunks(lines, size):
    return [lines[i:i + size] for i in range(0, len(lines), size)]


@pytest.fixture
def daemon_factory(tmp_path):
    """Start daemons on unix sockets under tmp_path; all are shut down
    at teardown no matter how the test exits."""
    daemons = []

    def start(jobs=1, **kwargs):
        index = len(daemons)
        daemon = ServeDaemon(
            unix_socket=str(tmp_path / f"serve{index}.sock"), jobs=jobs,
            checkpoint_dir=str(tmp_path / f"ckpt{index}"), **kwargs)
        daemon.start()
        daemons.append(daemon)
        return daemon

    yield start
    for daemon in daemons:
        daemon.shutdown()


def connect(daemon):
    return ServeClient(path=daemon.unix_socket)


class TestDaemonEndToEnd:
    @pytest.mark.parametrize("jobs", [1, 2])
    @pytest.mark.parametrize("name", MATRIX_WORKLOADS)
    def test_streamed_finish_matches_single_shot(self, daemon_factory,
                                                 name, jobs):
        """The acceptance matrix: >=3 workloads x 2 worker counts, GC
        on, chunked ingestion == one-shot batch analysis, bit for bit."""
        trace = workload(name)
        daemon = daemon_factory(jobs=jobs)
        with connect(daemon) as client:
            client.hello(name, config={"gc_window": 64})
            for chunk in chunks(event_lines(trace), 97):
                client.events(name, chunk)
            response = client.finish(name)
        assert response["trace_hash"] == trace_hash(trace)
        assert normalize(response["report"]) == reference_doc(trace)

    def test_chunking_is_irrelevant(self, daemon_factory):
        """Three clients, three chunkings of the same events, one
        daemon: identical reports and identical determinism hashes."""
        trace = workload("avrora")
        lines = event_lines(trace)
        daemon = daemon_factory(jobs=2)
        results = {}
        with connect(daemon) as client:
            for label, size in (("one-line", 1), ("mid", 113),
                                ("single-frame", len(lines))):
                client.hello(label, config={"gc_window": 32})
                for chunk in chunks(lines, size):
                    client.events(label, chunk)
                results[label] = client.finish(label)
        hashes = {r["trace_hash"] for r in results.values()}
        assert hashes == {trace_hash(trace)}
        reports = [normalize(r["report"]) for r in results.values()]
        assert reports[0] == reports[1] == reports[2]

    def test_concurrent_sessions_from_concurrent_clients(self,
                                                         daemon_factory):
        """Two threads, two connections, two sessions interleaving their
        frames arbitrarily; both reports match their references."""
        traces = {"left": workload("avrora", seed=3),
                  "right": workload("sunflow", seed=2)}
        daemon = daemon_factory(jobs=2)
        results = {}
        errors = []

        def stream(name):
            try:
                with connect(daemon) as client:
                    client.hello(name, config={"gc_window": 64})
                    for chunk in chunks(event_lines(traces[name]), 53):
                        client.events(name, chunk)
                    results[name] = client.finish(name)
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append((name, exc))

        threads = [threading.Thread(target=stream, args=(name,))
                   for name in traces]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for name, trace in traces.items():
            assert results[name]["trace_hash"] == trace_hash(trace)
            assert normalize(results[name]["report"]) == reference_doc(trace)

    def test_online_status_and_races(self, daemon_factory):
        trace = workload("avrora")
        lines = event_lines(trace)
        daemon = daemon_factory()
        with connect(daemon) as client:
            client.hello("s", config={"gc_window": 32})
            half = len(lines) // 2
            client.events("s", lines[:half])
            status = client.status("s")
            assert status["events"] == half
            assert status["finished"] is False
            assert status["gc_runs"] == half // 32
            mid_races = client.races("s")
            assert mid_races["events"] == half
            client.events("s", lines[half:])
            races = client.races("s")
            assert races["events"] == len(lines)
            # The online DC count equals what finish will report.
            final = client.finish("s")
            assert (races["analyses"]["dc"]["dynamic_races"]
                    == final["report"]["analyses"]["dc"]["dynamic_races"])
            assert client.status("s")["finished"] is True

    def test_sessions_listing_merges_shards(self, daemon_factory):
        daemon = daemon_factory(jobs=2)
        names = [f"sess-{i}" for i in range(5)]
        assert len({shard_of(n, 2) for n in names}) == 2  # really sharded
        with connect(daemon) as client:
            for name in names:
                client.hello(name)
                client.events(name, ["T1 begin", "T1 wr x"])
            listed = client.sessions()
        assert sorted(s["session"] for s in listed) == sorted(names)
        assert all(s["events"] == 2 for s in listed)

    def test_ping_and_shutdown_ops(self, daemon_factory):
        daemon = daemon_factory()
        with connect(daemon) as client:
            assert client.ping()["ok"] is True
            client.shutdown()
        assert daemon._stop.wait(timeout=5)


class TestCheckpointResume:
    @pytest.mark.parametrize("jobs", [1, 2])
    @pytest.mark.parametrize("kill_fraction", [0.1, 0.5, 0.9])
    def test_kill_point_resume_is_bit_identical(self, daemon_factory,
                                                tmp_path, jobs,
                                                kill_fraction):
        """Stream to an explicit checkpoint at an arbitrary point, bring
        the rest of the stream to a *different* daemon via resume: the
        final report and hash match the uninterrupted single shot."""
        trace = workload("avrora")
        lines = event_lines(trace)
        cut = int(len(lines) * kill_fraction)
        path = str(tmp_path / f"kill{jobs}-{cut}.vckp")

        first = daemon_factory(jobs=jobs)
        with connect(first) as client:
            client.hello("avrora", config={"gc_window": 32})
            for chunk in chunks(lines[:cut], 61):
                client.events("avrora", chunk)
            saved = client.checkpoint("avrora", path=path)
        assert saved["events"] == cut
        assert saved["bytes"] == os.path.getsize(path)

        second = daemon_factory(jobs=jobs)
        with connect(second) as client:
            resumed = client.hello("avrora", resume=path)
            assert resumed["resumed"] is True
            assert resumed["events"] == cut
            for chunk in chunks(lines[cut:], 61):
                client.events("avrora", chunk)
            response = client.finish("avrora")
        assert response["trace_hash"] == trace_hash(trace)
        assert normalize(response["report"]) == reference_doc(trace)

    def test_shutdown_drains_open_sessions(self, daemon_factory):
        """Graceful shutdown checkpoints every unfinished session, and
        the drain checkpoint resumes to the same final report."""
        trace = workload("sunflow", seed=2)
        lines = event_lines(trace)
        cut = len(lines) // 3
        daemon = daemon_factory(jobs=2)
        with connect(daemon) as client:
            client.hello("live", config={"gc_window": 32})
            client.events("live", lines[:cut])
            client.hello("done")
            client.events("done", ["T1 begin", "T1 wr x", "T1 end"])
            client.finish("done")  # finished sessions are not drained
        daemon.shutdown()
        assert [d["session"] for d in daemon.final_checkpoints] == ["live"]
        drained = daemon.final_checkpoints[0]
        assert drained["events"] == cut
        assert drained["path"] == checkpoint_path(daemon.checkpoint_dir,
                                                  "live")

        fresh = daemon_factory()
        with connect(fresh) as client:
            client.hello("live", resume=drained["path"])
            for chunk in chunks(lines[cut:], 200):
                client.events("live", chunk)
            response = client.finish("live")
        assert response["trace_hash"] == trace_hash(trace)
        assert normalize(response["report"]) == reference_doc(trace)

    def test_resume_rejects_wrong_session_name(self, daemon_factory,
                                               tmp_path):
        daemon = daemon_factory()
        path = str(tmp_path / "one.vckp")
        with connect(daemon) as client:
            client.hello("one")
            client.events("one", ["T1 begin", "T1 wr x"])
            client.checkpoint("one", path=path)
            with pytest.raises(ServeError) as excinfo:
                client.hello("two", resume=path)
        assert excinfo.value.code == "checkpoint"

    def test_resume_rejects_corrupt_checkpoint(self, daemon_factory,
                                               tmp_path):
        daemon = daemon_factory()
        path = tmp_path / "bad.vckp"
        path.write_bytes(b"VCKP1\n" + b"\xff" * 32)
        with connect(daemon) as client:
            with pytest.raises(ServeError) as excinfo:
                client.hello("bad", resume=str(path))
        assert excinfo.value.code == "checkpoint"


class TestProtocolErrors:
    """Satellite: malformed streams surface structured errors (with the
    failing event index / line number), never poison the daemon."""

    def test_unknown_session(self, daemon_factory):
        daemon = daemon_factory()
        with connect(daemon) as client:
            with pytest.raises(ServeError) as excinfo:
                client.status("ghost")
            assert excinfo.value.code == "unknown-session"
            assert client.ping()["ok"]  # connection still usable

    def test_session_exists(self, daemon_factory):
        daemon = daemon_factory()
        with connect(daemon) as client:
            client.hello("dup")
            with pytest.raises(ServeError) as excinfo:
                client.hello("dup")
            assert excinfo.value.code == "session-exists"

    def test_session_finished(self, daemon_factory):
        daemon = daemon_factory()
        with connect(daemon) as client:
            client.hello("f")
            client.events("f", ["T1 begin", "T1 wr x"])
            client.finish("f")
            with pytest.raises(ServeError) as excinfo:
                client.events("f", ["T1 rd x"])
            assert excinfo.value.code == "session-finished"

    def test_unparsable_line_reports_line_number(self, daemon_factory):
        daemon = daemon_factory()
        with connect(daemon) as client:
            client.hello("t")
            with pytest.raises(ServeError) as excinfo:
                client.events("t", ["T1 begin", "T1 frobnicate x"])
            error = excinfo.value.error
            assert error["code"] == "trace-format"
            assert error["line_number"] == 2
            # The frame was rejected atomically: nothing was accepted.
            assert client.status("t")["events"] == 0

    def test_structurally_invalid_stream_reports_event_index(
            self, daemon_factory):
        daemon = daemon_factory()
        with connect(daemon) as client:
            client.hello("t", config={"require_fork_closed": False})
            client.events("t", ["T1 begin", "T1 acq m"])
            with pytest.raises(ServeError) as excinfo:
                client.events("t", ["T2 begin", "T2 rel m"])
            error = excinfo.value.error
            assert error["code"] == "malformed-trace"
            assert error["event_index"] == 3

    def test_gc_session_rejects_unforked_thread(self, daemon_factory):
        daemon = daemon_factory()
        with connect(daemon) as client:
            client.hello("strict", config={"gc_window": 8})
            with pytest.raises(ServeError) as excinfo:
                client.events("strict", ["T1 begin", "T2 wr x"])
            assert excinfo.value.error["code"] == "malformed-trace"

    def test_bad_request_and_bad_config(self, daemon_factory):
        daemon = daemon_factory()
        with connect(daemon) as client:
            response = client.request({"op": "events", "session": "x"},
                                      check=False)
            assert response["ok"] is False
            assert response["error"]["code"] == "bad-request"
            with pytest.raises(ServeError) as excinfo:
                client.hello("x", config={"gc_window": -3})
            assert excinfo.value.code == "bad-request"

    def test_raw_garbage_frame(self, daemon_factory):
        daemon = daemon_factory()
        client = connect(daemon)
        try:
            client._sock.sendall(b"this is not json\n")
            response = decode_frame(client._reader.readline())
            assert response["ok"] is False
            assert response["error"]["code"] == "bad-frame"
        finally:
            client.close()

    def test_oversized_frame_is_rejected_client_side(self, daemon_factory):
        daemon = daemon_factory()
        with connect(daemon) as client:
            huge = ["T1 wr " + "x" * 1000] * (MAX_FRAME_BYTES // 1000)
            with pytest.raises(ProtocolError) as excinfo:
                client.events("nope", huge)
            assert excinfo.value.code == "too-large"


class TestWatcher:
    def wait_for(self, path, timeout=15.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if os.path.exists(path):
                return
            time.sleep(0.05)
        pytest.fail(f"timed out waiting for {path}")

    def test_dropped_trace_file_produces_result(self, daemon_factory,
                                                tmp_path):
        watch = tmp_path / "inbox"
        watch.mkdir()
        daemon = daemon_factory(watch_dir=str(watch),
                                watch_poll_seconds=0.05)
        trace = workload("sunflow", seed=2)
        # Write elsewhere, then mv in (the documented atomic handoff).
        staging = tmp_path / "job1.trace"
        staging.write_text(dumps_trace(trace), encoding="utf-8")
        os.rename(staging, watch / "job1.trace")

        self.wait_for(watch / "job1.result.json")
        self.wait_for(watch / "job1.trace.done")
        result = json.loads((watch / "job1.result.json").read_text())
        assert result["ok"] is True
        assert result["trace_hash"] == trace_hash(trace)
        assert normalize(result["report"]) == reference_doc(trace)

    def test_bad_trace_file_produces_error(self, daemon_factory, tmp_path):
        watch = tmp_path / "inbox"
        watch.mkdir()
        daemon_factory(watch_dir=str(watch), watch_poll_seconds=0.05)
        staging = tmp_path / "bad.trace"
        staging.write_text("T1 begin\nT1 what x\n", encoding="utf-8")
        os.rename(staging, watch / "bad.trace")

        self.wait_for(watch / "bad.error.json")
        self.wait_for(watch / "bad.trace.failed")
        error = json.loads((watch / "bad.error.json").read_text())
        assert error["ok"] is False
        assert error["error"]["code"] == "trace-format"
        assert error["error"]["line_number"] == 2


class TestMetrics:
    def scrape(self, daemon, path="/metrics"):
        host, port = daemon.metrics_address
        with urllib.request.urlopen(f"http://{host}:{port}{path}",
                                    timeout=10) as response:
            return response.read().decode("utf-8")

    def test_live_prometheus_counters(self, daemon_factory):
        daemon = daemon_factory(metrics_port=0)
        trace = workload("avrora")
        lines = event_lines(trace)
        with connect(daemon) as client:
            client.hello("m", config={"gc_window": 32})
            for chunk in chunks(lines, 100):
                client.events("m", chunk)
            client.finish("m")
        body = self.scrape(daemon)
        metrics = {}
        for line in body.splitlines():
            if line and not line.startswith("#"):
                name, _, value = line.partition(" ")
                metrics[name] = float(value)
        assert metrics["vindicator_serve_events_total"] == len(lines)
        assert metrics["vindicator_serve_sessions_opened"] == 1
        assert metrics["vindicator_serve_sessions_finished"] == 1
        assert metrics["vindicator_serve_sessions_open"] == 0
        assert metrics["vindicator_serve_gc_runs_total"] == len(lines) // 32
        assert metrics["vindicator_serve_requests_total"] >= len(lines) / 100
        assert metrics["vindicator_serve_errors_total"] == 0
        health = json.loads(self.scrape(daemon, "/healthz"))
        assert health == {"status": "ok", "jobs": 1}


@pytest.mark.slow
class TestServeCli:
    def test_sigterm_drains_and_resume_matches(self, tmp_path):
        """The full operator story, through the real CLI: start the
        daemon, stream half a workload, SIGTERM, read the drain
        checkpoint from stderr, resume in-process, and match the
        single-shot report."""
        ckpt = tmp_path / "ckpt"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--jobs", "2", "--checkpoint-dir", str(ckpt)],
            stderr=subprocess.PIPE, text=True,
            env={**os.environ,
                 "PYTHONPATH": os.path.join(os.path.dirname(__file__),
                                            os.pardir, "src")},
            cwd=str(tmp_path))
        try:
            port = None
            assert proc.stderr is not None
            for line in proc.stderr:
                if line.startswith("listening on tcp "):
                    port = int(line.rsplit(":", 1)[1])
                if line.startswith("1 shard(s)") or "shard(s)" in line:
                    break
            assert port is not None

            trace = workload("avrora")
            lines = event_lines(trace)
            cut = len(lines) // 2
            with ServeClient(address=("127.0.0.1", port)) as client:
                client.hello("avrora", config={"gc_window": 32})
                client.events("avrora", lines[:cut])

            proc.send_signal(signal.SIGTERM)
            stderr = proc.stderr.read()
            assert proc.wait(timeout=30) == 0
            assert "checkpointed session 'avrora'" in stderr

            path = checkpoint_path(str(ckpt), "avrora")
            assert os.path.exists(path)
            from repro.serve.checkpoint import resume_session
            analyzer = resume_session(path)
            assert len(analyzer.trace) == cut
            analyzer.feed_events(trace.events[cut:])
            assert normalize(analyzer.finish()) == reference_doc(trace)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

"""Integration tests for the ``--fast-vc`` / ``variant="fast"`` path.

The epoch detectors plug into every consumer of the reference ones —
the Vindicator (serial and parallel), the CLI, and the observability
registry — and each seam must preserve the bit-identical-document
guarantee (modulo the wall-clock fields ``tests/test_parallel.normalize``
strips) while exposing the new epoch/ownership counters.
"""

import re

import pytest

from repro import obs
from repro.analysis.smarttrack import EpochDCDetector, EpochWCPDetector
from repro.cli import main
from repro.runtime import execute
from repro.runtime.workloads import WORKLOADS
from repro.traces.gen import GeneratorConfig, random_trace
from repro.traces.io import dump_trace
from repro.traces.litmus import figure1, figure3
from repro.vindicate.vindicator import Vindicator

from test_parallel import normalize


@pytest.fixture(scope="module")
def workload_trace():
    return execute(WORKLOADS["avrora"](scale=0.5), seed=2)


class TestDetectorSurface:
    def test_relation_and_metric_label(self):
        # Races keep the reference relation strings ("WCP"/"DC" — the
        # report surface is part of the bit-identity contract); only the
        # metric namespace distinguishes the variants.
        assert EpochWCPDetector().relation == "WCP"
        assert EpochDCDetector().relation == "DC"
        assert EpochWCPDetector().metric_label() == "wcp_epoch"
        assert EpochDCDetector().metric_label() == "dc_epoch"

    def test_fast_stats_keys_are_stable(self):
        det = EpochDCDetector()
        det.analyze(figure1())
        assert sorted(det.fast_stats()) == [
            "epoch_exclusive_hits",
            "epoch_promotions",
            "epoch_read_gate_hits",
            "epoch_read_inflations",
            "epoch_write_gate_hits",
            "ownership_lock_transfers",
            "ownership_rule_b_skips",
            "snapshots_copied",
            "snapshots_reused",
        ]

    def test_epoch_counters_published_to_obs(self, workload_trace):
        obs.enable(sample_memory=False)
        try:
            EpochWCPDetector().analyze(workload_trace)
            EpochDCDetector().analyze(workload_trace)
            counters = obs.metrics().counters()
        finally:
            obs.disable()
        assert counters["analysis.wcp_epoch.events"] == len(workload_trace)
        assert counters["analysis.dc_epoch.events"] == len(workload_trace)
        assert "analysis.wcp_epoch.epoch_exclusive_hits" in counters
        assert "analysis.dc_epoch.ownership_rule_b_skips" in counters
        assert "analysis.dc_epoch.snapshots_reused" in counters


class TestVindicatorVariant:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="variant"):
            Vindicator(variant="turbo")

    @pytest.mark.parametrize("trace_factory", [figure1, figure3],
                             ids=["figure1", "figure3"])
    def test_documents_identical_on_litmus(self, trace_factory):
        trace = trace_factory()
        ref = normalize(Vindicator(vindicate_all=True).run(trace)
                        .to_document())
        fast = normalize(Vindicator(vindicate_all=True, variant="fast")
                         .run(trace).to_document())
        assert ref == fast

    def test_documents_identical_on_workload(self, workload_trace):
        ref = normalize(Vindicator(prefilter=True).run(workload_trace)
                        .to_document())
        fast = normalize(Vindicator(prefilter=True, variant="fast")
                         .run(workload_trace).to_document())
        assert ref == fast

    def test_documents_identical_on_random_traces(self):
        config = GeneratorConfig(threads=3, events=25, variables=2,
                                 locks=2, use_fork_join=True)
        for seed in range(5):
            trace = random_trace(seed, config)
            ref = normalize(Vindicator(vindicate_all=True).run(trace)
                            .to_document())
            fast = normalize(Vindicator(vindicate_all=True, variant="fast")
                             .run(trace).to_document())
            assert ref == fast, seed

    def test_parallel_fast_matches_serial_reference(self, workload_trace):
        ref = normalize(Vindicator().run(workload_trace).to_document())
        fast = normalize(Vindicator(variant="fast", jobs=2)
                         .run(workload_trace).to_document())
        assert ref == fast


class TestCLI:
    def test_litmus_fast_vc(self, capsys):
        assert main(["litmus", "figure1", "--fast-vc"]) == 0
        out = capsys.readouterr().out
        assert "DC: 1 static races" in out

    def test_analyze_fast_vc_matches_reference(self, tmp_path, capsys):
        path = tmp_path / "t.txt"
        dump_trace(figure1(), path)
        assert main(["analyze", str(path), "--vindicate-all"]) == 0
        ref_out = capsys.readouterr().out
        assert main(["analyze", str(path), "--vindicate-all",
                     "--fast-vc"]) == 0
        fast_out = capsys.readouterr().out
        no_timing = lambda s: re.sub(r"\d+\.\d+ ms", "_ ms", s)
        assert no_timing(ref_out) == no_timing(fast_out)

    def test_workload_fast_vc(self, capsys):
        assert main(["workload", "avrora", "--scale", "0.3",
                     "--fast-vc"]) == 0
        out = capsys.readouterr().out
        assert "DC" in out

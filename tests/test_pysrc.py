"""Unit tests for the source-level static race analysis
(repro.static.pysrc): frontend lowering, thread-structure model,
lockset inference, tier classification, and finding pairing."""

import pytest

from repro.static.pysrc import (
    PathPattern,
    SiteTier,
    scan_path,
    scan_source,
)


def scan(source):
    return scan_source(source, path="test.py", name="test")


def tiers(report):
    return {c.label: c.tier for c in report.clusters}


def finding_codes(report):
    return sorted(f.code for f in report.findings)


THREADED_COUNTER = """\
import threading

counter = 0

def work():
    global counter
    counter += 1

def main():
    t = threading.Thread(target=work)
    t.start()
    work()
    t.join()

main()
"""


class TestFrontend:
    def test_global_counter_sites(self):
        report = scan(THREADED_COUNTER)
        assert "counter" in tiers(report)
        sites = [s for s in report.module.all_sites()
                 if s.path.label() == "counter"]
        # counter += 1 is one read + one write.
        assert {s.write for s in sites} == {False, True}

    def test_self_attributes_merge_into_class(self):
        report = scan("""\
import threading

class Box:
    def __init__(self):
        self.value = 0

    def bump(self):
        self.value += 1

def main():
    b = Box()
    t = threading.Thread(target=b.bump)
    t.start()
    b.bump()
    t.join()
""")
        assert "Box.value" in tiers(report)
        assert "b.value" not in tiers(report)

    def test_init_writes_are_excluded_from_pairing(self):
        # The __init__ store to self.value happens before the instance
        # escapes; it must not pair with the threaded accesses.
        report = scan("""\
import threading

class Box:
    def __init__(self):
        self.value = 0

    def bump(self):
        self.value += 1

def main():
    b = Box()
    t = threading.Thread(target=b.bump)
    t.start()
    b.bump()
    t.join()
""")
        init_sites = [s for s in report.module.all_sites() if s.init]
        assert init_sites
        for f in report.findings:
            assert not f.a.init and not f.b.init

    def test_fstring_subscript_is_prefix_wildcard(self):
        report = scan("""\
import threading

table = {}

def work(n):
    table[f"key{n}"] = n

def main():
    threads = [threading.Thread(target=work, args=(i,))
               for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
""")
        patterns = [s.path for s in report.module.all_sites()
                    if s.path.prefix.startswith("table[")]
        assert patterns
        assert all(not p.exact for p in patterns)

    def test_lock_statements_do_not_emit_data_sites(self):
        report = scan("""\
import threading
LOCK = threading.Lock()
def f():
    with LOCK:
        pass
""")
        assert "LOCK" not in tiers(report)
        assert "LOCK" in report.module.lock_symbols


class TestLocksets:
    def test_with_lock_guards_sites(self):
        report = scan("""\
import threading
LOCK = threading.Lock()
total = 0

def work():
    global total
    with LOCK:
        total += 1

def main():
    t = threading.Thread(target=work)
    t.start()
    work()
    t.join()

main()
""")
        assert tiers(report)["total"] is SiteTier.GUARDED
        assert report.findings == []

    def test_acquire_release_pairs_guard(self):
        report = scan("""\
import threading
LOCK = threading.Lock()
total = 0

def work():
    global total
    LOCK.acquire()
    total += 1
    LOCK.release()

def main():
    t = threading.Thread(target=work)
    t.start()
    work()
    t.join()

main()
""")
        assert tiers(report)["total"] is SiteTier.GUARDED

    def test_branch_intersection(self):
        # The lock is only held on one branch: sites after the If merge
        # must not inherit it.
        report = scan("""\
import threading
LOCK = threading.Lock()
total = 0

def work(flag):
    global total
    if flag:
        LOCK.acquire()
    else:
        pass
    total += 1

def main():
    t = threading.Thread(target=work, args=(True,))
    t.start()
    work(False)
    t.join()

main()
""")
        assert tiers(report)["total"] is SiteTier.RACE_CANDIDATE

    def test_interprocedural_context(self):
        # The helper is only ever called with LOCK held, so its sites
        # are effectively guarded.
        report = scan("""\
import threading
LOCK = threading.Lock()
total = 0

def bump():
    global total
    total += 1

def work():
    with LOCK:
        bump()

def main():
    t = threading.Thread(target=work)
    t.start()
    work()
    t.join()

main()
""")
        assert tiers(report)["total"] is SiteTier.GUARDED

    def test_mixed_call_context_degrades(self):
        # One caller holds the lock, one does not: the context
        # intersection is empty and the helper's sites are unguarded,
        # so both sides of the pair end up lock-free (SA201).
        report = scan("""\
import threading
LOCK = threading.Lock()
total = 0

def bump():
    global total
    total += 1

def locked():
    with LOCK:
        bump()

def main():
    t = threading.Thread(target=locked)
    t.start()
    bump()
    t.join()

main()
""")
        assert tiers(report)["total"] is SiteTier.RACE_CANDIDATE
        assert "SA201" in finding_codes(report)

    def test_one_sided_locking_is_sa202(self):
        report = scan("""\
import threading
LOCK = threading.Lock()
total = 0

def work():
    global total
    with LOCK:
        total += 1

def main():
    global total
    t = threading.Thread(target=work)
    t.start()
    total += 1
    t.join()

main()
""")
        assert tiers(report)["total"] is SiteTier.RACE_CANDIDATE
        assert "SA202" in finding_codes(report)


class TestThreadModel:
    def test_single_thread_is_thread_local(self):
        report = scan("""\
total = 0

def main():
    global total
    total += 1

main()
""")
        assert tiers(report)["total"] is SiteTier.THREAD_LOCAL
        assert "total" in report.pruned_labels()

    def test_unstarted_thread_entry_is_not_concurrent(self):
        report = scan("""\
import threading
total = 0

def work():
    global total
    total += 1

def main():
    t = threading.Thread(target=work)  # never started
    global total
    total += 1
""")
        assert report.findings == []

    def test_join_orders_later_accesses(self):
        # The main thread reads only after joining the worker:
        # no finding, even though the variable stays instrumented.
        report = scan("""\
import threading
total = 0

def work():
    global total
    total += 1

def main():
    t = threading.Thread(target=work)
    t.start()
    t.join()
    print(total)
""")
        assert report.findings == []

    def test_loop_spawn_is_self_concurrent(self):
        report = scan("""\
import threading
total = 0

def work():
    global total
    total += 1

def main():
    threads = [threading.Thread(target=work) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

main()
""")
        assert "SA201" in finding_codes(report)

    def test_read_only_sharing_is_clean(self):
        # A never-reassigned global binding emits no sites at all;
        # object *state* read from several threads (with only the
        # excluded __init__ write) classifies as read-shared.
        report = scan("""\
import threading

class Cfg:
    def __init__(self):
        self.mode = "x"

CFG = Cfg()

def work():
    print(CFG.mode)

def main():
    t = threading.Thread(target=work)
    t.start()
    print(CFG.mode)
    t.join()

main()
""")
        assert tiers(report)["Cfg.mode"] is SiteTier.READ_SHARED
        assert report.findings == []

    def test_unknown_entry_disables_sharing_pruning(self):
        report = scan("""\
import threading
total = 0

def main(callback):
    global total
    t = threading.Thread(target=callback)
    t.start()
    total += 1
    t.join()
""")
        assert report.module.unknown_entries >= 1
        # The conservative fallback keeps total instrumented.
        assert tiers(report)["total"] is not SiteTier.THREAD_LOCAL


class TestPathPatterns:
    def test_exact_alias(self):
        a = PathPattern("x", exact=True)
        b = PathPattern("x", exact=True)
        assert a.may_alias(b)

    def test_wildcard_aliases_prefix(self):
        w = PathPattern("table[", exact=False)
        e = PathPattern("table[3]", exact=True)
        assert w.may_alias(e)
        assert e.may_alias(w)

    def test_disjoint_paths_do_not_alias(self):
        assert not PathPattern("a", exact=True).may_alias(
            PathPattern("b", exact=True))
        assert not PathPattern("a[", exact=False).may_alias(
            PathPattern("b[", exact=False))


class TestDslLowering:
    def test_ops_program_lowering(self):
        report = scan("""\
from repro.runtime import Program, ops

def model():
    def worker():
        yield ops.wr("shared")

    def main_thread():
        yield ops.fork("w", worker)
        yield ops.wr("shared")
        yield ops.join("w")

    return Program(name="t", main=main_thread)

model()
""")
        assert "SA201" in finding_codes(report)
        assert report.covers("shared")

    def test_dsl_join_suppresses_ordered_pair(self):
        report = scan("""\
from repro.runtime import Program, ops

def model():
    def worker():
        yield ops.wr("shared")

    def main_thread():
        yield ops.fork("w", worker)
        yield ops.join("w")
        yield ops.rd("shared")

    return Program(name="t", main=main_thread)

model()
""")
        assert report.findings == []


class TestExamplesEndToEnd:
    def test_broken_cache_acceptance(self):
        result = scan_path("examples/broken_cache.py")
        [report] = result.reports
        assert result.covers("cache.entry")
        assert "SA201" in finding_codes(report)
        assert "request.scratch" in {
            label.rstrip("[") for label in report.pruned_labels()} or any(
            label.startswith("request.scratch")
            for label in report.pruned_labels())

    def test_racy_counter(self):
        result = scan_path("examples/racy_counter.py")
        [report] = result.reports
        assert report.module.unknown_entries == 0
        assert finding_codes(report) == ["SA201", "SA201"]
        assert all(f.path == "counter" for f in report.findings)
        # hits is lock-guarded on the worker side and read post-join.
        assert not any(f.path == "hits" for f in report.findings)

    def test_locked_registry(self):
        result = scan_path("examples/locked_registry.py")
        [report] = result.reports
        sa203 = [f for f in report.findings if f.code == "SA203"]
        assert [f.path for f in sa203] == ["Registry.stats"]
        assert not any(f.path == "audit_total" for f in report.findings)
        assert tiers(report)["audit_total"] is SiteTier.GUARDED

"""Unit and property tests for vector clocks and epochs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.vectorclock import EPOCH_ZERO, Epoch, VectorClock

clock_dicts = st.dictionaries(st.integers(1, 5), st.integers(1, 100),
                              max_size=5)


class TestVectorClockBasics:
    def test_empty_clock_is_zero_everywhere(self):
        vc = VectorClock()
        assert vc.get(1) == 0
        assert vc.get("anything") == 0
        assert not vc

    def test_set_and_get(self):
        vc = VectorClock()
        vc.set(1, 5)
        assert vc.get(1) == 5
        assert len(vc) == 1

    def test_set_zero_removes_entry(self):
        vc = VectorClock({1: 5})
        vc.set(1, 0)
        assert len(vc) == 0

    def test_increment(self):
        vc = VectorClock()
        assert vc.increment(1) == 1
        assert vc.increment(1) == 2
        assert vc.get(1) == 2

    def test_join_returns_whether_changed(self):
        a = VectorClock({1: 3})
        b = VectorClock({1: 5, 2: 1})
        assert a.join(b) is True
        assert a.get(1) == 5 and a.get(2) == 1
        assert a.join(b) is False  # already dominated

    def test_join_keeps_larger_components(self):
        a = VectorClock({1: 10, 2: 1})
        a.join(VectorClock({1: 3, 2: 7}))
        assert a.get(1) == 10 and a.get(2) == 7

    def test_dominates(self):
        big = VectorClock({1: 5, 2: 3})
        small = VectorClock({1: 5})
        assert big.dominates(small)
        assert not small.dominates(big)
        assert big.dominates(VectorClock())

    def test_copy_is_independent(self):
        a = VectorClock({1: 1})
        b = a.copy()
        b.set(1, 9)
        assert a.get(1) == 1

    def test_equality(self):
        assert VectorClock({1: 2}) == VectorClock({1: 2})
        assert VectorClock({1: 2}) != VectorClock({1: 3})

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(VectorClock())

    def test_iteration_and_as_dict(self):
        vc = VectorClock({1: 2, 3: 4})
        assert dict(vc) == {1: 2, 3: 4}
        assert vc.as_dict() == {1: 2, 3: 4}

    def test_repr_mentions_components(self):
        assert "T1:2" in repr(VectorClock({1: 2}))


class TestVectorClockLattice:
    """Property tests: join is a least upper bound."""

    @given(clock_dicts, clock_dicts)
    def test_join_is_upper_bound(self, da, db):
        a, b = VectorClock(da), VectorClock(db)
        joined = a.copy()
        joined.join(b)
        assert joined.dominates(a)
        assert joined.dominates(b)

    @given(clock_dicts, clock_dicts)
    def test_join_commutes(self, da, db):
        ab = VectorClock(da)
        ab.join(VectorClock(db))
        ba = VectorClock(db)
        ba.join(VectorClock(da))
        assert ab == ba

    @given(clock_dicts)
    def test_join_idempotent(self, d):
        a = VectorClock(d)
        before = a.copy()
        assert a.join(before) is False
        assert a == before

    @given(clock_dicts, clock_dicts, clock_dicts)
    def test_join_associates(self, da, db, dc):
        left = VectorClock(da)
        left.join(VectorClock(db))
        left.join(VectorClock(dc))
        bc = VectorClock(db)
        bc.join(VectorClock(dc))
        right = VectorClock(da)
        right.join(bc)
        assert left == right

    @given(clock_dicts, clock_dicts)
    def test_dominates_is_pointwise(self, da, db):
        a, b = VectorClock(da), VectorClock(db)
        expected = all(a.get(t) >= v for t, v in db.items())
        assert a.dominates(b) == expected


class TestEpoch:
    def test_happens_before_covered(self):
        assert Epoch(3, 1).happens_before(VectorClock({1: 3}))
        assert Epoch(3, 1).happens_before(VectorClock({1: 9}))

    def test_happens_before_not_covered(self):
        assert not Epoch(3, 1).happens_before(VectorClock({1: 2}))
        assert not Epoch(3, 1).happens_before(VectorClock({2: 9}))

    def test_zero_epoch_before_everything(self):
        assert EPOCH_ZERO.happens_before(VectorClock())

    def test_equality_and_repr(self):
        assert Epoch(3, 1) == Epoch(3, 1)
        assert Epoch(3, 1) != Epoch(3, 2)
        assert repr(Epoch(3, 1)) == "3@T1"

"""Setuptools shim for environments without the `wheel` package.

All real metadata lives in pyproject.toml; this file adds the one thing
pyproject cannot express on minimal toolchains: the *optional* compiled
kernel extension (`repro.core._kernels`).  The extension is a pure
speed-up — `repro.core.kernels` falls back to bit-identical pure Python
when it is absent — so any build failure (no compiler, no headers,
cross-compile weirdness) must degrade to a working pure-Python install
instead of aborting.
"""

from __future__ import annotations

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):  # type: ignore[misc]
    """Build C extensions, but never let a failure kill the install."""

    def run(self) -> None:
        try:
            super().run()
        except Exception as exc:  # pragma: no cover - toolchain dependent
            self._warn(exc)

    def build_extension(self, ext: Extension) -> None:
        try:
            super().build_extension(ext)
        except Exception as exc:  # pragma: no cover - toolchain dependent
            self._warn(exc)

    @staticmethod
    def _warn(exc: Exception) -> None:
        import sys

        print(
            "warning: could not build repro.core._kernels "
            f"({exc!r}); falling back to the pure-Python kernels",
            file=sys.stderr,
        )


setup(
    ext_modules=[
        Extension(
            "repro.core._kernels",
            sources=["src/repro/core/_kernels.c"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": OptionalBuildExt},
)

"""Setuptools shim for environments without the `wheel` package.

All real metadata lives in pyproject.toml; this file only enables
`pip install -e .` / `python setup.py develop` on minimal toolchains.
"""

from setuptools import setup

setup()

"""Ablation A2 — the redundant-access instrumentation fast path.

The paper (Section 6.1): the fast path "reduces run-time overhead and
the size of G; reducing G's size ... improves VindicateRace's run time".
This ablation analyses the same executions with and without the filter
and reports trace sizes, graph sizes, analysis time, and race results.

Expected shape: substantial event/edge reductions at identical race
coverage (race existence and static races are preserved).
"""

import time

from repro.analysis.dc import DCDetector
from repro.runtime import execute, fast_path_filter
from repro.runtime.workloads import WORKLOADS
from repro.vindicate.vindicator import Vindicator

from harness import write_result


def measure(trace):
    det = DCDetector(build_graph=True)
    start = time.perf_counter()
    report = det.analyze(trace)
    elapsed = time.perf_counter() - start
    return {
        "events": len(trace),
        "edges": det.graph.edge_count,
        "seconds": elapsed,
        "static": report.static_count,
    }


def test_fast_path_ablation(benchmark):
    rows = []
    for name in ("avrora", "h2", "tomcat", "xalan"):
        trace = execute(WORKLOADS[name](scale=0.8), seed=2)
        filtered, stats = fast_path_filter(trace)
        raw = measure(trace)
        fast = measure(filtered)
        rows.append((name, raw, fast, stats.hit_rate))
        # Race coverage is preserved (statically identical results here).
        assert (raw["static"] > 0) == (fast["static"] > 0)
    lines = ["Ablation: instrumentation fast path (DC analysis + graph)",
             f"{'program':8s} | {'events raw/fast':>17s} | "
             f"{'G edges raw/fast':>18s} | {'hit rate':>8s} | "
             f"{'static races raw/fast':>21s}"]
    for name, raw, fast, rate in rows:
        lines.append(
            f"{name:8s} | {raw['events']:7d}/{fast['events']:7d} | "
            f"{raw['edges']:8d}/{fast['edges']:8d} | {rate:7.0%} | "
            f"{raw['static']:10d}/{fast['static']:10d}")
    write_result("ablation_fastpath.txt", "\n".join(lines))

    # The fast path must shrink both the trace and the graph.
    for name, raw, fast, rate in rows:
        assert fast["events"] < raw["events"], name
        assert fast["edges"] <= raw["edges"], name

    # Benchmark the filter itself on the largest workload trace.
    trace = execute(WORKLOADS["tomcat"](scale=0.8), seed=2)
    benchmark(lambda: fast_path_filter(trace))


def test_pipeline_with_and_without_fast_path(benchmark):
    trace = execute(WORKLOADS["h2"](scale=0.5), seed=4)
    filtered, _ = fast_path_filter(trace)
    with_fp = Vindicator().run(filtered)
    without_fp = Vindicator().run(trace)
    # Race coverage is preserved: the same racy variables are implicated
    # (exact static pairs can shift, since removing a redundant access
    # makes the race manifest at a sibling access of the same variable).
    racy_vars_fp = {r.second.target for r in with_fp.dc.races}
    racy_vars_raw = {r.second.target for r in without_fp.dc.races}
    assert racy_vars_fp == racy_vars_raw
    benchmark(lambda: Vindicator().run(filtered))

"""Experiment E5 — Table 4 (reconstructed): run-time cost of the analyses.

The paper's performance section (truncated in the provided text)
compares the run-time overhead of HB, WCP, and Vindicator (DC analysis
plus constraint-graph construction) in RoadRunner on the JVM. Absolute
JVM overheads are out of scope for a Python reproduction (repro band:
"too slow for performance evaluation"), so this table reports what is
preserved: per-analysis event throughput and the *relative* cost
ordering on identical traces

    replay < HB < FastTrack? < WCP < DC < DC+graph

(with FastTrack near HB — its epoch fast paths cannot pay off fully in
this event model, see repro.analysis.fasttrack), plus VindicateRace
time per race. ``pytest-benchmark`` provides the timing machinery; one
benchmark per configuration runs on the same xalan-analog trace. The
summary table uses :mod:`repro.obs.timing` so every configuration also
reports its wall time and peak-RSS growth side by side.
"""

import pytest

from repro.analysis.dc import DCDetector
from repro.analysis.fasttrack import FastTrackDetector
from repro.analysis.hb import HBDetector
from repro.analysis.wcp import WCPDetector
from repro.obs.timing import best_of, measure
from repro.runtime import execute, fast_path_filter
from repro.runtime.workloads import WORKLOADS
from repro.static.lockset import analyze_locksets

from harness import write_result


@pytest.fixture(scope="module")
def perf_trace():
    trace = execute(WORKLOADS["xalan"](scale=2.0), seed=1)
    filtered, _ = fast_path_filter(trace)
    return filtered


def replay(trace):
    """Baseline: iterate the trace doing no analysis work."""
    count = 0
    for _ in trace:
        count += 1
    return count


CONFIGS = [
    ("replay (no analysis)", None),
    ("HB", lambda: HBDetector()),
    ("FastTrack", lambda: FastTrackDetector()),
    ("WCP", lambda: WCPDetector()),
    ("DC (no graph)", lambda: DCDetector(build_graph=False)),
    ("DC + graph G", lambda: DCDetector(build_graph=True)),
]


def _run(trace, factory):
    if factory is None:
        return replay(trace)
    detector = factory()
    detector.analyze(trace)
    return detector


#: Ablation: the same detectors with the lockset pre-filter on/off.
#: Factories take ``prefilter=`` so each can run both ways.
ABLATION_CONFIGS = [
    ("HB", lambda **kw: HBDetector(**kw)),
    ("FastTrack", lambda **kw: FastTrackDetector(**kw)),
    ("WCP", lambda **kw: WCPDetector(**kw)),
    ("DC (no graph)", lambda **kw: DCDetector(build_graph=False, **kw)),
]


@pytest.mark.parametrize("label,factory", CONFIGS,
                         ids=[label for label, _ in CONFIGS])
def test_analysis_throughput(perf_trace, benchmark, label, factory):
    benchmark(lambda: _run(perf_trace, factory))


@pytest.mark.parametrize("label,factory", ABLATION_CONFIGS,
                         ids=[f"{label}+prefilter"
                              for label, _ in ABLATION_CONFIGS])
def test_prefilter_throughput(perf_trace, benchmark, label, factory):
    candidates = analyze_locksets(perf_trace.events).race_candidates
    benchmark(lambda: factory(prefilter=candidates).analyze(perf_trace))


def test_table4_summary(perf_trace, benchmark):
    """Build the Table 4 analog: events/sec, wall time, peak memory,
    and slowdown vs replay (timing via :mod:`repro.obs.timing`)."""
    rows = []
    base_time = None
    for label, factory in CONFIGS:
        # One measured run captures peak-RSS growth (a high-water mark:
        # later, heavier configs attribute correctly because cost rises
        # monotonically down the table); best-of-3 gives the wall time.
        first = measure(lambda: _run(perf_trace, factory))
        elapsed = min(first.elapsed_seconds,
                      best_of(lambda: _run(perf_trace, factory), repeats=2))
        if base_time is None:
            base_time = elapsed
        rows.append((label, elapsed, len(perf_trace) / elapsed,
                     elapsed / base_time, first.peak_rss_delta_kb))
    lines = [f"Table 4 (analog): analysis cost on a {len(perf_trace)}-event "
             f"xalan trace",
             f"{'configuration':22s} | {'events/sec':>12s} | "
             f"{'time (ms)':>10s} | {'peak-RSS +kB':>12s} | "
             f"{'vs replay':>9s}",
             "-" * 78]
    for label, elapsed, throughput, slowdown, rss_kb in rows:
        lines.append(f"{label:22s} | {throughput:12,.0f} | "
                     f"{elapsed * 1e3:10.1f} | {rss_kb:12d} | "
                     f"{slowdown:8.1f}x")
    # VindicateRace time per race, on the same trace (best of 3 runs —
    # per-race wall times are witness-check dominated and noisy).
    from repro.vindicate.vindicator import Vindicator
    report = min((Vindicator().run(perf_trace) for _ in range(3)),
                 key=lambda r: r.vindication_seconds)
    if report.vindications:
        per_race = [v.elapsed_seconds * 1e3 for v in report.vindications]
        lines.append("")
        lines.append(f"VindicateRace: {len(per_race)} DC-only races, "
                     f"{min(per_race):.1f}-{max(per_race):.1f} ms per race")
        counters = report.dc.counters
        lines.append("reachability cache: "
                     f"{counters.get('reach_hits', 0):,} hits, "
                     f"{counters.get('reach_misses', 0):,} misses, "
                     f"{counters.get('reach_invalidations', 0):,} "
                     "invalidations")
    # Lockset pre-filter ablation: each detector with the filter off vs
    # on, same trace.  "on" timings include the lockset pass itself (it
    # is amortised across the three detectors in a real Vindicator run,
    # but charging it fully keeps the speedups honest).
    lockset = analyze_locksets(perf_trace.events)
    candidates = lockset.race_candidates
    lines.append("")
    lines.append(f"Lockset pre-filter ablation ({lockset.summary()}):")
    lines.append(f"{'configuration':22s} | {'off ev/s':>12s} | "
                 f"{'on ev/s':>12s} | {'speedup':>8s}")
    lines.append("-" * 64)
    speedups = {}
    for label, factory in ABLATION_CONFIGS:
        off_report = factory().analyze(perf_trace)
        off = best_of(lambda: factory().analyze(perf_trace))
        on_report = factory(prefilter=candidates).analyze(perf_trace)
        on = best_of(lambda: (analyze_locksets(perf_trace.events),
                              factory(prefilter=candidates)
                              .analyze(perf_trace)))
        # The filter must not change what the detector finds.
        assert ([(r.first.eid, r.second.eid) for r in off_report.races]
                == [(r.first.eid, r.second.eid) for r in on_report.races]), \
            f"{label}: pre-filter changed the race set"
        speedups[label] = off / on
        lines.append(f"{label:22s} | {len(perf_trace) / off:12,.0f} | "
                     f"{len(perf_trace) / on:12,.0f} | "
                     f"{off / on:7.2f}x")
    skipped = on_report.counters["lockset_skipped"]
    checked = on_report.counters["lockset_checked"]
    lines.append(f"filter hit rate: {skipped:,} of {skipped + checked:,} "
                 f"access checks skipped "
                 f"({skipped / (skipped + checked):.0%})")
    write_result("table4.txt", "\n".join(lines))

    # Acceptance: the pre-filter buys a measurable speedup on at least
    # one configuration without changing any verdict (asserted above).
    assert max(speedups.values()) >= 1.3, speedups

    throughputs = {label: tp for label, _, tp, _, _ in rows}
    # The relative ordering the paper's Table 4 shape implies.
    assert throughputs["replay (no analysis)"] > throughputs["HB"]
    assert throughputs["HB"] > throughputs["WCP"]
    assert throughputs["WCP"] > throughputs["DC + graph G"] * 0.5
    benchmark(lambda: replay(perf_trace))

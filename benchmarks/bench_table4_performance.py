"""Experiment E5 — Table 4 (reconstructed): run-time cost of the analyses.

The paper's performance section (truncated in the provided text)
compares the run-time overhead of HB, WCP, and Vindicator (DC analysis
plus constraint-graph construction) in RoadRunner on the JVM. Absolute
JVM overheads are out of scope for a Python reproduction (repro band:
"too slow for performance evaluation"), so this table reports what is
preserved: per-analysis event throughput and the *relative* cost
ordering on identical traces

    replay < HB < FastTrack? < WCP < DC < DC+graph

(with FastTrack near HB — its epoch fast paths cannot pay off fully in
this event model, see repro.analysis.fasttrack), plus VindicateRace
time per race. ``pytest-benchmark`` provides the timing machinery; one
benchmark per configuration runs on the same xalan-analog trace. The
summary table uses :mod:`repro.obs.timing` for wall time and
:func:`repro.obs.memory.traced_heap_peak_kb` for a per-configuration
heap peak (a peak-RSS *delta* reads 0 for every configuration after the
first benchmark has raised the process high-water mark; the traced heap
peak attributes correctly regardless of run order — timing is taken
from separate untraced runs since tracemalloc slows allocation).

The SmartTrack-style epoch/ownership variants
(:mod:`repro.analysis.smarttrack`) appear both as extra rows in the
Table 4 analog and in a dedicated reference-vs-epoch comparison
(``test_smarttrack_speedup``) that asserts the PR's speedup floors and
writes machine-readable ``BENCH_smarttrack.json``.

The batched interpreter (:mod:`repro.analysis.batch`) likewise gets
Table 4 rows plus its own floored comparison (``test_batch_speedup``,
``BENCH_batch.json``); both are skipped cleanly when numpy is absent —
it is the only optional dependency in the tree.
"""

import pytest

from repro.analysis.dc import DCDetector
from repro.analysis.fasttrack import FastTrackDetector
from repro.analysis.hb import HBDetector
from repro.analysis.smarttrack import EpochDCDetector, EpochWCPDetector
from repro.analysis.wcp import WCPDetector
from repro.obs.memory import traced_heap_peak_kb
from repro.obs.timing import best_of
from repro.runtime import execute, fast_path_filter
from repro.runtime.workloads import WORKLOADS
from repro.static.lockset import analyze_locksets

from harness import write_json, write_result

try:
    from repro.analysis.batch import BatchDCDetector, BatchWCPDetector
    HAVE_BATCH = True
except ImportError:  # numpy not installed
    HAVE_BATCH = False


@pytest.fixture(scope="module")
def perf_trace():
    trace = execute(WORKLOADS["xalan"](scale=2.0), seed=1)
    filtered, _ = fast_path_filter(trace)
    return filtered


@pytest.fixture(scope="module")
def raw_trace():
    """The same xalan trace *before* fast-path filtering — the full
    event stream an online detector ingests.  The epoch fast paths
    accelerate exactly the thread-local accesses the filter strips, so
    the SmartTrack speedup floors are defined on this stream."""
    return execute(WORKLOADS["xalan"](scale=2.0), seed=1)


def replay(trace):
    """Baseline: iterate the trace doing no analysis work."""
    count = 0
    for _ in trace:
        count += 1
    return count


CONFIGS = [
    ("replay (no analysis)", None),
    ("HB", lambda: HBDetector()),
    ("FastTrack", lambda: FastTrackDetector()),
    ("WCP", lambda: WCPDetector()),
    ("WCP epoch", lambda: EpochWCPDetector()),
    ("DC (no graph)", lambda: DCDetector(build_graph=False)),
    ("DC epoch (no graph)", lambda: EpochDCDetector(build_graph=False)),
    ("DC + graph G", lambda: DCDetector(build_graph=True)),
    ("DC epoch + graph G", lambda: EpochDCDetector(build_graph=True)),
]
if HAVE_BATCH:
    CONFIGS += [
        ("WCP batch", lambda: BatchWCPDetector()),
        ("DC batch (no graph)", lambda: BatchDCDetector(build_graph=False)),
        ("DC batch + graph G", lambda: BatchDCDetector(build_graph=True)),
    ]


def _run(trace, factory):
    if factory is None:
        return replay(trace)
    detector = factory()
    detector.analyze(trace)
    return detector


#: Ablation: the same detectors with the lockset pre-filter on/off.
#: Factories take ``prefilter=`` so each can run both ways.
ABLATION_CONFIGS = [
    ("HB", lambda **kw: HBDetector(**kw)),
    ("FastTrack", lambda **kw: FastTrackDetector(**kw)),
    ("WCP", lambda **kw: WCPDetector(**kw)),
    ("DC (no graph)", lambda **kw: DCDetector(build_graph=False, **kw)),
]


@pytest.mark.parametrize("label,factory", CONFIGS,
                         ids=[label for label, _ in CONFIGS])
def test_analysis_throughput(perf_trace, benchmark, label, factory):
    benchmark(lambda: _run(perf_trace, factory))


@pytest.mark.parametrize("label,factory", ABLATION_CONFIGS,
                         ids=[f"{label}+prefilter"
                              for label, _ in ABLATION_CONFIGS])
def test_prefilter_throughput(perf_trace, benchmark, label, factory):
    candidates = analyze_locksets(perf_trace.events).race_candidates
    benchmark(lambda: factory(prefilter=candidates).analyze(perf_trace))


def test_table4_summary(perf_trace, benchmark):
    """Build the Table 4 analog: events/sec, wall time, per-config
    heap peak, and slowdown vs replay — written both as ``table4.txt``
    and machine-readable ``BENCH_table4.json``."""
    rows = []
    base_time = None
    for label, factory in CONFIGS:
        # Heap peak from one traced run (attributable per configuration
        # regardless of run order — see module docstring); wall time
        # from separate untraced runs, best-of-3.
        _, heap_kb = traced_heap_peak_kb(lambda: _run(perf_trace, factory))
        elapsed = best_of(lambda: _run(perf_trace, factory), repeats=3)
        if base_time is None:
            base_time = elapsed
        rows.append((label, elapsed, len(perf_trace) / elapsed,
                     elapsed / base_time, heap_kb))
    lines = [f"Table 4 (analog): analysis cost on a {len(perf_trace)}-event "
             f"xalan trace",
             f"{'configuration':22s} | {'events/sec':>12s} | "
             f"{'time (ms)':>10s} | {'heap peak kB':>12s} | "
             f"{'vs replay':>9s}",
             "-" * 78]
    for label, elapsed, throughput, slowdown, heap_kb in rows:
        lines.append(f"{label:22s} | {throughput:12,.0f} | "
                     f"{elapsed * 1e3:10.1f} | {heap_kb:12d} | "
                     f"{slowdown:8.1f}x")
    # VindicateRace time per race, on the same trace (best of 3 runs —
    # per-race wall times are witness-check dominated and noisy).
    from repro.vindicate.vindicator import Vindicator
    report = min((Vindicator().run(perf_trace) for _ in range(3)),
                 key=lambda r: r.vindication_seconds)
    if report.vindications:
        per_race = [v.elapsed_seconds * 1e3 for v in report.vindications]
        lines.append("")
        lines.append(f"VindicateRace: {len(per_race)} DC-only races, "
                     f"{min(per_race):.1f}-{max(per_race):.1f} ms per race")
        counters = report.dc.counters
        lines.append("reachability cache: "
                     f"{counters.get('reach_hits', 0):,} hits, "
                     f"{counters.get('reach_misses', 0):,} misses, "
                     f"{counters.get('reach_invalidations', 0):,} "
                     "invalidations")
    # Lockset pre-filter ablation: each detector with the filter off vs
    # on, same trace.  "on" timings include the lockset pass itself (it
    # is amortised across the three detectors in a real Vindicator run,
    # but charging it fully keeps the speedups honest).
    lockset = analyze_locksets(perf_trace.events)
    candidates = lockset.race_candidates
    lines.append("")
    lines.append(f"Lockset pre-filter ablation ({lockset.summary()}):")
    lines.append(f"{'configuration':22s} | {'off ev/s':>12s} | "
                 f"{'on ev/s':>12s} | {'speedup':>8s}")
    lines.append("-" * 64)
    speedups = {}
    for label, factory in ABLATION_CONFIGS:
        off_report = factory().analyze(perf_trace)
        off = best_of(lambda: factory().analyze(perf_trace))
        on_report = factory(prefilter=candidates).analyze(perf_trace)
        on = best_of(lambda: (analyze_locksets(perf_trace.events),
                              factory(prefilter=candidates)
                              .analyze(perf_trace)))
        # The filter must not change what the detector finds.
        assert ([(r.first.eid, r.second.eid) for r in off_report.races]
                == [(r.first.eid, r.second.eid) for r in on_report.races]), \
            f"{label}: pre-filter changed the race set"
        speedups[label] = off / on
        lines.append(f"{label:22s} | {len(perf_trace) / off:12,.0f} | "
                     f"{len(perf_trace) / on:12,.0f} | "
                     f"{off / on:7.2f}x")
    skipped = on_report.counters["lockset_skipped"]
    checked = on_report.counters["lockset_checked"]
    lines.append(f"filter hit rate: {skipped:,} of {skipped + checked:,} "
                 f"access checks skipped "
                 f"({skipped / (skipped + checked):.0%})")
    write_result("table4.txt", "\n".join(lines))
    write_json("BENCH_table4.json", {
        "trace": {"workload": "xalan", "scale": 2.0, "seed": 1,
                  "events": len(perf_trace)},
        "rows": [
            {"configuration": label,
             "events_per_sec": round(throughput, 1),
             "time_ms": round(elapsed * 1e3, 3),
             "heap_peak_kb": heap_kb,
             "slowdown_vs_replay": round(slowdown, 2)}
            for label, elapsed, throughput, slowdown, heap_kb in rows],
        "prefilter_ablation": {
            "summary": lockset.summary(),
            "speedups": {label: round(ratio, 3)
                         for label, ratio in speedups.items()},
            "hit_rate": round(skipped / (skipped + checked), 4),
        },
    })

    # Acceptance: the pre-filter buys a measurable speedup on at least
    # one configuration without changing any verdict (asserted above).
    assert max(speedups.values()) >= 1.3, speedups

    throughputs = {label: tp for label, _, tp, _, _ in rows}
    # The relative ordering the paper's Table 4 shape implies.
    assert throughputs["replay (no analysis)"] > throughputs["HB"]
    assert throughputs["HB"] > throughputs["WCP"]
    assert throughputs["WCP"] > throughputs["DC + graph G"] * 0.5
    benchmark(lambda: replay(perf_trace))


#: Reference-vs-epoch pairs and the speedup floor each must clear
#: (the PR's acceptance criteria; the epoch variants are
#: verdict-identical, so this is pure throughput).
SMARTTRACK_PAIRS = [
    ("WCP", 1.8,
     lambda: WCPDetector(), lambda: EpochWCPDetector()),
    ("DC (no graph)", 2.0,
     lambda: DCDetector(build_graph=False),
     lambda: EpochDCDetector(build_graph=False)),
    ("DC + graph G", 1.5,
     lambda: DCDetector(build_graph=True),
     lambda: EpochDCDetector(build_graph=True)),
]


def test_smarttrack_speedup(perf_trace, raw_trace, benchmark):
    """Reference vs epoch/ownership detectors on the same trace:
    assert the PR's speedup floors (WCP >= 1.8x, DC no-graph >= 2.0x)
    and write ``smarttrack.txt`` / ``BENCH_smarttrack.json``.

    The floors are asserted on the *raw* event stream (see
    ``raw_trace``); the fast-path-filtered trace is reported alongside
    without floors — it is sync-op-heavy by construction, so the epoch
    access paths have less to accelerate there.  Both sides of each
    pair are measured back-to-back in this same process (best of 5), so
    the ratio is robust to absolute machine speed.
    """
    n = len(raw_trace)
    rows = []
    filtered_rows = []
    stats = {}
    for label, floor, ref_factory, fast_factory in SMARTTRACK_PAIRS:
        # Warm-up runs also double-check verdict identity end to end.
        ref_report = ref_factory().analyze(raw_trace)
        fast_det = fast_factory()
        fast_report = fast_det.analyze(raw_trace)
        assert ([(r.first.eid, r.second.eid) for r in ref_report.races]
                == [(r.first.eid, r.second.eid) for r in fast_report.races]), \
            f"{label}: epoch variant changed the race set"
        stats[label] = fast_det.fast_stats()
        ref = best_of(lambda: ref_factory().analyze(raw_trace), repeats=5)
        fast = best_of(lambda: fast_factory().analyze(raw_trace), repeats=5)
        rows.append((label, floor, n / ref, n / fast, ref / fast))
        fref = best_of(lambda: ref_factory().analyze(perf_trace), repeats=5)
        ffast = best_of(lambda: fast_factory().analyze(perf_trace),
                        repeats=5)
        filtered_rows.append((label, len(perf_trace) / fref,
                              len(perf_trace) / ffast, fref / ffast))
    lines = [f"SmartTrack-style epoch/ownership fast paths on the {n}-event "
             f"raw xalan trace (best of 5)",
             f"{'configuration':22s} | {'ref ev/s':>12s} | "
             f"{'epoch ev/s':>12s} | {'speedup':>8s} | {'floor':>6s}",
             "-" * 74]
    for label, floor, ref_eps, fast_eps, ratio in rows:
        lines.append(f"{label:22s} | {ref_eps:12,.0f} | {fast_eps:12,.0f} | "
                     f"{ratio:7.2f}x | {floor:5.1f}x")
    lines.append("")
    lines.append(f"after fast-path filtering ({len(perf_trace)} events, "
                 "sync-op-heavy; no floors):")
    for label, ref_eps, fast_eps, ratio in filtered_rows:
        lines.append(f"{label:22s} | {ref_eps:12,.0f} | {fast_eps:12,.0f} | "
                     f"{ratio:7.2f}x |      -")
    dc_stats = stats["DC + graph G"]
    lines.append("")
    lines.append("DC epoch-state counters on this trace: "
                 f"{dc_stats['epoch_exclusive_hits']:,} exclusive-stage hits, "
                 f"{dc_stats['epoch_promotions']:,} promotions, "
                 f"{dc_stats['epoch_write_gate_hits']:,} write-gate + "
                 f"{dc_stats['epoch_read_gate_hits']:,} read-gate skips, "
                 f"{dc_stats['ownership_rule_b_skips']:,} rule-(b) skips")
    lines.append("snapshot reuse (satellite micro-fix): "
                 f"{dc_stats['snapshots_copied']:,} copied vs "
                 f"{dc_stats['snapshots_reused']:,} reused "
                 "(version-gated, no redundant clock.copy() churn)")
    write_result("smarttrack.txt", "\n".join(lines))
    write_json("BENCH_smarttrack.json", {
        "trace": {"workload": "xalan", "scale": 2.0, "seed": 1, "events": n,
                  "filtered_events": len(perf_trace)},
        "best_of": 5,
        "rows": [
            {"configuration": label,
             "floor": floor,
             "reference_events_per_sec": round(ref_eps, 1),
             "epoch_events_per_sec": round(fast_eps, 1),
             "speedup": round(ratio, 3)}
            for label, floor, ref_eps, fast_eps, ratio in rows],
        "filtered_rows": [
            {"configuration": label,
             "reference_events_per_sec": round(ref_eps, 1),
             "epoch_events_per_sec": round(fast_eps, 1),
             "speedup": round(ratio, 3)}
            for label, ref_eps, fast_eps, ratio in filtered_rows],
        "fast_stats": stats,
    })
    for label, floor, _, _, ratio in rows:
        assert ratio >= floor, \
            f"{label}: {ratio:.2f}x below the {floor:.1f}x floor"
    benchmark(lambda: EpochDCDetector(build_graph=True).analyze(raw_trace))


#: Reference-vs-batched pairs and the speedup floors each must clear:
#: the first floor on the raw xalan stream (the ISSUE's acceptance bar
#: is WCP >= 5x; the DC floors are set from measured headroom — graph
#: construction is per-event work batching cannot remove), the second
#: on the fast-path-filtered stream with the lockset prefilter
#: installed (the production pipeline's configuration; the filtered
#: stream is sync-heavy, so these floors are lower — the per-filter
#: segmentation cache and the vectorized candidate counters are what
#: keep them clear).  Factories accept ``prefilter=`` for the second
#: leg.
BATCH_PAIRS = [
    ("WCP", 5.0, 1.7,
     lambda **kw: WCPDetector(**kw),
     lambda **kw: BatchWCPDetector(**kw)),
    ("DC (no graph)", 2.5, 2.0,
     lambda **kw: DCDetector(build_graph=False, **kw),
     lambda **kw: BatchDCDetector(build_graph=False, **kw)),
    ("DC + graph G", 1.8, 1.25,
     lambda **kw: DCDetector(build_graph=True, **kw),
     lambda **kw: BatchDCDetector(build_graph=True, **kw)),
] if HAVE_BATCH else []


@pytest.mark.skipif(not HAVE_BATCH, reason="numpy not installed")
def test_batch_speedup(perf_trace, raw_trace, benchmark):
    """Reference vs batched detectors on the same traces: assert the
    ISSUE's floors (WCP >= 5x on the raw xalan stream) and write
    ``batch.txt`` / ``BENCH_batch.json``.

    Methodology matches ``test_smarttrack_speedup``: floors on the raw
    event stream (the batched fraction is exactly the thread-local
    access bulk the fast-path filter would strip), plus floored rows on
    the fast-path-filtered trace with the lockset prefilter installed
    (the combination the production pipeline runs), both sides
    best-of-5 back-to-back in one process so the ratio is
    machine-independent.
    """
    n = len(raw_trace)
    candidates = analyze_locksets(perf_trace.events).race_candidates
    rows = []
    filtered_rows = []
    stats = {}
    for label, floor, f_floor, ref_factory, batch_factory in BATCH_PAIRS:
        # Warm-up runs double as an end-to-end verdict-identity check
        # (the full bit-identity contract lives in
        # tests/test_batch_differential.py).
        ref_report = ref_factory().analyze(raw_trace)
        batch_det = batch_factory()
        batch_report = batch_det.analyze(raw_trace)
        assert ([(r.first.eid, r.second.eid) for r in ref_report.races]
                == [(r.first.eid, r.second.eid)
                    for r in batch_report.races]), \
            f"{label}: batched variant changed the race set"
        fs = batch_det.fast_stats()
        assert fs["batch_events"] + fs["batch_fallback_events"] == n
        stats[label] = {key: fs[key] for key in
                        ("batch_runs", "batch_events",
                         "batch_fallback_events")}
        ref = best_of(lambda: ref_factory().analyze(raw_trace), repeats=5)
        fast = best_of(lambda: batch_factory().analyze(raw_trace), repeats=5)
        rows.append((label, floor, n / ref, n / fast, ref / fast))
        # Filtered leg: prefilter parity re-checked end to end (the
        # counters include the lockset skip/check tallies, so this
        # also pins the vectorized counter summation).
        fr = ref_factory(prefilter=candidates).analyze(perf_trace)
        fb = batch_factory(prefilter=candidates).analyze(perf_trace)
        assert ([(r.first.eid, r.second.eid) for r in fr.races]
                == [(r.first.eid, r.second.eid) for r in fb.races]), \
            f"{label}: batched prefilter variant changed the race set"
        assert dict(fr.counters) == dict(fb.counters), \
            f"{label}: batched prefilter variant changed the counters"
        fref = best_of(lambda: ref_factory(
            prefilter=candidates).analyze(perf_trace), repeats=5)
        ffast = best_of(lambda: batch_factory(
            prefilter=candidates).analyze(perf_trace), repeats=5)
        filtered_rows.append((label, f_floor, len(perf_trace) / fref,
                              len(perf_trace) / ffast, fref / ffast))
    dc_stats = stats["DC + graph G"]
    coverage = dc_stats["batch_events"] / n
    lines = [f"Batched interpretation on the {n}-event raw xalan trace "
             f"(best of 5)",
             f"{'configuration':22s} | {'ref ev/s':>12s} | "
             f"{'batch ev/s':>12s} | {'speedup':>8s} | {'floor':>6s}",
             "-" * 74]
    for label, floor, ref_eps, fast_eps, ratio in rows:
        lines.append(f"{label:22s} | {ref_eps:12,.0f} | {fast_eps:12,.0f} | "
                     f"{ratio:7.2f}x | {floor:5.1f}x")
    lines.append("")
    lines.append(f"after fast-path filtering + lockset prefilter "
                 f"({len(perf_trace)} events, sync-op-heavy, "
                 f"{len(candidates)} candidate vars):")
    for label, f_floor, ref_eps, fast_eps, ratio in filtered_rows:
        lines.append(f"{label:22s} | {ref_eps:12,.0f} | {fast_eps:12,.0f} | "
                     f"{ratio:7.2f}x | {f_floor:5.2f}x")
    lines.append("")
    lines.append(f"segmentation: {dc_stats['batch_events']:,} of {n:,} "
                 f"events batched ({coverage:.0%}) in "
                 f"{dc_stats['batch_runs']:,} runs; "
                 f"{dc_stats['batch_fallback_events']:,} fallback events "
                 "still per-event dispatched")
    write_result("batch.txt", "\n".join(lines))
    write_json("BENCH_batch.json", {
        "trace": {"workload": "xalan", "scale": 2.0, "seed": 1, "events": n,
                  "filtered_events": len(perf_trace)},
        "best_of": 5,
        "rows": [
            {"configuration": label,
             "floor": floor,
             "reference_events_per_sec": round(ref_eps, 1),
             "batch_events_per_sec": round(fast_eps, 1),
             "speedup": round(ratio, 3)}
            for label, floor, ref_eps, fast_eps, ratio in rows],
        "filtered_rows": [
            {"configuration": label,
             "floor": f_floor,
             "reference_events_per_sec": round(ref_eps, 1),
             "batch_events_per_sec": round(fast_eps, 1),
             "speedup": round(ratio, 3)}
            for label, f_floor, ref_eps, fast_eps, ratio in filtered_rows],
        "batch_stats": stats,
    })
    for label, floor, _, _, ratio in rows:
        assert ratio >= floor, \
            f"{label}: {ratio:.2f}x below the {floor:.1f}x floor"
    for label, f_floor, _, _, ratio in filtered_rows:
        assert ratio >= f_floor, (
            f"{label} (filtered+prefilter): {ratio:.2f}x below the "
            f"{f_floor:.2f}x floor")
    benchmark(lambda: BatchDCDetector(build_graph=True).analyze(raw_trace))

"""Composite floors: batch interpreter × compiled kernels, end to end.

The ≥10× story is a composition: the batch interpreter removes Python
dispatch from the vectorizable bulk of the trace, and the compiled
kernels remove it from the per-event replay segments the planner cannot
vectorize (sync ops, contended accesses).  Each win was floored in
isolation (``bench_table4_performance.test_batch_speedup``,
``bench_kernels``); this bench pins the *product* — the batched
detectors running under the compiled backend against the pure-Python
reference detectors (``WCPDetector`` / ``DCDetector`` under the
``python`` backend), i.e. the full distance between
``vindicator analyze`` with no flags and with ``--batch --kernels
compiled``.

Both sides run the Table 4 raw xalan stream back-to-back in one
process and the floors are asserted on the ratio, so they are
machine-speed independent.  Warm-up runs double as an end-to-end
verdict-identity check (the bit-identity contract lives in
tests/test_kernels_differential.py::TestCompositeBatchAcrossBackends).

Results go to ``composite.txt`` / ``BENCH_composite.json``; the
``kernels-perf`` CI job runs this bench and folds the JSON into the
``perf_trend.py`` trajectory table.  Skips cleanly when numpy or the
C extension is missing.
"""

import pytest

from repro.analysis.dc import DCDetector
from repro.analysis.wcp import WCPDetector
from repro.core import kernels
from repro.obs.timing import best_of
from repro.runtime import execute
from repro.runtime.workloads import WORKLOADS

from harness import write_json, write_result

try:
    from repro.analysis.batch import BatchDCDetector, BatchWCPDetector
    HAVE_BATCH = True
except ImportError:  # numpy not installed
    HAVE_BATCH = False

pytestmark = [
    pytest.mark.skipif(not HAVE_BATCH, reason="numpy not installed"),
    pytest.mark.skipif(
        not kernels.compiled_available(),
        reason="repro.core._kernels extension not built"),
]


@pytest.fixture(scope="module")
def raw_trace():
    """The Table 4 xalan stream, unfiltered — the trace every speedup
    floor in this tree is defined on."""
    return execute(WORKLOADS["xalan"](scale=2.0), seed=1)


#: (label, floor, reference factory, composite factory).  Floors are
#: the ISSUE's acceptance bar for the composed path; the graph
#: configuration's is lower because edge insertion into the Python
#: ConstraintGraph is per-edge work neither batching nor the edge
#: buffer can vectorize away.
COMPOSITE_PAIRS = [
    ("WCP", 8.0,
     lambda: WCPDetector(),
     lambda: BatchWCPDetector()),
    ("DC (no graph)", 5.0,
     lambda: DCDetector(build_graph=False),
     lambda: BatchDCDetector(build_graph=False)),
    ("DC + graph G", 2.5,
     lambda: DCDetector(build_graph=True),
     lambda: BatchDCDetector(build_graph=True)),
] if HAVE_BATCH else []

REPEATS = 7


def test_composite_speedup(raw_trace):
    """Pure-Python reference vs batch+compiled composite: assert the
    ISSUE's ≥ 8×/5×/2.5× floors and write ``BENCH_composite.json``."""
    n = len(raw_trace)
    previous = kernels.active_backend()
    rows = []
    try:
        for label, floor, ref_factory, comp_factory in COMPOSITE_PAIRS:
            # One detector per side, reused across repeats:
            # begin_trace resets all state, so timing covers analyze()
            # alone — no construction, I/O, or packing in the loop.
            kernels.set_backend("python")
            ref_det = ref_factory()
            ref_report = ref_det.analyze(raw_trace)
            ref_time = best_of(lambda: ref_det.analyze(raw_trace),
                               repeats=REPEATS)
            kernels.set_backend("compiled")
            comp_det = comp_factory()
            comp_report = comp_det.analyze(raw_trace)
            assert ([(r.first.eid, r.second.eid)
                     for r in ref_report.races]
                    == [(r.first.eid, r.second.eid)
                        for r in comp_report.races]
                    ), f"{label}: composite path changed the race set"
            comp_time = best_of(lambda: comp_det.analyze(raw_trace),
                                repeats=REPEATS)
            rows.append((label, floor, n / ref_time, n / comp_time,
                         ref_time / comp_time))
    finally:
        kernels.set_backend(previous)

    lines = [f"Composite batch × compiled kernels on the {n}-event raw "
             f"xalan trace (best of {REPEATS})",
             "reference = pure-Python WCPDetector/DCDetector, python "
             "backend; composite = Batch* detectors, compiled backend",
             f"{'configuration':22s} | {'reference ev/s':>14s} | "
             f"{'composite ev/s':>14s} | {'speedup':>8s} | {'floor':>6s}",
             "-" * 78]
    for label, floor, ref_eps, comp_eps, ratio in rows:
        lines.append(f"{label:22s} | {ref_eps:14,.0f} | "
                     f"{comp_eps:14,.0f} | {ratio:7.2f}x | {floor:5.1f}x")
    write_result("composite.txt", "\n".join(lines))
    write_json("BENCH_composite.json", {
        "trace": {"workload": "xalan", "scale": 2.0, "seed": 1,
                  "events": n},
        "best_of": REPEATS,
        "reference": "pure-Python WCPDetector/DCDetector (python backend)",
        "composite": "Batch* detectors (compiled backend)",
        "rows": [
            {"configuration": label,
             "floor": floor,
             "reference_events_per_sec": round(ref_eps, 1),
             "composite_events_per_sec": round(comp_eps, 1),
             "speedup": round(ratio, 3)}
            for label, floor, ref_eps, comp_eps, ratio in rows],
    })
    for label, floor, _, _, ratio in rows:
        assert ratio >= floor, \
            f"{label}: {ratio:.2f}x below the {floor:.1f}x floor"

"""Scaling benchmark — ``Vindicator(jobs=N)`` vs. the serial path.

The paper runs its three detectors simultaneously (Section 6.1) and
vindicates each DC-race independently offline (Section 6.2);
:mod:`repro.parallel` reproduces that with a process pool. This
benchmark runs the avrora analog — the workload with the largest
DC-race population — through the full pipeline at ``jobs`` = 1, 2, 4,
checks the reports stay bit-identical (the engine's core contract), and
records wall-clock speedups in ``benchmarks/results/parallel_scaling.txt``.

Speedup assertions are gated on ``os.cpu_count()``: process-level
parallelism cannot beat the serial path without spare cores, and the
results file records the core count so numbers are never read out of
context. The ``jobs=1`` path must stay within 5% of a direct serial
``Vindicator`` run — it *is* the same code path; the guard catches any
accidental parallel-engine overhead leaking into the default.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.timing import best_of
from repro.runtime import execute
from repro.runtime.workloads import WORKLOADS
from repro.vindicate.vindicator import Vindicator

from harness import write_result

#: avrora at this scale yields ~145 DC races (seed 0) — comfortably past
#: the >=8 the fan-out needs, and a vindication phase (~1.4s serial)
#: large enough to dwarf pool start-up.
SCALE = 1.0
SEED = 0
MIN_DC_RACES = 8

JOB_COUNTS = (1, 2, 4)
#: Required speedup at each worker count, enforced only when the host
#: has at least that many cores.
SPEEDUP_FLOOR = {2: 1.3, 4: 2.0}
#: jobs=1 dispatches straight to the serial code; allow 5% noise.
SERIAL_OVERHEAD_CEILING = 1.05


def _normalize(doc):
    doc = json.loads(json.dumps(doc))
    doc["timing"] = None
    doc["metrics"] = None
    doc["parallel"] = None
    for vindication in doc.get("vindications", []):
        vindication["elapsed_seconds"] = None
    for analysis in doc.get("analyses", {}).values():
        analysis["counters"] = {
            key: value for key, value in analysis.get("counters", {}).items()
            if not key.startswith("reach_")
        }
    return doc


@pytest.fixture(scope="module")
def avrora_trace():
    return execute(WORKLOADS["avrora"](scale=SCALE), seed=SEED)


def test_parallel_scaling(avrora_trace):
    cores = os.cpu_count() or 1

    reports = {}
    times = {}
    for jobs in JOB_COUNTS:
        vindicator = Vindicator(vindicate_all=True, jobs=jobs)
        reports[jobs] = vindicator.run(avrora_trace)
        times[jobs] = best_of(lambda: Vindicator(
            vindicate_all=True, jobs=jobs).run(avrora_trace))

    dc_races = len(reports[1].dc.races)
    assert dc_races >= MIN_DC_RACES, (
        f"workload too small to exercise the fan-out: {dc_races} DC races")

    # The contract before the speedup: every worker count produces the
    # bit-identical document modulo the documented fields.
    reference = _normalize(reports[1].to_document())
    for jobs in JOB_COUNTS[1:]:
        assert _normalize(reports[jobs].to_document()) == reference

    serial_time = best_of(
        lambda: Vindicator(vindicate_all=True).run(avrora_trace))
    overhead = times[1] / serial_time

    lines = [
        "Parallel scaling: avrora analog "
        f"(scale={SCALE}, seed={SEED}, {len(avrora_trace)} events, "
        f"{dc_races} DC races, vindicate_all)",
        f"host: {cores} cpu core(s) — speedup floors "
        f"{SPEEDUP_FLOOR} enforced only with that many cores",
        "",
        f"{'configuration':24s} | {'time (s)':>9s} | {'speedup':>8s}",
        "-" * 49,
        f"{'serial (no engine)':24s} | {serial_time:9.3f} | {'1.00x':>8s}",
    ]
    for jobs in JOB_COUNTS:
        speedup = serial_time / times[jobs]
        lines.append(f"{f'jobs={jobs}':24s} | {times[jobs]:9.3f} | "
                     f"{speedup:7.2f}x")
    lines += [
        "",
        f"jobs=1 overhead vs serial: {overhead:.3f}x "
        f"(ceiling {SERIAL_OVERHEAD_CEILING}x)",
        "reports bit-identical across all job counts "
        "(modulo timing/metrics/parallel.jobs/reach_* counters)",
    ]
    write_result("parallel_scaling.txt", "\n".join(lines))

    assert overhead <= SERIAL_OVERHEAD_CEILING, (
        f"jobs=1 is {overhead:.2f}x the plain serial path")
    for jobs, floor in SPEEDUP_FLOOR.items():
        if cores >= jobs:
            speedup = serial_time / times[jobs]
            assert speedup >= floor, (
                f"jobs={jobs} only {speedup:.2f}x on a {cores}-core host")


def test_pool_startup_cost_is_bounded(avrora_trace):
    """The packed trace + CSR graph keep worker priming cheap: the whole
    jobs=2 pipeline must cost less than 3x the serial pipeline even on a
    single-core host (where the parallel path cannot win, only lose)."""
    serial = best_of(
        lambda: Vindicator(vindicate_all=True).run(avrora_trace))
    parallel = best_of(
        lambda: Vindicator(vindicate_all=True, jobs=2).run(avrora_trace))
    assert parallel < serial * 3.0, (
        f"jobs=2 costs {parallel / serial:.2f}x serial — "
        "worker priming is too expensive")

"""Experiment E2 — Table 2: the static DC-only races and their event
distances.

Regenerates the paper's Table 2: each statically distinct DC-only race
(an unordered pair of source locations), the workloads it occurs in, and
the range of event distances across its dynamic instances and trials.

Expected shape: xalan's FastStringBuffer-style races dominate with the
largest distances; h2's StringCache races appear; distances span orders
of magnitude (the paper's range from ~2k to ~72M, scaled to our trace
sizes).
"""

from typing import Dict, List

from repro.analysis.races import DynamicRace, RaceClass
from repro.stats.distances import static_distance_ranges

from harness import TRIALS, write_result


def collect_dc_only(workload_runs) -> Dict[str, List[DynamicRace]]:
    by_workload = {}
    for name, run in workload_runs.items():
        races = [race for report in run.reports
                 for race in report.dc.races
                 if race.race_class is RaceClass.DC_ONLY]
        if races:
            by_workload[name] = races
    return by_workload


def build_table2(workload_runs) -> str:
    lines = [f"Table 2 (analog): static DC-only races across {TRIALS} trials",
             f"{'Program':9s} | {'Static DC-only race':58s} | Event distance",
             "-" * 100]
    total_sites = 0
    for name, races in collect_dc_only(workload_runs).items():
        ranges = static_distance_ranges(races)
        for key, rng in sorted(ranges.items(), key=lambda kv: -kv[1].maximum):
            total_sites += 1
            locs = sorted(key)
            first = locs[0]
            second = locs[1] if len(locs) > 1 else locs[0]
            lines.append(f"{name:9s} | {first:58s} | {rng} "
                         f"({rng.count} dynamic)")
            lines.append(f"{'':9s} | {second:58s} |")
    lines.append("-" * 100)
    lines.append(f"{total_sites} static DC-only races in total.")
    return "\n".join(lines)


def test_table2(workload_runs, benchmark):
    table = build_table2(workload_runs)
    write_result("table2.txt", table)

    by_workload = collect_dc_only(workload_runs)
    # The paper's DC-only races concentrate in h2, pmd, and xalan.
    assert "xalan" in by_workload
    assert "h2" in by_workload
    assert "pmd" in by_workload
    # xalan contributes the FastStringBuffer-style long-distance races.
    xalan_locs = {loc for race in by_workload["xalan"]
                  for loc in race.static_key}
    assert any("FastStringBuffer" in loc for loc in xalan_locs)
    # Distances vary widely across the table (the paper spans 2k-72M;
    # scaled trace sizes compress the spread but the shape remains).
    all_distances = [race.event_distance
                     for races in by_workload.values() for race in races]
    assert max(all_distances) >= 5 * min(all_distances)

    benchmark(lambda: build_table2(workload_runs))

"""Overhead guard — the observability subsystem must cost ~nothing
when disabled.

The null-object design (see ``docs/OBSERVABILITY.md``) promises that
with observability off — the default — the instrumented pipeline runs
at seed throughput: the hottest loops batch plain ints, moderate sites
call empty methods on shared singletons, and the registry is consulted
only at phase boundaries. Two guards enforce the promise:

* ``test_disabled_matches_seed_throughput`` checks out the pre-obs
  revision (this PR's merge base, i.e. ``HEAD`` while the obs work is
  uncommitted, else the last commit before ``src/repro/obs`` existed)
  into a temporary git worktree and times the identical DC analysis in
  subprocesses against both source trees, interleaved A/B. The
  instrumented-but-disabled tree must stay within 5% of seed
  throughput (the ISSUE 3 acceptance bar, with a small noise floor).
* ``test_enabled_overhead_is_bounded`` bounds the *enabled* cost
  in-process, so turning metrics on for a profiling run stays usable.

Results land in ``benchmarks/results/obs_overhead.txt``.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

from repro import obs
from repro.analysis.dc import DCDetector
from repro.obs.timing import best_of
from repro.runtime import execute, fast_path_filter
from repro.runtime.workloads import WORKLOADS
from repro.traces.io import dump_trace

from harness import write_result

REPO = pathlib.Path(__file__).resolve().parent.parent

#: Subprocess payload: parse the trace and time the heaviest detector
#: configuration (DC + graph — the loop every layer of instrumentation
#: touches). Prints the best-of-N analysis seconds.
_PAYLOAD = """\
import sys, time
from repro.analysis.dc import DCDetector
from repro.traces.io import load_trace

trace = load_trace(sys.argv[1])
best = float("inf")
for _ in range(int(sys.argv[2])):
    det = DCDetector(build_graph=True)
    start = time.perf_counter()
    det.analyze(trace)
    best = min(best, time.perf_counter() - start)
print(best)
"""

REPEATS = 3          # best-of per subprocess
INTERLEAVES = 3      # A/B subprocess pairs (best over pairs)


def _git(*argv: str) -> str:
    return subprocess.run(["git", *argv], cwd=REPO, check=True,
                          capture_output=True, text=True).stdout.strip()


def _seed_rev() -> str:
    """The revision to compare against: the last commit in which
    ``src/repro/obs`` does not exist (== the tree this PR grew from)."""
    rev = "HEAD"
    while True:
        tree = _git("ls-tree", "--name-only", f"{rev}:src/repro")
        if "obs" not in tree.split():
            return _git("rev-parse", rev)
        rev = f"{rev}~1"


def _time_tree(src: pathlib.Path, trace_file: pathlib.Path) -> float:
    out = subprocess.run(
        [sys.executable, "-c", _PAYLOAD, str(trace_file), str(REPEATS)],
        env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        check=True, capture_output=True, text=True).stdout
    return float(out.strip())


@pytest.fixture(scope="module")
def bench_trace(tmp_path_factory):
    trace = execute(WORKLOADS["xalan"](scale=2.0), seed=7)
    filtered, _ = fast_path_filter(trace)
    path = tmp_path_factory.mktemp("obs_overhead") / "trace.txt"
    dump_trace(filtered, path)
    return filtered, path


def test_disabled_matches_seed_throughput(bench_trace, tmp_path):
    trace, trace_file = bench_trace
    try:
        seed_rev = _seed_rev()
    except (subprocess.CalledProcessError, FileNotFoundError):
        pytest.skip("git history unavailable")

    worktree = tmp_path / "seed-tree"
    _git("worktree", "add", "--detach", str(worktree), seed_rev)
    try:
        seed_best = float("inf")
        cur_best = float("inf")
        for _ in range(INTERLEAVES):
            seed_best = min(seed_best,
                            _time_tree(worktree / "src", trace_file))
            cur_best = min(cur_best, _time_tree(REPO / "src", trace_file))
    finally:
        _git("worktree", "remove", "--force", str(worktree))

    ratio = cur_best / seed_best
    lines = [
        "Observability overhead guard: DC+graph analysis, "
        f"{len(trace)}-event xalan trace (best of {REPEATS}x"
        f"{INTERLEAVES} subprocess runs)",
        f"{'tree':28s} | {'time (ms)':>10s} | {'events/sec':>12s}",
        "-" * 58,
        f"{'seed (' + seed_rev[:12] + ')':28s} | {seed_best * 1e3:10.1f} | "
        f"{len(trace) / seed_best:12,.0f}",
        f"{'instrumented, obs disabled':28s} | {cur_best * 1e3:10.1f} | "
        f"{len(trace) / cur_best:12,.0f}",
        "",
        f"disabled/seed time ratio: {ratio:.3f} (bar: <= 1.05)",
    ]
    write_result("obs_overhead.txt", "\n".join(lines))
    assert ratio <= 1.05, (
        f"obs-disabled run is {ratio:.3f}x seed time (> 1.05 bar): "
        f"{cur_best * 1e3:.1f} ms vs {seed_best * 1e3:.1f} ms")


def test_enabled_overhead_is_bounded(bench_trace):
    """Metrics-on must stay within 2x of metrics-off on the same
    analysis (it is a profiling mode, not a free lunch — but span and
    registry work happens at phase boundaries, not per event)."""
    trace, _ = bench_trace
    off = best_of(lambda: DCDetector(build_graph=True).analyze(trace))
    try:
        obs.enable()
        on = best_of(lambda: DCDetector(build_graph=True).analyze(trace))
    finally:
        obs.disable()
    assert on <= off * 2.0, (
        f"metrics-on analysis {on * 1e3:.1f} ms vs off {off * 1e3:.1f} ms")

"""Ablation A1 — the greedy construction policy (Section 5.3).

The paper's key construction insight: among legal events, always prepend
the one *latest in observed-trace order*, because the original
critical-section order is the most likely to complete a witness. This
ablation re-vindicates every DC-race in the workload suite and a corpus
of random traces under each policy and reports success rates.

Expected shape: ``latest`` constructs a witness for every true race
(the paper: it never failed); ``earliest`` and ``random`` leave some
races at *don't know*.
"""

from repro.analysis.dc import DCDetector
from repro.runtime import execute, fast_path_filter
from repro.runtime.workloads import WORKLOADS
from repro.vindicate.vindicator import Verdict, vindicate_race
from repro.traces.gen import GeneratorConfig, random_trace
from repro.traces.litmus import appendix_c_greedy

from harness import write_result

POLICIES = ("latest", "earliest", "random")


def collect_cases():
    """(trace, graph, race) triples: workload DC-only races plus random
    traces' DC-races plus the policy-sensitive litmus execution."""
    cases = []
    for name in ("h2", "pmd", "xalan"):
        trace = execute(WORKLOADS[name](scale=0.5), seed=3)
        filtered, _ = fast_path_filter(trace)
        det = DCDetector()
        det.analyze(filtered)
        wcp_like = det  # races to vindicate: all DC races here
        for race in wcp_like.report.races:
            cases.append((filtered, det.graph, race))
    cfg = GeneratorConfig(threads=3, events=30, locks=2, variables=2,
                          max_nesting=2)
    for seed in range(40):
        trace = random_trace(seed, cfg)
        det = DCDetector()
        det.transitive_force = False
        det.analyze(trace)
        for race in det.report.races:
            cases.append((trace, det.graph, race))
    trace = appendix_c_greedy()
    det = DCDetector()
    det.analyze(trace)
    for race in det.report.races:
        cases.append((trace, det.graph, race))
    return cases


def ablate(cases):
    outcome = {policy: {"race": 0, "no_race": 0, "unknown": 0}
               for policy in POLICIES}
    for trace, graph, race in cases:
        for policy in POLICIES:
            result = vindicate_race(graph, trace, race, policy=policy, seed=1)
            key = {Verdict.RACE: "race", Verdict.NO_RACE: "no_race",
                   Verdict.UNKNOWN: "unknown"}[result.verdict]
            outcome[policy][key] += 1
    return outcome


def test_greedy_ablation(benchmark):
    cases = collect_cases()
    outcome = ablate(cases)
    lines = [f"Ablation: greedy construction policy over {len(cases)} "
             f"DC-races",
             f"{'policy':10s} | {'witness':>8s} | {'refuted':>8s} | "
             f"{'dont know':>9s}"]
    for policy in POLICIES:
        o = outcome[policy]
        lines.append(f"{policy:10s} | {o['race']:8d} | {o['no_race']:8d} | "
                     f"{o['unknown']:9d}")
    write_result("ablation_greedy.txt", "\n".join(lines))

    # Cycle refutations are policy-independent.
    refuted = {outcome[p]["no_race"] for p in POLICIES}
    assert len(refuted) == 1
    # The paper's insight: 'latest' never fails; other policies can.
    assert outcome["latest"]["unknown"] == 0
    assert (outcome["earliest"]["unknown"] + outcome["random"]["unknown"]) > 0
    assert outcome["latest"]["race"] >= outcome["earliest"]["race"]

    trace, graph, race = cases[0]
    benchmark(lambda: vindicate_race(graph, trace, race, policy="latest"))

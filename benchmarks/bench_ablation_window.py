"""Ablation A3 — AddConstraints's event-window optimisation.

The paper's second VindicateRace optimisation (Section 6.1): only
consider events within a window between the racing events, expanding the
window on the fly to cover each added edge. The windowed search may add
fewer (redundant) LS constraints, but verdicts cannot become unsound —
every RACE verdict is gated by the Definition 2.1 witness checker.

This ablation re-vindicates the workload suite's DC-only races with and
without the window and reports verdict agreement and timing.
"""

import time

from repro.analysis.dc import DCDetector
from repro.runtime import execute, fast_path_filter
from repro.runtime.workloads import WORKLOADS
from repro.vindicate.vindicator import Verdict, vindicate_race

from harness import write_result


def collect_cases():
    cases = []
    for name in ("h2", "pmd", "xalan"):
        for seed in range(4):
            trace = execute(WORKLOADS[name](scale=0.6), seed=seed)
            filtered, _ = fast_path_filter(trace)
            det = DCDetector()
            det.analyze(filtered)
            for race in det.report.races:
                cases.append((filtered, det.graph, race))
    return cases


def test_window_ablation(benchmark):
    cases = collect_cases()
    agree = 0
    ls_full = ls_windowed = 0
    timings = {"full": 0.0, "windowed": 0.0}
    degraded = 0
    for trace, graph, race in cases:
        start = time.perf_counter()
        full = vindicate_race(graph, trace, race, use_window=False)
        timings["full"] += time.perf_counter() - start
        start = time.perf_counter()
        windowed = vindicate_race(graph, trace, race, use_window=True)
        timings["windowed"] += time.perf_counter() - start
        if full.verdict is windowed.verdict:
            agree += 1
        else:
            # The only allowed divergence: a refutation degrading soundly
            # to don't-know because the cycle lies outside the window.
            assert full.verdict is Verdict.NO_RACE
            assert windowed.verdict is Verdict.UNKNOWN
            degraded += 1
        ls_full += full.ls_constraints
        ls_windowed += windowed.ls_constraints
    lines = [
        f"Ablation: AddConstraints event window over {len(cases)} DC-races",
        f"verdict agreement : {agree}/{len(cases)} "
        f"({degraded} refutations degraded to don't-know)",
        f"LS constraints    : full {ls_full}, windowed {ls_windowed}",
        f"vindication time  : full {timings['full'] * 1e3:.1f} ms, "
        f"windowed {timings['windowed'] * 1e3:.1f} ms",
    ]
    write_result("ablation_window.txt", "\n".join(lines))
    assert ls_windowed <= ls_full

    trace, graph, race = cases[0]
    benchmark(lambda: vindicate_race(graph, trace, race, use_window=True))

"""Experiment E4 — Table 3: VindicateRace behaviour per DC-only race.

Regenerates the paper's Table 3 (the table the provided paper text cuts
off inside): the distribution of lock-semantics constraints added by
ADDCONSTRAINTS per vindicated DC-only race, bucketed as in the paper
(0, 1, 2–3, 4–7, 8–15, 16+), plus the number of
ATTEMPTTOCONSTRUCTTRACE calls (1 = no missing-release retry).

Expected shape: most vindications need few or no LS constraints and a
single construction attempt; a small tail needs more.
"""

from repro.vindicate.vindicator import Verdict

from harness import write_result

BUCKETS = [(0, 0, "0"), (1, 1, "1"), (2, 3, "2-3"), (4, 7, "4-7"),
           (8, 15, "8-15"), (16, 10**9, "16+")]


def collect_vindications(workload_runs):
    return [v for run in workload_runs.values()
            for report in run.reports for v in report.vindications]


def build_table3(workload_runs) -> str:
    vindications = collect_vindications(workload_runs)
    ls_counts = {}
    attempt_counts = {}
    consecutive = []
    for v in vindications:
        for lo, hi, label in BUCKETS:
            if lo <= v.ls_constraints <= hi:
                ls_counts[label] = ls_counts.get(label, 0) + 1
                break
        attempt_counts[v.attempts] = attempt_counts.get(v.attempts, 0) + 1
        consecutive.append(v.consecutive_edges)
    lines = ["Table 3 (analog): VindicateRace statistics over all dynamic "
             "DC-only races", ""]
    lines.append("LS constraints added | " + " | ".join(
        f"{label:>5s}" for _, _, label in BUCKETS))
    lines.append("races                | " + " | ".join(
        f"{ls_counts.get(label, 0):5d}" for _, _, label in BUCKETS))
    lines.append("")
    lines.append("AttemptToConstructTrace calls | " + " | ".join(
        f"{k}: {v}" for k, v in sorted(attempt_counts.items())))
    if consecutive:
        lines.append(f"consecutive-event constraints: min "
                     f"{min(consecutive)}, max {max(consecutive)}")
    lines.append(f"total vindications: {len(vindications)}")
    return "\n".join(lines)


def test_table3(workload_runs, benchmark):
    table = build_table3(workload_runs)
    write_result("table3.txt", table)

    vindications = collect_vindications(workload_runs)
    assert vindications, "expected DC-only races to vindicate"
    # Paper shape: the small-LS buckets dominate.
    few_ls = sum(1 for v in vindications if v.ls_constraints <= 3)
    assert few_ls >= 0.5 * len(vindications)
    # Every vindication succeeded (headline claim).
    assert all(v.verdict is Verdict.RACE for v in vindications)

    # Benchmark VINDICATERACE itself on a DC-only race.
    from repro.analysis.dc import DCDetector
    from repro.vindicate.vindicator import vindicate_race
    from repro.traces.litmus import figure3
    trace = figure3()
    det = DCDetector()
    report = det.analyze(trace)
    race = report.races[-1]
    benchmark(lambda: vindicate_race(det.graph, trace, race))

"""Experiment E8 — scalability: full-execution analysis, growing traces.

The paper's core engineering claim is *unbounded* operation: unlike
bounded-window predictive analyses, DC analysis and VindicateRace scale
to full program executions. This bench grows the xalan-analog trace and
reports end-to-end cost; the shape to verify is that analysis stays
linear in trace length and per-race vindication stays polynomial and
practical, with the paper's window optimisation cutting vindication
substantially at larger scales.
"""

import time

from repro.runtime import execute, fast_path_filter
from repro.runtime.workloads import WORKLOADS
from repro.vindicate.vindicator import Verdict, Vindicator

from harness import write_result

SCALES = (1.0, 3.0, 9.0)


def run_at_scale(scale, use_window):
    trace = execute(WORKLOADS["xalan"](scale=scale), seed=1)
    filtered, _ = fast_path_filter(trace)
    start = time.perf_counter()
    report = Vindicator(use_window=use_window).run(filtered)
    total = time.perf_counter() - start
    assert all(v.verdict is Verdict.RACE for v in report.vindications)
    races = max(1, len(report.vindications))
    return {
        "events": len(filtered),
        "analysis": report.analysis_seconds,
        "vindication": report.vindication_seconds,
        "per_race_ms": report.vindication_seconds / races * 1e3,
        "races": len(report.vindications),
        "total": total,
    }


def test_scalability(benchmark):
    rows = []
    for scale in SCALES:
        plain = run_at_scale(scale, use_window=False)
        windowed = run_at_scale(scale, use_window=True)
        rows.append((scale, plain, windowed))
    lines = ["Scalability: xalan-analog, growing trace length",
             f"{'scale':>5s} | {'events':>7s} | {'analysis':>9s} | "
             f"{'vindicate':>9s} | {'windowed':>9s} | {'races':>5s} | "
             f"{'ms/race':>8s}"]
    for scale, plain, windowed in rows:
        lines.append(
            f"{scale:5.1f} | {plain['events']:7d} | {plain['analysis']:8.2f}s "
            f"| {plain['vindication']:8.2f}s | {windowed['vindication']:8.2f}s "
            f"| {plain['races']:5d} | {plain['per_race_ms']:8.1f}")
    write_result("scalability.txt", "\n".join(lines))

    # Analysis must scale ~linearly: events/sec within 4x across scales.
    small, large = rows[0][1], rows[-1][1]
    small_rate = small["events"] / max(small["analysis"], 1e-9)
    large_rate = large["events"] / max(large["analysis"], 1e-9)
    assert large_rate > small_rate / 4

    benchmark(lambda: run_at_scale(1.0, use_window=True))

"""Compiled clock kernels: speedup floors for the native backend.

The compiled backend of :mod:`repro.core.kernels` exists to buy
constant factors on the per-event hot path — the fused per-access
kernels (``access_wcp`` / ``access_dc``) plus the dense clock ops the
epoch detectors call between accesses. This bench pins that win: the
SmartTrack epoch detectors (the pure-Python ``--fast-vc`` baseline)
run the Table 4 xalan stream under the ``python`` and ``compiled``
backends back-to-back in one process, and the ISSUE's acceptance
floors — per-event (non-batch) WCP and DC-no-graph throughput ≥ 1.5×
— are asserted on the ratio, so they are machine-speed independent.
The DC graph-building configuration is reported alongside without a
floor (its access path intentionally stays open-coded Python — graph
edges are Python-side — so only the fine-grained kernels accelerate
it).

Results go to ``kernels.txt`` / ``BENCH_kernels.json``; the
``kernels-perf`` CI job builds the extension, runs this bench, and
uploads both. Skips cleanly when the extension is not built.
"""

import pytest

from repro.analysis.smarttrack import EpochDCDetector, EpochWCPDetector
from repro.core import kernels
from repro.obs.timing import best_of
from repro.runtime import execute
from repro.runtime.workloads import WORKLOADS

from harness import write_json, write_result

pytestmark = pytest.mark.skipif(
    not kernels.compiled_available(),
    reason="repro.core._kernels extension not built (pure-Python checkout)")


@pytest.fixture(scope="module")
def raw_trace():
    """The Table 4 xalan stream, unfiltered — the same trace the
    smarttrack and batch floors are defined on."""
    return execute(WORKLOADS["xalan"](scale=2.0), seed=1)


#: (label, floor or None, detector factory). Floors are the ISSUE's
#: acceptance bar for the fused per-access paths; DC + graph has none.
KERNEL_CONFIGS = [
    ("WCP epoch", 1.5, lambda: EpochWCPDetector()),
    ("DC epoch (no graph)", 1.5,
     lambda: EpochDCDetector(build_graph=False)),
    ("DC epoch + graph G", None,
     lambda: EpochDCDetector(build_graph=True)),
]


def test_compiled_kernel_speedup(raw_trace):
    """python vs compiled backend on the per-event epoch detectors:
    assert the ≥ 1.5× floors and write ``BENCH_kernels.json``."""
    n = len(raw_trace)
    previous = kernels.active_backend()
    rows = []
    try:
        for label, floor, factory in KERNEL_CONFIGS:
            # Warm-up runs double as an end-to-end verdict-identity
            # check (the full contract lives in
            # tests/test_kernels_differential.py).
            kernels.set_backend("python")
            py_report = factory().analyze(raw_trace)
            py_time = best_of(lambda: factory().analyze(raw_trace),
                              repeats=7)
            kernels.set_backend("compiled")
            c_report = factory().analyze(raw_trace)
            assert ([(r.first.eid, r.second.eid) for r in py_report.races]
                    == [(r.first.eid, r.second.eid) for r in c_report.races]
                    ), f"{label}: compiled backend changed the race set"
            assert py_report.counters == c_report.counters, \
                f"{label}: compiled backend changed the counters"
            c_time = best_of(lambda: factory().analyze(raw_trace),
                             repeats=7)
            rows.append((label, floor, n / py_time, n / c_time,
                         py_time / c_time))
    finally:
        kernels.set_backend(previous)

    lines = [f"Compiled clock kernels on the {n}-event raw xalan trace "
             f"(best of 7, python vs compiled backend)",
             f"{'configuration':22s} | {'python ev/s':>12s} | "
             f"{'compiled ev/s':>13s} | {'speedup':>8s} | {'floor':>6s}",
             "-" * 75]
    for label, floor, py_eps, c_eps, ratio in rows:
        floor_cell = f"{floor:5.1f}x" if floor is not None else "     -"
        lines.append(f"{label:22s} | {py_eps:12,.0f} | {c_eps:13,.0f} | "
                     f"{ratio:7.2f}x | {floor_cell}")
    write_result("kernels.txt", "\n".join(lines))
    write_json("BENCH_kernels.json", {
        "trace": {"workload": "xalan", "scale": 2.0, "seed": 1, "events": n},
        "best_of": 7,
        "rows": [
            {"configuration": label,
             "floor": floor,
             "python_events_per_sec": round(py_eps, 1),
             "compiled_events_per_sec": round(c_eps, 1),
             "speedup": round(ratio, 3)}
            for label, floor, py_eps, c_eps, ratio in rows],
    })
    for label, floor, _, _, ratio in rows:
        if floor is not None:
            assert ratio >= floor, \
                f"{label}: {ratio:.2f}x below the {floor:.1f}x floor"

"""Compiled clock kernels: speedup floors for the native backend.

The compiled backend of :mod:`repro.core.kernels` exists to buy
constant factors on the per-event hot path — the fused per-access
kernels (``access_wcp`` / ``access_dc``), the fused sync-op kernels
(``acquire_*`` / ``release_*`` / ``fork_*`` / ``join_*``), and the
dense clock ops between them. This bench pins those wins:

* The SmartTrack epoch detectors (the pure-Python ``--fast-vc``
  baseline) run the Table 4 xalan stream under the ``python`` and
  ``compiled`` backends back-to-back in one process, and the
  acceptance floors are asserted on the *ratio*, so they are
  machine-speed independent. Since the DC edge buffer landed, the
  graph-building configuration is fused too and carries a floor of
  its own.
* A sync-heavy, race-free lock-churn trace (guarded critical sections
  with periodic ownership flips) is run under the compiled backend
  with sync fusion off (the access-only fused path) vs on, pinning
  the sync-op kernels' marginal win at ≥ 1.3×.

Timing hygiene: trace execution happens once per module in fixtures
and detector construction is hoisted out of the timed region —
``best_of`` times nothing but ``analyze`` (``begin_trace`` resets all
state), so the floors measure analysis, not I/O or object churn.

Results go to ``kernels.txt`` / ``BENCH_kernels.json``; the
``kernels-perf`` CI job builds the extension, runs this bench, and
uploads both. Skips cleanly when the extension is not built.
"""

import pytest

from repro.analysis.smarttrack import EpochDCDetector, EpochWCPDetector
from repro.core import kernels
from repro.core.trace import TraceBuilder
from repro.obs.timing import best_of
from repro.runtime import execute
from repro.runtime.workloads import WORKLOADS

from harness import write_json, write_result

pytestmark = pytest.mark.skipif(
    not kernels.compiled_available(),
    reason="repro.core._kernels extension not built (pure-Python checkout)")


@pytest.fixture(scope="module")
def raw_trace():
    """The Table 4 xalan stream, unfiltered — the same trace the
    smarttrack and batch floors are defined on. Executed once and
    shared across every row so the timed region is analysis only."""
    return execute(WORKLOADS["xalan"](scale=2.0), seed=1)


@pytest.fixture(scope="module")
def churn_trace():
    """A sync-heavy, race-free trace: two-thirds of events are
    acquires/releases, each variable consistently guarded by its lock
    (no races, so the access fast path stays cheap and the sync ops
    carry the cost). Locks are mostly thread-exclusive with a shared
    lock taken every 8th section, flipping the DC ownership tag between
    its fast and slow release paths — the regime where the fused
    sync-op kernels (not the access kernels) carry the win."""
    b = TraceBuilder()
    threads = 4
    for i in range(12_000):
        t = 1 + (i % threads)
        lock = "s" if i % 8 == 0 else f"m{t}"
        b.acq(t, lock)
        b.wr(t, f"g_{lock}")
        b.rel(t, lock)
    return b.build()


#: (label, floor, detector factory). Floors are the acceptance bar for
#: the fused per-event paths; all three configurations are fused now
#: that DC graph edges stage through the C-side edge buffer. The graph
#: configuration's floor is lower because the buffered edges still
#: drain into the Python ConstraintGraph at finish() on both backends,
#: diluting the per-event win.
KERNEL_CONFIGS = [
    ("WCP epoch", 1.5, lambda: EpochWCPDetector()),
    ("DC epoch (no graph)", 1.5,
     lambda: EpochDCDetector(build_graph=False)),
    ("DC epoch + graph G", 1.15,
     lambda: EpochDCDetector(build_graph=True)),
]

REPEATS = 7


def test_compiled_kernel_speedup(raw_trace):
    """python vs compiled backend on the per-event epoch detectors:
    assert the ≥ 1.5× floors and write ``BENCH_kernels.json``."""
    n = len(raw_trace)
    previous = kernels.active_backend()
    rows = []
    try:
        for label, floor, factory in KERNEL_CONFIGS:
            # One detector per backend, reused across repeats:
            # begin_trace resets all state, so timing covers analyze()
            # alone. The warm-up runs double as an end-to-end
            # verdict-identity check (the full contract lives in
            # tests/test_kernels_differential.py).
            kernels.set_backend("python")
            py_det = factory()
            py_report = py_det.analyze(raw_trace)
            py_time = best_of(lambda: py_det.analyze(raw_trace),
                              repeats=REPEATS)
            kernels.set_backend("compiled")
            c_det = factory()
            c_report = c_det.analyze(raw_trace)
            assert ([(r.first.eid, r.second.eid) for r in py_report.races]
                    == [(r.first.eid, r.second.eid) for r in c_report.races]
                    ), f"{label}: compiled backend changed the race set"
            assert py_report.counters == c_report.counters, \
                f"{label}: compiled backend changed the counters"
            c_time = best_of(lambda: c_det.analyze(raw_trace),
                             repeats=REPEATS)
            rows.append((label, floor, n / py_time, n / c_time,
                         py_time / c_time))
    finally:
        kernels.set_backend(previous)

    lines = [f"Compiled clock kernels on the {n}-event raw xalan trace "
             f"(best of {REPEATS}, python vs compiled backend)",
             f"{'configuration':22s} | {'python ev/s':>12s} | "
             f"{'compiled ev/s':>13s} | {'speedup':>8s} | {'floor':>6s}",
             "-" * 75]
    for label, floor, py_eps, c_eps, ratio in rows:
        floor_cell = f"{floor:5.1f}x" if floor is not None else "     -"
        lines.append(f"{label:22s} | {py_eps:12,.0f} | {c_eps:13,.0f} | "
                     f"{ratio:7.2f}x | {floor_cell}")
    write_result("kernels.txt", "\n".join(lines))
    write_json("BENCH_kernels.json", {
        "trace": {"workload": "xalan", "scale": 2.0, "seed": 1, "events": n},
        "best_of": REPEATS,
        "rows": [
            {"configuration": label,
             "floor": floor,
             "python_events_per_sec": round(py_eps, 1),
             "compiled_events_per_sec": round(c_eps, 1),
             "speedup": round(ratio, 3)}
            for label, floor, py_eps, c_eps, ratio in rows],
    })
    for label, floor, _, _, ratio in rows:
        if floor is not None:
            assert ratio >= floor, \
                f"{label}: {ratio:.2f}x below the {floor:.1f}x floor"


def test_sync_fusion_marginal_speedup(churn_trace):
    """Sync fusion off vs on, compiled backend, sync-heavy trace: the
    fused acquire/release/fork/join kernels alone must be worth ≥ 1.3×
    over the access-only fused path."""
    n = len(churn_trace)
    previous = kernels.active_backend()
    rows = []
    try:
        kernels.set_backend("compiled")
        for label, factory in [
                ("WCP epoch", lambda: EpochWCPDetector()),
                ("DC epoch (no graph)",
                 lambda: EpochDCDetector(build_graph=False))]:
            kernels.set_sync_fusion(False)
            base_det = factory()
            base_report = base_det.analyze(churn_trace)
            base_time = best_of(lambda: base_det.analyze(churn_trace),
                                repeats=REPEATS)
            kernels.set_sync_fusion(True)
            fused_det = factory()
            fused_report = fused_det.analyze(churn_trace)
            assert ([(r.first.eid, r.second.eid)
                     for r in base_report.races]
                    == [(r.first.eid, r.second.eid)
                        for r in fused_report.races]
                    ), f"{label}: sync fusion changed the race set"
            assert base_report.counters == fused_report.counters, \
                f"{label}: sync fusion changed the counters"
            fused_time = best_of(lambda: fused_det.analyze(churn_trace),
                                 repeats=REPEATS)
            rows.append((label, n / base_time, n / fused_time,
                         base_time / fused_time))
    finally:
        kernels.set_sync_fusion(True)
        kernels.set_backend(previous)

    lines = [f"Fused sync-op kernels on a {n}-event lock-churn trace "
             f"(best of {REPEATS}, compiled backend, "
             f"sync fusion off vs on)",
             f"{'configuration':22s} | {'access-only ev/s':>16s} | "
             f"{'fused ev/s':>12s} | {'speedup':>8s} | {'floor':>6s}",
             "-" * 78]
    for label, base_eps, fused_eps, ratio in rows:
        lines.append(f"{label:22s} | {base_eps:16,.0f} | "
                     f"{fused_eps:12,.0f} | {ratio:7.2f}x |   1.3x")
    write_result("kernels_sync_fusion.txt", "\n".join(lines))
    write_json("BENCH_kernels_sync.json", {
        "trace": {"generator": "ownership-flip lock churn",
                  "threads": 4, "sections": 12_000, "share_every": 8,
                  "events": n},
        "best_of": REPEATS,
        "rows": [
            {"configuration": label,
             "floor": 1.3,
             "access_only_events_per_sec": round(base_eps, 1),
             "fused_events_per_sec": round(fused_eps, 1),
             "speedup": round(ratio, 3)}
            for label, base_eps, fused_eps, ratio in rows],
    })
    for label, _, _, ratio in rows:
        assert ratio >= 1.3, \
            f"{label}: sync fusion worth only {ratio:.2f}x (< 1.3x floor)"

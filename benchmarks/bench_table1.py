"""Experiment E1 — Table 1: HB-, WCP-, and DC-races per program.

Regenerates the paper's Table 1: for each workload, the number of
statically distinct races (and dynamic races in parentheses) detected by
HB, WCP, and DC analysis on the same traces, averaged over the trials.

Expected shape (paper, DaCapo): DC ⊇ WCP ⊇ HB everywhere; xalan's WCP
count is an order of magnitude above its HB count; batik and lusearch
are race-free; tomcat dominates; the total DC column strictly exceeds
the WCP column. The run also asserts the headline result (E6): every
dynamic DC-only race vindicates as a true predictable race.
"""

import statistics

import pytest

from repro.vindicate.vindicator import Verdict

from harness import TRIALS, write_result


def _avg(values):
    return statistics.mean(values)


def build_table1(workload_runs):
    header = (f"{'Program':10s} | {'HB-races':>14s} | {'WCP-races':>14s} | "
              f"{'DC-races':>14s}")
    lines = [f"Table 1 (analog): statically distinct races (dynamic races), "
             f"avg of {TRIALS} trials",
             header, "-" * len(header)]
    totals = {"hb": [0.0, 0.0], "wcp": [0.0, 0.0], "dc": [0.0, 0.0]}
    for name, run in workload_runs.items():
        cells = {}
        for key in ("hb", "wcp", "dc"):
            static = _avg([getattr(r, key).static_count for r in run.reports])
            dynamic = _avg([getattr(r, key).dynamic_count for r in run.reports])
            totals[key][0] += static
            totals[key][1] += dynamic
            cells[key] = f"{static:5.1f} ({dynamic:6.1f})"
        lines.append(f"{name:10s} | {cells['hb']:>14s} | {cells['wcp']:>14s} "
                     f"| {cells['dc']:>14s}")
    lines.append("-" * len(header))
    lines.append(
        f"{'Total':10s} | "
        + " | ".join(f"{totals[k][0]:5.1f} ({totals[k][1]:6.1f})".rjust(14)
                     for k in ("hb", "wcp", "dc")))
    confirmed = sum(
        sum(1 for v in r.vindications if v.verdict is Verdict.RACE)
        for run in workload_runs.values() for r in run.reports)
    attempted = sum(len(r.vindications)
                    for run in workload_runs.values() for r in run.reports)
    lines.append("")
    lines.append(f"VindicateRace confirmed {confirmed}/{attempted} dynamic "
                 f"DC-only races as true predictable races.")
    return "\n".join(lines)


def test_table1(workload_runs, benchmark):
    """Generate Table 1 and time one full pipeline run as the benchmark."""
    table = build_table1(workload_runs)
    write_result("table1.txt", table)

    # Shape assertions (paper's qualitative claims).
    for name, run in workload_runs.items():
        for report in run.reports:
            assert report.hb.static_count <= report.wcp.static_count
            assert report.wcp.static_count <= report.dc.static_count
    for name in ("batik", "lusearch"):
        assert all(r.dc.dynamic_count == 0
                   for r in workload_runs[name].reports), name
    xalan = workload_runs["xalan"].reports
    assert _avg([r.wcp.static_count for r in xalan]) > \
        2 * _avg([r.hb.static_count for r in xalan])
    total_dc = sum(_avg([r.dc.static_count for r in run.reports])
                   for run in workload_runs.values())
    total_wcp = sum(_avg([r.wcp.static_count for r in run.reports])
                    for run in workload_runs.values())
    assert total_dc > total_wcp

    # E6: every vindication of a DC-only race is a confirmed true race.
    for run in workload_runs.values():
        for report in run.reports:
            for v in report.vindications:
                assert v.verdict is Verdict.RACE, (run.name, str(v))

    # Benchmark: the full three-analysis pipeline on one xalan trace.
    from repro.runtime import execute, fast_path_filter
    from repro.runtime.workloads import WORKLOADS
    from repro.vindicate.vindicator import Vindicator
    trace = execute(WORKLOADS["xalan"](scale=0.6), seed=0)
    filtered, _ = fast_path_filter(trace)
    benchmark(lambda: Vindicator().run(filtered))

"""Shared fixtures for the benchmark/experiment harness.

The paper's evaluation methodology (Section 6.2) runs each DaCapo
program for 10 trials and averages; this harness does the same with the
DaCapo-analog workloads, each trial using a different scheduler seed.
All per-trial Vindicator reports are computed once per session and
shared by every table/figure generator. Result tables are printed and
also written to ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, List

from repro.runtime import execute, fast_path_filter
from repro.runtime.workloads import WORKLOADS
from repro.vindicate.vindicator import Vindicator, VindicatorReport

#: Trials per workload (the paper uses 10).
TRIALS = 10
#: Workload size multiplier (keeps full-harness runtime in minutes).
SCALE = 0.6

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@dataclass
class WorkloadRun:
    """One workload's trials: traces and their Vindicator reports."""

    name: str
    reports: List[VindicatorReport]
    fast_path_rates: List[float]


def run_workload(name: str, trials: int = TRIALS,
                 scale: float = SCALE) -> WorkloadRun:
    """Execute and analyse one workload for ``trials`` seeds."""
    factory = WORKLOADS[name]
    reports, rates = [], []
    for seed in range(trials):
        trace = execute(factory(scale=scale), seed=seed)
        filtered, stats = fast_path_filter(trace)
        reports.append(Vindicator().run(filtered))
        rates.append(stats.hit_rate)
    return WorkloadRun(name=name, reports=reports, fast_path_rates=rates)


def write_result(filename: str, content: str) -> None:
    """Write a result table under ``benchmarks/results/`` and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    path.write_text(content, encoding="utf-8")
    print(f"\n[written to {path}]\n{content}")


def write_json(filename: str, payload: Dict[str, Any]) -> None:
    """Write a machine-readable result under ``benchmarks/results/``.

    The JSON mirrors the human-readable ``.txt`` tables so CI can
    upload, diff, and assert on benchmark numbers without re-parsing
    formatted text.  Keys are sorted for stable diffs.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"[written to {path}]")

"""Experiment E3 — Figure 6: cumulative distribution of event distances.

Regenerates the paper's Figure 6: for HB-races, WCP-only races, and
DC-only races, the percentage of dynamic races with at least a given
event distance (a survival curve over a log-distance axis), aggregated
across all workloads and trials.

Expected shape: the DC-only curve sits far to the right — DC-only races
have event distances an order of magnitude (or more) above HB-races.
The paper draws two conclusions this harness re-checks: bounded-window
predictive analyses would miss the DC-only population, and
VindicateRace nonetheless handles every one of them.
"""

from repro.analysis.races import RaceClass
from repro.stats.cdf import ascii_cdf_plot, cdf_csv, median, survival_series
from repro.stats.distances import distances_by_class

from harness import write_result


def collect_distances(workload_runs):
    races = [race for run in workload_runs.values()
             for report in run.reports for race in report.dc.races]
    by_class = distances_by_class(races)
    return {str(race_class): values
            for race_class, values in by_class.items()}


def build_figure6(workload_runs) -> str:
    series = collect_distances(workload_runs)
    parts = ["Figure 6 (analog): CDF of dynamic race event distances", ""]
    parts.append(ascii_cdf_plot(series))
    parts.append("")
    for label, values in series.items():
        parts.append(f"{label:9s}: n={len(values):5d}  median={median(values):9.1f}  "
                     f"max={max(values)}")
    parts.append("")
    parts.append("CSV series:")
    parts.append(cdf_csv(series))
    return "\n".join(parts)


def test_figure6(workload_runs, benchmark):
    figure = build_figure6(workload_runs)
    write_result("figure6.txt", figure)

    series = collect_distances(workload_runs)
    hb = series.get(str(RaceClass.HB), [])
    dc_only = series.get(str(RaceClass.DC_ONLY), [])
    assert hb and dc_only
    # The paper's claim: DC-only races are an order of magnitude farther
    # apart than HB races.
    assert median(dc_only) >= 5 * median(hb)

    benchmark(lambda: survival_series(dc_only + hb))

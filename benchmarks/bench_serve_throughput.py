"""Serving throughput — what the streaming service costs over batch.

Four measurements, same events (avrora at ``SCALE``), all with GC on:

* ``batch analyze`` — the single-shot reference pipeline
  (``Vindicator().run``), the ceiling the service is judged against;
* ``inline session`` — :class:`~repro.serve.session.SessionAnalyzer`
  fed line chunks directly: streaming parse + detectors + windowed GC,
  no sockets.  The gap to batch is the price of incremental analysis;
* ``daemon unix jobs=1`` — the full service path: framed NDJSON over a
  unix socket into one shard process.  The gap to inline is protocol +
  IPC overhead;
* ``daemon unix jobs=2 x2 clients`` — two concurrent client threads
  streaming distinct sessions sharded across two workers; aggregate
  events/sec shows ingestion scaling past a single shard.

A fifth row times checkpoint write + resume for the fully-fed session
(the drain/restore path), with the packed artifact's size on disk.

Results land in ``benchmarks/results/serve_throughput.txt`` and, for
CI diffing, ``benchmarks/results/BENCH_serve.json``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List

from repro.obs.timing import best_of
from repro.runtime import execute
from repro.runtime.workloads import WORKLOADS
from repro.serve.checkpoint import resume_session, write_checkpoint
from repro.serve.client import ServeClient
from repro.serve.server import ServeDaemon
from repro.serve.session import SessionAnalyzer, SessionConfig
from repro.traces.io import format_event
from repro.vindicate.vindicator import Vindicator

from harness import write_json, write_result

#: ~9.6k events: enough frames and GC sweeps to measure the steady
#: state, small enough that best-of-3 across five configs stays fast.
SCALE = 4.0
SEED = 0
#: Frames of this many lines — a realistic client batch (the directory
#: watcher uses 2000; smaller here so the socket path sees many frames).
CHUNK_LINES = 500
GC_WINDOW = 1024
BEST_OF = 3


def _chunks(lines: List[str], size: int) -> List[List[str]]:
    return [lines[i:i + size] for i in range(0, len(lines), size)]


def _stream_inline(lines: List[str], name: str) -> SessionAnalyzer:
    analyzer = SessionAnalyzer(SessionConfig(name=name,
                                             gc_window=GC_WINDOW))
    for chunk in _chunks(lines, CHUNK_LINES):
        analyzer.feed_lines(chunk)
    return analyzer


def _stream_daemon(daemon: ServeDaemon, name: str,
                   lines: List[str]) -> None:
    with ServeClient(path=daemon.unix_socket) as client:
        client.hello(name, config={"gc_window": GC_WINDOW})
        for chunk in _chunks(lines, CHUNK_LINES):
            client.events(name, chunk)


def test_serve_throughput(tmp_path):
    trace = execute(WORKLOADS["avrora"](scale=SCALE), seed=SEED)
    lines = [format_event(e) for e in trace]
    n = len(lines)
    rows: List[Dict[str, Any]] = []

    def row(configuration: str, seconds: float, events: int = n) -> None:
        rows.append({
            "configuration": configuration,
            "events": events,
            "seconds": round(seconds, 4),
            "events_per_sec": round(events / seconds, 1),
        })

    # Batch reference: the whole pipeline minus vindication (the serve
    # ingestion path being measured ends at finish()'s doorstep too).
    row("batch analyze", best_of(
        lambda: Vindicator().run(trace), repeats=BEST_OF))

    # Inline streaming session (parse + detectors + GC, no sockets).
    counter = [0]

    def inline() -> None:
        counter[0] += 1
        _stream_inline(lines, f"inline-{counter[0]}")

    row("inline session", best_of(inline, repeats=BEST_OF))

    # Full daemon path, one shard.
    daemon1 = ServeDaemon(unix_socket=str(tmp_path / "serve1.sock"),
                          jobs=1, checkpoint_dir=str(tmp_path / "ckpt1"))
    daemon1.start()
    try:
        def one_shard() -> None:
            counter[0] += 1
            _stream_daemon(daemon1, f"uni-{counter[0]}", lines)

        row("daemon unix jobs=1", best_of(one_shard, repeats=BEST_OF))
    finally:
        daemon1.shutdown()

    # Two shards, two concurrent clients: aggregate ingestion rate.
    daemon2 = ServeDaemon(unix_socket=str(tmp_path / "serve2.sock"),
                          jobs=2, checkpoint_dir=str(tmp_path / "ckpt2"))
    daemon2.start()
    try:
        def two_clients() -> None:
            counter[0] += 1
            threads = [
                threading.Thread(
                    target=_stream_daemon,
                    args=(daemon2, f"duo-{counter[0]}-{i}", lines))
                for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        row("daemon unix jobs=2 x2 clients",
            best_of(two_clients, repeats=BEST_OF), events=2 * n)
    finally:
        daemon2.shutdown()

    # Checkpoint round trip for a fully-fed session.
    analyzer = _stream_inline(lines, "ckpt")
    ckpt = tmp_path / "bench.vckp"
    start = time.perf_counter()
    size = write_checkpoint(analyzer, str(ckpt))
    write_seconds = time.perf_counter() - start
    start = time.perf_counter()
    resumed = resume_session(str(ckpt))
    resume_seconds = time.perf_counter() - start
    assert resumed.hasher.hexdigest() == analyzer.hasher.hexdigest()
    checkpoint = {
        "events": n,
        "bytes": size,
        "write_seconds": round(write_seconds, 4),
        "resume_seconds": round(resume_seconds, 4),
        "resume_events_per_sec": round(n / resume_seconds, 1),
    }

    # The service must not be catastrophically slower than batch; the
    # streaming session historically lands within ~2-3x (per-event
    # dispatch + GC sweeps), sockets add modest constant cost per frame.
    batch_rate = rows[0]["events_per_sec"]
    inline_rate = rows[1]["events_per_sec"]
    assert inline_rate >= batch_rate / 10

    width = max(len(r["configuration"]) for r in rows)
    lines_out = [
        f"serve throughput — avrora scale={SCALE} seed={SEED}, "
        f"{n} events, chunks of {CHUNK_LINES}, gc_window={GC_WINDOW}, "
        f"best of {BEST_OF}",
        "",
        f"{'configuration':<{width}}  {'events':>7}  {'seconds':>8}  "
        f"{'events/s':>10}",
    ]
    for r in rows:
        lines_out.append(
            f"{r['configuration']:<{width}}  {r['events']:>7}  "
            f"{r['seconds']:>8.4f}  {r['events_per_sec']:>10.1f}")
    lines_out += [
        "",
        f"checkpoint: {checkpoint['bytes']} bytes for {n} events, "
        f"write {checkpoint['write_seconds']:.4f}s, "
        f"resume {checkpoint['resume_seconds']:.4f}s "
        f"({checkpoint['resume_events_per_sec']:.1f} events/s replay)",
    ]
    write_result("serve_throughput.txt", "\n".join(lines_out))
    write_json("BENCH_serve.json", {
        "workload": "avrora",
        "scale": SCALE,
        "seed": SEED,
        "events": n,
        "chunk_lines": CHUNK_LINES,
        "gc_window": GC_WINDOW,
        "best_of": BEST_OF,
        "rows": rows,
        "checkpoint": checkpoint,
    })

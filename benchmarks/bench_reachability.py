"""Microbenchmark — the reachability engine vs. per-query BFS.

VindicateRace's AddConstraints fixpoint issues bursts of
``ancestors`` / ``descendants`` / ``reaches`` queries over the constraint
graph between edge mutations (one burst per worklist edge per round).
The seed implementation answered every query with a fresh O(V+E) BFS;
:class:`~repro.graph.reachability.ReachabilityIndex` memoizes strict
per-node closures as bitsets and reuses them across the burst.

This benchmark replays that exact access pattern — repeated
window-restricted ``ancestors``/``descendants`` pairs plus ``reaches``
probes against the DC constraint graph of a real workload trace, with
periodic tagged-edge churn — and asserts the engine is at least 2×
faster than the BFS baseline (the acceptance bar for the engine;
typical observed speedups are far higher because a burst touches the
same region many times). Results land in
``benchmarks/results/reachability.txt``.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.dc import DCDetector
from repro.graph.reachability import ReachabilityIndex
from repro.obs.timing import best_of, measure
from repro.runtime import execute, fast_path_filter
from repro.runtime.workloads import WORKLOADS

from harness import write_result

#: Vindication-shaped load: per burst (one simulated race), a worklist
#: of edge endpoints is queried — race-region ancestors, per-edge
#: ancestor/descendant pairs, reaches probes — and the whole batch
#: repeats for several fixpoint ROUNDS (AddConstraints re-queries the
#: same regions every round until convergence); tagged-edge churn
#: separates bursts, as VindicateRace's add/remove does between races.
BURSTS = 40
ROUNDS = 6
WORKLIST = 8
REACHES_PER_ROUND = 24


@pytest.fixture(scope="module")
def dc_graph():
    trace = execute(WORKLOADS["xalan"](scale=1.0), seed=3)
    filtered, _ = fast_path_filter(trace)
    det = DCDetector(build_graph=True)
    det.analyze(filtered)
    return det.graph


def _workload_script(graph, seed=11):
    """A deterministic query/churn script over ``graph``: returns a list
    of ("query"/"reaches"/"add"/"remove", payload) steps."""
    rng = random.Random(seed)
    n = graph.num_events
    steps = []
    for _ in range(BURSTS):
        lo = rng.randrange(0, max(1, n - n // 4))
        hi = min(n - 1, lo + n // 3)
        window = (lo, hi)
        race = (rng.randrange(lo, hi + 1), rng.randrange(lo, hi + 1))
        worklist = [(rng.randrange(lo, hi + 1), rng.randrange(lo, hi + 1))
                    for _ in range(WORKLIST)]
        probes = [(rng.randrange(lo, hi + 1), rng.randrange(lo, hi + 1))
                  for _ in range(REACHES_PER_ROUND)]
        for _ in range(ROUNDS):
            # One AddConstraints round: the race region, then the same
            # worklist's ancestor/descendant pairs and reaches probes.
            steps.append(("ancestors", (list(race), window)))
            for src, snk in worklist:
                steps.append(("ancestors1", ([src], window)))
                steps.append(("descendants1", ([snk], window)))
            for probe in probes:
                steps.append(("reaches", probe))
        # Tagged-edge churn between races: VindicateRace adds the
        # race's temporary constraints and removes them afterwards.
        src, dst = rng.randrange(n), rng.randrange(n)
        if src != dst:
            steps.append(("add", (src, dst)))
            steps.append(("remove", (src, dst)))
    return steps


def _run_script(graph, steps, engine):
    """Execute the script with ``engine`` answering reachability queries
    (the graph itself for BFS, or a ReachabilityIndex)."""
    sink = 0
    for op, payload in steps:
        if op == "ancestors":
            roots, window = payload
            sink ^= len(engine.ancestors(roots, include_roots=True,
                                         within=window))
        elif op == "ancestors1":
            roots, window = payload
            sink ^= len(engine.ancestors(roots, include_roots=True,
                                         within=window))
        elif op == "descendants1":
            roots, window = payload
            sink ^= len(engine.descendants(roots, include_roots=True,
                                           within=window))
        elif op == "reaches":
            src, dst = payload
            sink ^= engine.reaches(src, dst)
        elif op == "add":
            added = graph.add_edge(*payload)
            sink ^= added
        elif op == "remove":
            graph.remove_edge(*payload)
    return sink


def test_reachability_engine_speedup(dc_graph):
    steps = _workload_script(dc_graph)

    # One measured warm-up run per engine captures the answer checksum
    # and the peak-RSS growth; best-of-3 then gives the time estimate
    # (repro.obs.timing — the paper's tables pair time with memory).
    bfs_run = measure(lambda: _run_script(dc_graph, steps, dc_graph))
    bfs_time = best_of(lambda: _run_script(dc_graph, steps, dc_graph))

    index = ReachabilityIndex(dc_graph)
    idx_run = measure(lambda: _run_script(dc_graph, steps, index))
    idx_time = best_of(
        lambda: _run_script(dc_graph, steps, ReachabilityIndex(dc_graph)))

    # Same answers (the script is deterministic and the churn round-trips).
    assert idx_run.result == bfs_run.result

    stats = index.stats()
    speedup = bfs_time / idx_time
    queries = sum(1 for op, _ in steps if op not in ("add", "remove"))
    lines = [
        "Reachability microbenchmark: AddConstraints-style query bursts "
        f"on a {dc_graph.num_events}-event, {dc_graph.edge_count}-edge "
        "xalan DC constraint graph",
        f"{queries} window-restricted queries, {BURSTS} tagged-edge "
        "add/remove churn points",
        "",
        f"{'engine':34s} | {'time (ms)':>10s} | {'speedup':>8s} | "
        f"{'peak-RSS +kB':>12s}",
        "-" * 75,
        f"{'per-query BFS (seed)':34s} | {bfs_time * 1e3:10.1f} | "
        f"{'1.0x':>8s} | {bfs_run.peak_rss_delta_kb:12d}",
        f"{'ReachabilityIndex (bitset cache)':34s} | {idx_time * 1e3:10.1f} | "
        f"{speedup:7.1f}x | {idx_run.peak_rss_delta_kb:12d}",
        "",
        "peak-RSS deltas are high-water-mark growth during the first "
        "measured run of each engine (BFS runs first)",
        f"cache: {stats['reach_hits']} hits, {stats['reach_misses']} misses, "
        f"{stats['reach_invalidations']} invalidations "
        "(one scripted run)",
    ]
    write_result("reachability.txt", "\n".join(lines))
    assert speedup >= 2.0, (
        f"ReachabilityIndex only {speedup:.2f}x faster than per-query BFS")


def test_vindication_end_to_end_uses_index(dc_graph):
    """Sanity: the pipeline surfaces engine counters on the DC report."""
    from repro.traces.litmus import figure2
    from repro.vindicate.vindicator import Vindicator
    report = Vindicator().run(figure2())
    assert report.dc.counters.get("reach_misses", 0) > 0

"""Pytest fixtures for the benchmark harness (see harness.py)."""

from typing import Dict

import pytest

from harness import WorkloadRun, run_workload
from repro.runtime.workloads import WORKLOADS


@pytest.fixture(scope="session")
def workload_runs() -> Dict[str, WorkloadRun]:
    """All workloads × trials, analysed end to end (computed once)."""
    return {name: run_workload(name) for name in WORKLOADS}

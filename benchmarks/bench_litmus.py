"""Experiment E7 — the paper's litmus executions, end to end.

Checks that each litmus execution (Figures 1–4 and the Appendix C
reconstructions) produces exactly the qualitative result the paper
describes, and benchmarks vindication on each.
"""

import pytest

from repro.analysis.races import RaceClass
from repro.vindicate.vindicator import Verdict, Vindicator
from repro.traces import litmus

from harness import write_result

#: name -> (transitive_force, expected per-analysis dynamic counts,
#:          expected verdict multiset of vindicate-all)
EXPECTATIONS = {
    "figure1": (True, (0, 1, 1), {Verdict.RACE: 1}),
    "figure2": (True, (0, 0, 1), {Verdict.RACE: 1}),
    "figure3": (True, (1, 1, 2), {Verdict.RACE: 2}),
    "retry_case": (True, (2, 2, 3), {Verdict.RACE: 3}),
    "figure4a": (False, (3, 3, 3), {Verdict.RACE: 2, Verdict.NO_RACE: 1}),
    "figure4b": (False, (3, 3, 3), {Verdict.RACE: 2, Verdict.NO_RACE: 1}),
    "appendix_c_greedy": (True, (3, 3, 3), {Verdict.RACE: 3}),
    "appendix_c_incomplete": (True, (3, 3, 3),
                              {Verdict.RACE: 2, Verdict.UNKNOWN: 1}),
    "wcp_deadlock": (True, (0, 1, 1), {Verdict.NO_RACE: 1}),
}


def run_litmus(name):
    transitive, _, _ = EXPECTATIONS[name]
    trace = litmus.ALL[name]()
    vindicator = Vindicator(vindicate_all=True, transitive_force=transitive)
    return vindicator.run(trace)


@pytest.mark.parametrize("name", sorted(EXPECTATIONS))
def test_litmus(name, benchmark):
    transitive, counts, verdicts = EXPECTATIONS[name]
    report = run_litmus(name)
    assert (report.hb.dynamic_count, report.wcp.dynamic_count,
            report.dc.dynamic_count) == counts, name
    observed = {}
    for v in report.vindications:
        observed[v.verdict] = observed.get(v.verdict, 0) + 1
    assert observed == verdicts, name
    benchmark(lambda: run_litmus(name))


def test_litmus_summary(benchmark):
    lines = ["Litmus executions (paper figures) — who detects what:",
             f"{'trace':18s} | {'HB':>3s} {'WCP':>4s} {'DC':>3s} | verdicts"]
    for name in sorted(EXPECTATIONS):
        report = run_litmus(name)
        verdicts = ", ".join(str(v.verdict) for v in report.vindications)
        lines.append(f"{name:18s} | {report.hb.dynamic_count:3d} "
                     f"{report.wcp.dynamic_count:4d} "
                     f"{report.dc.dynamic_count:3d} | {verdicts}")
    write_result("litmus.txt", "\n".join(lines))
    benchmark(lambda: run_litmus("figure2"))

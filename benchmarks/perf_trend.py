"""Aggregate every ``BENCH_*.json`` into one speedup-trajectory table.

Each floored benchmark writes a machine-readable ``BENCH_<name>.json``
next to its human-readable table (see ``harness.write_json``).  This
script folds them into a single trajectory view — the chain of wins
from the pure-Python reference detectors to the composed
``--batch --kernels compiled`` path:

    reference → epoch fast paths (smarttrack) → batch interpreter
              → compiled kernels → sync-op fusion → composite

so one artifact answers "where does the ≥10× come from, and how much
headroom is left above each floor".  CI's ``kernels-perf`` job runs it
after the benches and uploads ``perf_trend.txt`` / ``perf_trend.json``
alongside the per-bench results.

Usage::

    python perf_trend.py [--results-dir results]

Reporting-only: floors are *asserted* by the benches themselves; here
a below-floor row is flagged in the table but does not fail the run,
so a partial results directory (e.g. numpy-less checkout) still
produces a trajectory for the rows it has.
"""

from __future__ import annotations

import argparse
import json
import pathlib
from typing import Any, Dict, List, Optional

#: Trajectory order: the chain of wins, reference detectors first.
#: Files not listed here sort after these, alphabetically.
TRAJECTORY = [
    "BENCH_smarttrack.json",    # reference → epoch/ownership fast paths
    "BENCH_batch.json",         # epoch → batch interpreter (numpy)
    "BENCH_kernels.json",       # python → compiled kernel backend
    "BENCH_kernels_sync.json",  # access-only → fused sync-op kernels
    "BENCH_composite.json",     # reference → batch × compiled, composed
]

#: Row lists worth surfacing, with a qualifier for the second leg.
ROW_KEYS = [("rows", ""), ("filtered_rows", " [filtered]")]


def _throughputs(row: Dict[str, Any]) -> List[str]:
    """The two ``*_events_per_sec`` columns, baseline first (the
    benches all name the baseline column first in insertion order,
    but JSON sorts keys — recover the pair by the ``speedup`` ratio)."""
    pairs = sorted((k, v) for k, v in row.items()
                   if k.endswith("_events_per_sec"))
    if len(pairs) != 2:
        return [k.replace("_events_per_sec", "") for k, _ in pairs]
    (ka, va), (kb, vb) = pairs
    if va > vb:  # baseline is the slower side
        (ka, va), (kb, vb) = (kb, vb), (ka, va)
    return [f"{ka.replace('_events_per_sec', '')}={va:,.0f}",
            f"{kb.replace('_events_per_sec', '')}={vb:,.0f}"]


def collect(results_dir: pathlib.Path) -> List[Dict[str, Any]]:
    """Flatten every speedup row of every ``BENCH_*.json`` found."""
    order = {name: i for i, name in enumerate(TRAJECTORY)}
    files = sorted(results_dir.glob("BENCH_*.json"),
                   key=lambda p: (order.get(p.name, len(order)), p.name))
    flat: List[Dict[str, Any]] = []
    for path in files:
        doc = json.loads(path.read_text(encoding="utf-8"))
        stage = path.stem.replace("BENCH_", "")
        for key, qualifier in ROW_KEYS:
            for row in doc.get(key, []):
                if "speedup" not in row:
                    continue  # throughput-only tables (serve, table4)
                floor: Optional[float] = row.get("floor")
                flat.append({
                    "stage": stage + qualifier,
                    "configuration": row.get("configuration", "?"),
                    "speedup": row["speedup"],
                    "floor": floor,
                    "margin": (round(row["speedup"] - floor, 3)
                               if floor is not None else None),
                    "throughput": _throughputs(row),
                    "source": path.name,
                })
    return flat


def render(rows: List[Dict[str, Any]]) -> str:
    lines = ["Speedup trajectory (every floored bench, one table)",
             f"{'stage':22s} | {'configuration':22s} | {'speedup':>8s} | "
             f"{'floor':>6s} | {'margin':>7s}",
             "-" * 78]
    for r in rows:
        floor = f"{r['floor']:5.2f}x" if r["floor"] is not None else "     -"
        margin = (f"{r['margin']:+6.2f}x" if r["margin"] is not None
                  else "      -")
        flag = "  << below floor" if (
            r["floor"] is not None and r["speedup"] < r["floor"]) else ""
        lines.append(f"{r['stage']:22s} | {r['configuration']:22s} | "
                     f"{r['speedup']:7.2f}x | {floor} | {margin}{flag}")
    if not rows:
        lines.append("(no BENCH_*.json with speedup rows found)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir", type=pathlib.Path,
        default=pathlib.Path(__file__).parent / "results",
        help="directory holding BENCH_*.json (default: ./results)")
    args = parser.parse_args(argv)

    rows = collect(args.results_dir)
    table = render(rows)
    args.results_dir.mkdir(exist_ok=True)
    (args.results_dir / "perf_trend.txt").write_text(
        table + "\n", encoding="utf-8")
    (args.results_dir / "perf_trend.json").write_text(
        json.dumps({"rows": rows}, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(table)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

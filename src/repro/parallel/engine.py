"""Parent-process orchestration for the parallel pipeline.

Two phases, two pools:

* **Analysis** — the HB, WCP, and DC detectors run concurrently, one
  task each, over a :class:`~repro.traces.packed.PackedTrace` shipped to
  each worker once by the pool initializer. The DC task also returns the
  constraint graph as flat CSR arrays plus pre-warmed reachability
  closures.
* **Vindication** — the classified races fan out as deterministic
  contiguous chunks of ``(position, race)`` pairs; every worker rebuilds
  the same pristine graph from the CSR arrays, so each race's verdict is
  a pure function of the race itself and the merge just sorts by
  position.

Determinism: results are merged in *fixed* order (analysis: hb, wcp, dc;
vindication: ascending race position; observability payloads: task
submission order), never completion order, so reports are bit-identical
to the serial path regardless of worker count or scheduling — the only
intentional differences are worker-count metadata and the reachability
cache counters, which depend on how the work was partitioned (see
``docs/PARALLEL.md``).

The pool uses the ``fork`` start method when the platform offers it
(cheap, inherits the imported modules) and falls back to ``spawn``;
worker functions live in :mod:`repro.parallel.workers` as module-level
callables so both methods can pickle them by reference.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro import obs
from repro.analysis import variants
from repro.analysis.races import DynamicRace, RaceReport
from repro.core import kernels
from repro.core.events import Target
from repro.core.trace import Trace
from repro.traces.packed import PackedTrace, pack
from repro.parallel import workers

#: Target chunks per worker in the vindication fan-out: more than one so
#: an unlucky worker that drew the slowest races does not serialise the
#: tail, bounded so per-chunk dispatch overhead stays negligible.
CHUNKS_PER_WORKER = 4


def pool_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context used by both pools."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def partition(count: int, jobs: int) -> List[Tuple[int, int]]:
    """Deterministic contiguous chunking of ``range(count)``.

    Returns ``(start, stop)`` half-open ranges — a pure function of
    ``(count, jobs)``, independent of worker scheduling. The first
    ``count % chunks`` chunks are one element longer.
    """
    if count <= 0:
        return []
    chunks = max(1, min(count, jobs * CHUNKS_PER_WORKER))
    base, extra = divmod(count, chunks)
    bounds = []
    start = 0
    for i in range(chunks):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


@dataclass
class AnalysisResult:
    """Merged output of the concurrent analysis phase."""

    hb: RaceReport
    wcp: RaceReport
    dc: RaceReport
    hb_racing_at: Dict[int, frozenset]
    wcp_racing_at: Dict[int, frozenset]
    #: The DC constraint graph as ``(offsets, targets)`` CSR arrays.
    graph_arrays: Tuple[Any, Any] = (None, None)
    #: ``ConstraintGraph.stats()`` of the DC graph.
    graph_stats: Dict[str, int] = field(default_factory=dict)
    #: Pre-warmed reachability closures (``ReachabilityIndex.export_state``).
    index_state: Dict[str, Dict[int, int]] = field(default_factory=dict)


def run_analysis(trace: Trace, *, jobs: int, transitive_force: bool,
                 prefilter: Optional[FrozenSet[Target]],
                 variant: "str | variants.VariantSpec" = "reference",
                 ) -> AnalysisResult:
    """Run the three detectors concurrently over ``trace``.

    Results merge in the fixed order hb, wcp, dc; with observability on,
    each worker's metrics snapshot is merged and its span trees are
    grafted under the currently open span in that same order.
    ``variant`` is a name or a :class:`~repro.analysis.variants
    .VariantSpec`: ``"fast"`` runs the epoch/dense-kernel WCP and DC
    detectors (:mod:`repro.analysis.smarttrack`), ``"batch"`` the
    vectorized interpreter — both verdict-identical. A spec's kernel
    backend is applied here and shipped resolved to every worker, so
    the pool never mixes kernel implementations.
    """
    spec = variants.coerce(variant)
    spec.apply()
    packed = pack(trace)
    obs_on = obs.enabled()
    with ProcessPoolExecutor(
            max_workers=min(3, jobs), mp_context=pool_context(),
            initializer=workers.init_analysis,
            initargs=(packed, transitive_force, prefilter, obs_on,
                      spec.variant, kernels.active_backend())) as pool:
        futures = [pool.submit(workers.run_detector, which)
                   for which in ("hb", "wcp", "dc")]
        payloads = [f.result() for f in futures]
    _merge_obs(payloads)
    hb, wcp, dc = payloads
    return AnalysisResult(
        hb=hb["report"], wcp=wcp["report"], dc=dc["report"],
        hb_racing_at=hb["racing_at"], wcp_racing_at=wcp["racing_at"],
        graph_arrays=dc["graph_arrays"], graph_stats=dc["graph_stats"],
        index_state=dc["index_state"])


def run_vindication(trace: Trace, analysis: AnalysisResult,
                    races: List[Tuple[int, DynamicRace]], *, jobs: int,
                    policy: str, check: bool, use_window: bool,
                    ) -> Tuple[List[Any], Dict[str, int]]:
    """Fan ``(position, race)`` pairs out over a worker pool.

    Returns the vindications sorted by position — bit-identical to the
    serial loop's output order — plus the summed reachability-index
    counter deltas from all workers.
    """
    if not races:
        return [], {}
    packed = pack(trace)
    obs_on = obs.enabled()
    with ProcessPoolExecutor(
            max_workers=min(jobs, len(races)), mp_context=pool_context(),
            initializer=workers.init_vindication,
            initargs=(packed, analysis.graph_arrays, analysis.index_state,
                      policy, check, use_window, obs_on,
                      kernels.active_backend())) as pool:
        futures = [pool.submit(workers.vindicate_chunk, races[start:stop])
                   for start, stop in partition(len(races), jobs)]
        payloads = [f.result() for f in futures]
    _merge_obs(payloads)
    indexed: List[Tuple[int, Any]] = []
    index_stats: Dict[str, int] = {}
    for payload in payloads:
        indexed.extend(payload["results"])
        for key, delta in payload["index_stats"].items():
            index_stats[key] = index_stats.get(key, 0) + delta
    indexed.sort(key=lambda item: item[0])
    return [vindication for _, vindication in indexed], index_stats


def _merge_obs(payloads: List[Dict[str, Any]]) -> None:
    """Merge worker observability payloads in task order (deterministic
    regardless of completion order): metric snapshots fold into the
    parent registry, span trees graft under the open parent span."""
    registry = obs.metrics()
    tracer = obs.tracer()
    for payload in payloads:
        worker_obs = payload.get("obs")
        if not worker_obs:
            continue
        registry.merge_snapshot(worker_obs["metrics"])
        tracer.graft(worker_obs["spans"])

"""``repro.parallel`` — process-parallel analysis & vindication engine.

The paper's pipeline has two embarrassingly parallel phases: the HB,
WCP, and DC detectors share nothing but the read-only trace (Section
6.1 runs them simultaneously), and each VindicateRace call takes only
``(race, G)`` (Section 6.2 vindicates offline). This package fans both
out over a process pool while keeping every report **bit-identical** to
the serial path:

* :func:`repro.parallel.engine.run_analysis` — one worker per detector
  over a shared :class:`~repro.traces.packed.PackedTrace`;
* :func:`repro.parallel.engine.run_vindication` — DC-races fan out in
  deterministic chunks against a constraint graph rebuilt once per
  worker from CSR arrays, merged back in race order.

Entry point: ``Vindicator(jobs=N)`` (or ``--jobs N`` on the CLI); the
default ``jobs=1`` keeps the serial path byte-for-byte untouched. See
``docs/PARALLEL.md`` for the architecture and determinism argument.
"""

from repro.parallel.engine import (
    AnalysisResult,
    partition,
    pool_context,
    run_analysis,
    run_vindication,
)

__all__ = [
    "AnalysisResult",
    "partition",
    "pool_context",
    "run_analysis",
    "run_vindication",
]

"""Worker-process side of the parallel engine.

Each pool worker is primed once by an initializer that unpacks the
shared :class:`~repro.traces.packed.PackedTrace` (and, for vindication
workers, rebuilds the DC constraint graph from its CSR arrays and warms
a :class:`~repro.graph.reachability.ReachabilityIndex` from the exported
closure state) into module globals. Tasks then reference that state by
name instead of re-shipping it per call — the trace and graph cross the
process boundary exactly once per pool.

Observability: with the ``fork`` start method workers inherit the
parent's live registry/tracer objects, which must not be double-counted,
so every initializer starts with ``obs.disable()``. When the parent runs
with observability on, each *task* opens a fresh registry/tracer, runs,
and returns ``{"metrics": snapshot, "spans": span dicts}`` for the
parent to merge (:meth:`MetricsRegistry.merge_snapshot`) and graft
(:meth:`Tracer.graft`) deterministically in task order.

All functions here are module-level so they pickle by reference under
both ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro import obs
from repro.analysis.races import DynamicRace
from repro.analysis.variants import make_analysis_detector
from repro.core import kernels
from repro.core.events import Target
from repro.core.trace import Trace
from repro.graph.constraint_graph import ConstraintGraph
from repro.graph.reachability import ReachabilityIndex
from repro.traces.packed import PackedTrace

#: Per-process state installed by the pool initializers.
_STATE: Dict[str, Any] = {}


def _obs_begin(enabled: bool) -> None:
    if enabled:
        obs.enable(sample_memory=False)


def _obs_payload(enabled: bool) -> Optional[Dict[str, object]]:
    if not enabled:
        return None
    payload = {
        "metrics": obs.metrics().snapshot(),
        "spans": obs.tracer().to_dicts(),
    }
    obs.disable()
    return payload


# ----------------------------------------------------------------------
# Analysis pool
# ----------------------------------------------------------------------
def init_analysis(packed: PackedTrace, transitive_force: bool,
                  prefilter: Optional[FrozenSet[Target]],
                  obs_on: bool, variant: str = "reference",
                  kernels_backend: str = "auto") -> None:
    """Pool initializer: unpack the trace once per worker process."""
    obs.disable()
    # Under `spawn` the worker imports repro fresh and would re-resolve
    # the env default; re-apply the parent's *resolved* backend so a
    # pool never silently mixes kernel implementations.
    kernels.set_backend(kernels_backend)
    _STATE.clear()
    _STATE["packed"] = packed
    _STATE["trace"] = packed.unpack()
    _STATE["transitive_force"] = transitive_force
    _STATE["prefilter"] = prefilter
    _STATE["obs_on"] = obs_on
    _STATE["variant"] = variant


def run_detector(which: str) -> Dict[str, Any]:
    """Run one detector (``"hb"``, ``"wcp"``, or ``"dc"``) over the
    worker's trace and return its picklable results.

    The DC payload additionally carries the constraint graph as CSR
    arrays, the graph's structure counters, and the exported closure
    state of a reachability index pre-warmed with one backward region
    pass over the union of the race regions — exactly the ancestors
    AddConstraints starts from.
    """
    trace: Trace = _STATE["trace"]
    obs_on: bool = _STATE["obs_on"]
    variant = _STATE.get("variant", "reference")
    _obs_begin(obs_on)
    if variant == "batch" and which in ("wcp", "dc"):
        # Reuse the pool's packed encoding instead of re-packing.
        from repro.analysis.batch import seed_packed
        seed_packed(trace, _STATE["packed"])
    # HB always runs the reference detector (the factory enforces it):
    # FastTrack's racing_at is not equivalent, and HB is not the
    # pipeline bottleneck.
    detector: Any = make_analysis_detector(which, variant,
                                           prefilter=_STATE["prefilter"])
    detector.transitive_force = _STATE["transitive_force"]
    report = detector.analyze(trace)
    payload: Dict[str, Any] = {
        "which": which,
        "report": report,
        "racing_at": dict(detector.racing_at),
    }
    if which == "dc":
        offsets, targets = detector.graph.to_arrays()
        payload["graph_arrays"] = (offsets, targets)
        payload["graph_stats"] = detector.graph.stats()
        index = ReachabilityIndex(detector.graph)
        if report.races:
            index.ancestors_mask([r.second.eid for r in report.races])
        payload["index_state"] = index.export_state()
    payload["obs"] = _obs_payload(obs_on)
    return payload


# ----------------------------------------------------------------------
# Vindication pool
# ----------------------------------------------------------------------
def init_vindication(packed: PackedTrace,
                     graph_arrays: Tuple[Any, Any],
                     index_state: Optional[Dict[str, Dict[int, int]]],
                     policy: str, check: bool, use_window: bool,
                     obs_on: bool, kernels_backend: str = "auto") -> None:
    """Pool initializer: unpack the trace, rebuild the DC graph from its
    CSR arrays, and warm a shared reachability index — once per worker."""
    obs.disable()
    kernels.set_backend(kernels_backend)
    _STATE.clear()
    graph = ConstraintGraph.from_arrays(*graph_arrays)
    index = ReachabilityIndex(graph)
    if index_state:
        index.import_state(index_state)
    _STATE["trace"] = packed.unpack()
    _STATE["graph"] = graph
    _STATE["index"] = index
    _STATE["policy"] = policy
    _STATE["check"] = check
    _STATE["use_window"] = use_window
    _STATE["obs_on"] = obs_on


def vindicate_chunk(chunk: List[Tuple[int, DynamicRace]]) -> Dict[str, Any]:
    """Vindicate a chunk of ``(position, race)`` pairs against the
    worker's graph; positions index the parent's classified race list so
    the merge is order-independent.

    Each race sees the pristine DC graph — :func:`vindicate_race`
    removes every edge it adds — so the verdict depends only on
    ``(graph, trace, race, policy)``, never on which worker ran it or
    what ran before (the engine's determinism argument). The reachability
    index's counter deltas are returned so the parent can reconstitute
    the serial report's cache counters by summation.
    """
    # Imported here: repro.vindicate imports neither this module nor
    # repro.parallel, keeping the package dependency graph acyclic.
    from repro.vindicate.vindicator import vindicate_race

    obs_on: bool = _STATE["obs_on"]
    _obs_begin(obs_on)
    index: ReachabilityIndex = _STATE["index"]
    before = index.stats()
    results = []
    for pos, race in chunk:
        vindication = vindicate_race(
            _STATE["graph"], _STATE["trace"], race,
            policy=_STATE["policy"], check=_STATE["check"],
            use_window=_STATE["use_window"], index=index)
        results.append((pos, vindication))
    after = index.stats()
    return {
        "results": results,
        "index_stats": {key: after[key] - before[key] for key in after},
        "obs": _obs_payload(obs_on),
    }

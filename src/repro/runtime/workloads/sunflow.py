"""sunflow-analog workload: a multi-threaded ray tracer.

DaCapo's sunflow renders a scene with bucket workers. The paper reports
2 statically distinct races with 8–14 dynamic instances (Table 1; DC
adds dynamic instances but no new static sites). The analog's workers
render buckets from a locked queue; two shared display fields — the
image's dirty-region bounds and the sample counter — are updated
racily a few times per worker.
"""

from __future__ import annotations

from typing import Iterator

from repro.runtime.program import Op, Program, ops
from repro.runtime.workloads import patterns

RACY_SITES = [
    ("sunflow.dirtyBounds", "Display.imageUpdate():174", "Display.repaint():188"),
    ("sunflow.sampleCount", "ImageSampler.stats():231", "UserInterface.print():66"),
]


def _bucket_worker(index: int, buckets: int) -> Iterator[Op]:
    ns = f"sunflow.worker{index}"
    for b in range(buckets):
        yield from patterns.locked_counter(
            "sunflow.bucketLock", "sunflow.nextBucket", "BucketOrder.next():83")
        yield from patterns.local_work(ns, 6)
        if b % 3 == 0:
            var, wloc, rloc = RACY_SITES[(index + b) % len(RACY_SITES)]
            if index % 2 == 0:
                yield ops.wr(var, loc=wloc)
            else:
                yield ops.rd(var, loc=rloc)


def program(scale: float = 1.0) -> Program:
    """Build the sunflow-analog program."""
    workers = 4
    buckets = max(3, int(24 * scale))

    def main() -> Iterator[Op]:
        yield ops.wr("sunflow.scene", loc="SunflowAPI.build():90")
        yield ops.vwr("sunflow.sceneReady", loc="SunflowAPI.render():101")
        for i in range(workers):
            yield ops.fork(f"worker{i}", lambda i=i: _render_body(i, buckets))
        for i in range(workers):
            yield ops.join(f"worker{i}")

    def _render_body(i: int, buckets: int) -> Iterator[Op]:
        yield ops.vrd("sunflow.sceneReady", loc="RenderThread.run():22")
        yield ops.rd("sunflow.scene", loc="RenderThread.run():23")
        yield from _bucket_worker(i, buckets)

    return Program(name="sunflow", main=main)

"""lusearch-analog workload: a Lucene-style parallel query engine.

DaCapo's lusearch runs keyword queries against an index with a pool of
worker threads. The paper reports zero races (Table 1): each worker owns
its searcher state, queries are distributed under a lock, and results
are merged under a lock. This analog mirrors that structure and must
stay race-free.
"""

from __future__ import annotations

from typing import Iterator

from repro.runtime.program import Op, Program, ops
from repro.runtime.workloads import patterns


def _searcher(index: int, queries: int) -> Iterator[Op]:
    ns = f"lusearch.worker{index}"
    yield ops.vrd("lusearch.indexReady", loc="Searcher.open():40")
    yield ops.rd("lusearch.index", loc="Searcher.open():41")
    for q in range(queries):
        yield from patterns.locked_counter(
            "lusearch.queueLock", "lusearch.nextQuery", "QueryQueue.take():66")
        yield from patterns.local_work(ns, 6)
        yield from patterns.locked_counter(
            "lusearch.resultLock", "lusearch.totalHits", "HitCollector.merge():92")


def program(scale: float = 1.0) -> Program:
    """Build the lusearch-analog program (race-free by design)."""
    workers = 4
    queries = max(3, int(25 * scale))

    def main() -> Iterator[Op]:
        yield ops.wr("lusearch.index", loc="Main.loadIndex():28")
        yield ops.vwr("lusearch.indexReady", loc="Main.loadIndex():30")
        for i in range(workers):
            yield ops.fork(f"worker{i}", lambda i=i: _searcher(i, queries))
        for i in range(workers):
            yield ops.join(f"worker{i}")
        yield ops.rd("lusearch.totalHits", loc="Main.report():55")

    return Program(name="lusearch", main=main)

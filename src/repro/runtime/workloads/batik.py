"""batik-analog workload: an SVG rasteriser with tile workers.

DaCapo's batik renders SVG documents. The paper reports zero races for
it (Table 1), so this analog is deliberately *well synchronised*: tiles
are handed out under a lock, per-tile pixel state is thread-private, and
the finished-tile count is lock-protected. The workload exists to show
the detectors staying silent on a correctly synchronised program of
realistic shape.
"""

from __future__ import annotations

from typing import Iterator

from repro.runtime.program import Op, Program, ops
from repro.runtime.workloads import patterns


def _tile_worker(index: int, tiles: int) -> Iterator[Op]:
    ns = f"batik.worker{index}"
    for t in range(tiles):
        # Claim a tile under the queue lock.
        yield from patterns.locked_counter(
            "batik.queueLock", "batik.nextTile", "TileScheduler.next():59")
        # Rasterise into private buffers.
        yield from patterns.local_work(ns, 5)
        # Publish the finished count under the stats lock.
        yield from patterns.locked_counter(
            "batik.statsLock", "batik.finishedTiles", "Renderer.done():142")


def program(scale: float = 1.0) -> Program:
    """Build the batik-analog program (race-free by design)."""
    workers = 4
    tiles = max(3, int(25 * scale))

    def main() -> Iterator[Op]:
        yield ops.wr("batik.document", loc="Main.load():31")
        yield ops.vwr("batik.ready", loc="Main.start():35")
        for i in range(workers):
            yield ops.fork(f"worker{i}", lambda i=i: _worker_body(i, tiles))
        for i in range(workers):
            yield ops.join(f"worker{i}")
        yield ops.rd("batik.finishedTiles", loc="Main.report():50")

    def _worker_body(i: int, tiles: int) -> Iterator[Op]:
        yield ops.vrd("batik.ready", loc="Worker.run():20")
        yield ops.rd("batik.document", loc="Worker.run():21")
        yield from _tile_worker(i, tiles)

    return Program(name="batik", main=main)

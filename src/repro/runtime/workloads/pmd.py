"""pmd-analog workload: a static source-code analyser with file workers.

DaCapo's pmd analyses Java sources against rulesets. The paper reports
4 HB/WCP static races and a fifth DC-only one (Table 1: 4→4→5; Table 2
lists two pmd DC-only candidates, ``PMD.getSourceTypeOfFile():152 /
PMD.<init>():57`` and ``setExcludeMarker():234 / processFile():96``).

The analog's worker pool takes files from a locked queue and applies
rules. Its racy population: four plain HB-racy configuration/statistics
fields, plus a DC-only pair built like Figure 2 — the constructor's
configuration write escapes before a lock-protected registration that
reaches a late worker through an unrelated queue-lock hand-off.
"""

from __future__ import annotations

from typing import Iterator

from repro.runtime.program import Op, Program, ops
from repro.runtime.workloads import patterns

RACY_SITES = [
    ("pmd.report.size", "Report.addViolation():130", "Report.size():141"),
    ("pmd.ruleContext", "RuleContext.set():63", "RuleContext.get():70"),
    ("pmd.fileCount", "PMD.processFile():96", "PMD.progress():101"),
    ("pmd.violations", "Rule.apply():220", "Renderer.render():88"),
]


def _worker(index: int, files: int) -> Iterator[Op]:
    ns = f"pmd.worker{index}"
    for f in range(files):
        yield from patterns.locked_counter(
            "pmd.queueLock", "pmd.nextFile", "FileQueue.take():49")
        yield from patterns.local_work(ns, 4)
        for k in range(2):
            site = (index + f + k) % len(RACY_SITES)
            var, wloc, rloc = RACY_SITES[site]
            if site % 4 == index % 4:
                yield ops.wr(var, loc=wloc)
            else:
                yield ops.rd(var, loc=rloc)


def _config_relay(files: int) -> Iterator[Op]:
    """Consumes the registered source-type table under the config lock,
    then passes through the marker lock (Figure 2's relay)."""
    yield from patterns.local_work("pmd.relay", 3)
    yield from patterns.publication_relay(
        "pmd.configLock", "pmd.sourceTypeTable", "pmd.markerLock",
        loc="PMD.getSourceTypeOfFile():152")
    yield from patterns.local_work("pmd.relay", 2 * files)


def _late_worker(files: int) -> Iterator[Op]:
    """Reads the escaped configuration long after construction — the
    DC-only race with ``PMD.<init>()``'s escaping write."""
    yield from patterns.local_work("pmd.lateWorker", 3 * files)
    yield from patterns.publication_sink(
        "pmd.markerLock", "pmd.sourceType", loc="PMD.getSourceTypeOfFile():152")


def program(scale: float = 1.0) -> Program:
    """Build the pmd-analog program."""
    workers = 4
    files = max(3, int(20 * scale))

    def main() -> Iterator[Op]:
        for i in range(workers):
            yield ops.fork(f"worker{i}", lambda i=i: _worker(i, files))
        yield ops.fork("relay", lambda: _config_relay(files))
        yield ops.fork("lateWorker", lambda: _late_worker(files))
        # PMD.<init>: the configuration escapes before registration. This
        # must come *after* the forks — a fork edge would order the
        # escaping write before every child event and erase the race.
        yield from patterns.publication_escape(
            "pmd.configLock", "pmd.sourceType", "pmd.sourceTypeTable",
            loc="PMD.<init>():57")
        for i in range(workers):
            yield ops.join(f"worker{i}")
        yield ops.join("relay")
        yield ops.join("lateWorker")

    return Program(name="pmd", main=main)

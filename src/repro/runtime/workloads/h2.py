"""h2-analog workload: an embedded SQL database under transaction load.

DaCapo's h2 runs TPC-C-style transactions against the H2 database. The
paper reports 10–11 statically distinct races (Table 1) with hundreds of
dynamic instances, and crucially its two *DC-only* races live in H2's
``StringCache`` (Table 2: ``StringCache.getNew():93 / get():48`` and
``getNew():83 / get():54``) with event distances up to ~250k.

This analog runs client threads executing transactions against a
row-locked table. The racy population:

* ten plain HB-racy statistics/bookkeeping fields, touched throughout;
* a StringCache analog whose entries escape before publication and are
  read by a client that arrives through an unrelated lock hand-off —
  Figure 2's shape, giving DC-only races whose event distance grows
  with the transaction count between escape and read.
"""

from __future__ import annotations

from typing import Iterator

from repro.runtime.program import Op, Program, ops
from repro.runtime.workloads import patterns

#: Plain HB-racy bookkeeping sites (10, matching Table 1's HB count).
RACY_SITES = [
    ("h2.session.openCount", "Session.open():71", "Session.monitor():402"),
    ("h2.page.dirty", "PageStore.markDirty():233", "PageStore.flush():260"),
    ("h2.cache.hits", "CacheLRU.hit():118", "CacheLRU.stats():139"),
    ("h2.cache.size", "CacheLRU.put():97", "CacheLRU.stats():141"),
    ("h2.tx.lastId", "Transaction.begin():55", "Transaction.log():88"),
    ("h2.lob.bytes", "LobStorage.add():310", "LobStorage.usage():325"),
    ("h2.net.packets", "Transfer.send():64", "Transfer.stats():92"),
    ("h2.index.depth", "BTreeIndex.split():505", "BTreeIndex.info():540"),
    ("h2.result.rows", "ResultSet.add():150", "ResultSet.size():166"),
    ("h2.sched.queue", "Scheduler.offer():44", "Scheduler.peek():58"),
]


def _client(index: int, transactions: int, clients: int) -> Iterator[Op]:
    ns = f"h2.client{index}"
    for t in range(transactions):
        # Row-locked update: correct.
        row_lock = f"h2.rowLock{(index + t) % 4}"
        yield ops.acq(row_lock)
        yield ops.rd(f"h2.row{(index + t) % 4}", loc="Table.get():210")
        yield ops.wr(f"h2.row{(index + t) % 4}", loc="Table.set():214")
        yield ops.rel(row_lock)
        # Racy bookkeeping: two sites per transaction.
        var, wloc, rloc = RACY_SITES[(index + t) % len(RACY_SITES)]
        if (index + t) % 2 == 0:
            yield ops.wr(var, loc=wloc)
        else:
            yield ops.rd(var, loc=rloc)
        var, wloc, rloc = RACY_SITES[(index + 3 * t) % len(RACY_SITES)]
        yield ops.rd(var, loc=rloc)
        yield from patterns.local_work(ns, 3)


def _flush_writer(spacing: int) -> Iterator[Op]:
    """WCP-only site: the flusher writes the checkpoint id, then runs an
    unrelated critical section on the flush lock (Figure 1's shape)."""
    yield from patterns.local_work("h2.flusher", 2)
    yield from patterns.sync_separated_write(
        "h2.flushLock", "h2.checkpointId", "h2.flushState",
        loc="PageStore.checkpoint():610")
    yield from patterns.local_work("h2.flusher", spacing)


def _flush_reader(spacing: int) -> Iterator[Op]:
    yield from patterns.local_work("h2.flushReader", spacing)
    yield from patterns.sync_separated_read(
        "h2.flushLock", "h2.checkpointId", "h2.flushReaderState",
        loc="PageStore.getCheckpoint():640")


def _string_cache_writer(entries: int) -> Iterator[Op]:
    """StringCache analog, producer side: each entry escapes before its
    publication under the cache lock (``getNew`` caches a string the
    caller already holds)."""
    for entry in range(entries):
        yield from patterns.publication_escape(
            "h2.cacheLock", f"h2.stringCache.entry{entry}",
            f"h2.stringCache.slot{entry}",
            loc="StringCache.getNew():93")
        yield from patterns.local_work("h2.cacheWriter", 4)


def _string_cache_relay(entries: int) -> Iterator[Op]:
    for entry in range(entries):
        yield from patterns.publication_relay(
            "h2.cacheLock", f"h2.stringCache.slot{entry}",
            "h2.compactLock", loc="StringCache.get():48")
        yield from patterns.local_work("h2.cacheRelay", 3)


def _string_cache_reader(entries: int, spacing: int) -> Iterator[Op]:
    """Reader side (``get``): arrives via the compaction lock hand-off —
    HB- and WCP-ordered after the writer, but not DC-ordered."""
    yield from patterns.local_work("h2.cacheReader", spacing)
    for entry in range(entries):
        yield from patterns.publication_sink(
            "h2.compactLock", f"h2.stringCache.entry{entry}",
            loc="StringCache.get():48")
        yield from patterns.local_work("h2.cacheReader", 2)


def program(scale: float = 1.0) -> Program:
    """Build the h2-analog program."""
    clients = 4
    transactions = max(4, int(30 * scale))
    cache_entries = 2

    def main() -> Iterator[Op]:
        for i in range(clients):
            yield ops.fork(
                f"client{i}", lambda i=i: _client(i, transactions, clients))
        yield ops.fork("flusher", lambda: _flush_writer(max(4, int(10 * scale))))
        yield ops.fork("flushReader", lambda: _flush_reader(max(8, int(25 * scale))))
        yield ops.fork("cacheWriter", lambda: _string_cache_writer(cache_entries))
        yield ops.fork("cacheRelay", lambda: _string_cache_relay(cache_entries))
        yield ops.fork(
            "cacheReader",
            lambda: _string_cache_reader(cache_entries,
                                         spacing=max(6, int(20 * scale))))
        for i in range(clients):
            yield ops.join(f"client{i}")
        for name in ("flusher", "flushReader", "cacheWriter", "cacheRelay",
                     "cacheReader"):
            yield ops.join(name)

    return Program(name="h2", main=main)

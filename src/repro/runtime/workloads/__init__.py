"""DaCapo-analog workloads (the paper's evaluation subjects).

Each module provides ``program(scale) -> Program``; :data:`WORKLOADS`
maps the DaCapo benchmark names used in the paper's Table 1 to those
factories, in the paper's order. The paper excludes eclipse, tradebeans,
tradesoap (unsupported by RoadRunner) and fop (single-threaded); this
reproduction does the same.
"""

from repro.runtime.workloads import patterns  # noqa: F401  (import order)
from repro.runtime.workloads import (
    avrora,
    batik,
    h2,
    jython,
    luindex,
    lusearch,
    pmd,
    sunflow,
    tomcat,
    xalan,
)

#: Workload factories keyed by DaCapo program name, in Table 1 order.
WORKLOADS = {
    "avrora": avrora.program,
    "batik": batik.program,
    "h2": h2.program,
    "jython": jython.program,
    "luindex": luindex.program,
    "lusearch": lusearch.program,
    "pmd": pmd.program,
    "sunflow": sunflow.program,
    "tomcat": tomcat.program,
    "xalan": xalan.program,
}

__all__ = ["WORKLOADS", "patterns"]

"""jython-analog workload: a Python-on-JVM interpreter warm-up.

DaCapo's jython interprets pybench. The paper reports 3 statically
distinct races with only 3–4 dynamic instances (Table 1): one-shot
initialisation races on shared interpreter caches, hit once during
warm-up rather than repeatedly.

The analog forks interpreter threads that race exactly once each on
three lazily initialised caches (type cache, codec table, import lock
stats), then spend the rest of the run on correctly synchronised work.
"""

from __future__ import annotations

from typing import Iterator

from repro.runtime.program import Op, Program, ops
from repro.runtime.workloads import patterns

RACY_SITES = [
    ("jython.typeCache", "PyType.fromClass():187", "PyType.lookup():201"),
    ("jython.codecTable", "Codecs.register():66", "Codecs.lookup():80"),
    ("jython.importStats", "Import.bump():44", "Import.report():52"),
]


def _interpreter(index: int, steps: int) -> Iterator[Op]:
    ns = f"jython.interp{index}"
    # One-shot initialisation race during warm-up: each thread touches
    # one cache without synchronisation, exactly once.
    var, wloc, rloc = RACY_SITES[index % len(RACY_SITES)]
    if index % 2 == 0:
        yield ops.wr(var, loc=wloc)
    else:
        yield ops.rd(var, loc=rloc)
    for step in range(steps):
        yield from patterns.local_work(ns, 4)
        yield from patterns.locked_counter(
            "jython.gilLock", "jython.frameCount", "Frame.enter():120")


def program(scale: float = 1.0) -> Program:
    """Build the jython-analog program."""
    interpreters = 6
    steps = max(4, int(30 * scale))

    def main() -> Iterator[Op]:
        for i in range(interpreters):
            yield ops.fork(f"interp{i}", lambda i=i: _interpreter(i, steps))
        for i in range(interpreters):
            yield ops.join(f"interp{i}")

    return Program(name="jython", main=main)

"""Reusable concurrency idioms for the DaCapo-analog workloads.

Each helper is a generator (or generator factory) of
:class:`~repro.runtime.program.Op` that a workload thread body can
``yield from``. The idioms are chosen to produce the race populations
the paper's Table 1 reports:

* :func:`hb_racy_access` — plain unsynchronised conflicting accesses:
  HB-races in most observed interleavings.
* :func:`sync_separated_access` — Figure 1's shape: the racing accesses
  sit outside empty (or unrelated) critical sections on a common lock,
  so the observed interleaving usually orders them by HB
  synchronisation order while WCP leaves them unordered → *WCP-only*
  races.
* :func:`publication_chain` pieces — Figure 2's shape: a value escapes
  before a lock-protected publication that a second thread consumes and
  re-publishes through an *unrelated* lock handoff to a third thread.
  HB and WCP both order the endpoints (WCP through its HB composition),
  DC does not → *DC-only* races, with event distance proportional to
  the work between the endpoints.
* :func:`locked_counter`, :func:`volatile_publish` — properly
  synchronised idioms that must produce no races at all.

The ``loc`` strings mimic RoadRunner's class/method/line identifiers so
dynamic races aggregate into statically distinct races as in the paper.
"""

from __future__ import annotations

from typing import Iterator

from repro.runtime.program import Op, ops


def local_work(ns: str, n: int) -> Iterator[Op]:
    """Thread-private busywork: ``n`` read/write pairs on private
    variables. Used to space racy accesses apart (event distance) and to
    bias scheduling without creating ordering."""
    for i in range(n):
        var = f"{ns}.local{i % 7}"
        yield ops.wr(var, loc=f"{ns}.compute():{40 + (i % 7)}")
        yield ops.rd(var, loc=f"{ns}.compute():{48 + (i % 7)}")


def locked_counter(lock: str, var: str, loc: str, bump: int = 1) -> Iterator[Op]:
    """A correctly lock-protected read-modify-write (no race)."""
    yield ops.acq(lock)
    for _ in range(bump):
        yield ops.rd(var, loc=loc)
        yield ops.wr(var, loc=loc)
    yield ops.rel(lock)


def volatile_publish(flag: str, payload: str, loc: str) -> Iterator[Op]:
    """Producer half of a correctly synchronised volatile publication."""
    yield ops.wr(payload, loc=loc)
    yield ops.vwr(flag, loc=loc)


def volatile_consume(flag: str, payload: str, loc: str) -> Iterator[Op]:
    """Consumer half of a volatile publication (ordered, no race)."""
    yield ops.vrd(flag, loc=loc)
    yield ops.rd(payload, loc=loc)


def hb_racy_access(var: str, loc: str, write: bool = True) -> Iterator[Op]:
    """One side of a plain unsynchronised racy access (an HB-race when
    another thread touches ``var`` conflictingly)."""
    if write:
        yield ops.wr(var, loc=loc)
    else:
        yield ops.rd(var, loc=loc)


def sync_separated_write(lock: str, var: str, guarded: str,
                         loc: str) -> Iterator[Op]:
    """First half of Figure 1's WCP-only race: write the racy variable,
    then run a critical section touching only unrelated guarded state."""
    yield ops.wr(var, loc=loc)
    yield ops.acq(lock)
    yield ops.wr(guarded, loc=f"{loc}/guarded")
    yield ops.rel(lock)


def sync_separated_read(lock: str, var: str, guarded_other: str,
                        loc: str) -> Iterator[Op]:
    """Second half of Figure 1's WCP-only race: a critical section on the
    same lock touching different guarded state, then the racy read.
    When the observed schedule runs this after the writer, the accesses
    are HB-ordered (sync order) but WCP leaves them unordered."""
    yield ops.acq(lock)
    yield ops.rd(guarded_other, loc=f"{loc}/guarded")
    yield ops.rel(lock)
    yield ops.rd(var, loc=loc)


def publication_escape(lock: str, var: str, guarded: str,
                       loc: str) -> Iterator[Op]:
    """Stage 1 of Figure 2's DC-only race (producer): the racy value
    escapes *before* the lock-protected publication."""
    yield ops.wr(var, loc=loc)
    yield ops.acq(lock)
    yield ops.wr(guarded, loc=f"{loc}/publish")
    yield ops.rel(lock)


def publication_relay(pub_lock: str, guarded: str, relay_lock: str,
                      loc: str) -> Iterator[Op]:
    """Stage 2 (relay thread): consume the publication under the first
    lock, then touch an unrelated lock whose hand-off HB-orders (but
    does not WCP-order) the final reader after this thread."""
    yield ops.acq(pub_lock)
    yield ops.rd(guarded, loc=f"{loc}/consume")
    yield ops.rel(pub_lock)
    yield ops.acq(relay_lock)
    yield ops.rel(relay_lock)


def publication_sink(relay_lock: str, var: str, loc: str) -> Iterator[Op]:
    """Stage 3 (reader thread): pass through the relay lock, then read
    the escaped value — a DC-only race with the stage-1 write."""
    yield ops.acq(relay_lock)
    yield ops.rel(relay_lock)
    yield ops.rd(var, loc=loc)


def ls_chain_holder(lock_m: str, var: str, loc: str,
                    dwell: int) -> Iterator[Op]:
    """Figure 3-shaped DC-only race, thread A: holds the iterator lock
    for a while and reads the racy field late in the critical section
    (its read HB-races with the writer; the forced order then carries
    the late reader's DC-only race)."""
    yield ops.acq(lock_m)
    yield from local_work(f"{loc}/holder", dwell)
    yield ops.rd(var, loc=loc)
    yield ops.rel(lock_m)


def ls_chain_writer(lock_l: str, var: str, loc: str,
                    lead: int) -> Iterator[Op]:
    """Figure 3-shaped race, thread B: passes through the registry lock,
    then writes the racy field without synchronisation."""
    yield from local_work(f"{loc}/writer", lead)
    yield ops.acq(lock_l)
    yield ops.rel(lock_l)
    yield ops.wr(var, loc=loc)


def ls_chain_late_reader(lock_l: str, lock_m: str, var: str, loc: str,
                         delay: int) -> Iterator[Op]:
    """Figure 3-shaped race, thread C: arrives last, takes both locks
    nested, and reads the racy field — a DC-only race whose vindication
    must add a lock-semantics constraint to fully order the registry
    critical sections."""
    yield from local_work(f"{loc}/late", delay)
    yield ops.acq(lock_l)
    yield ops.acq(lock_m)
    yield ops.rd(var, loc=loc)
    yield ops.rel(lock_m)
    yield ops.rel(lock_l)


def retry_chain_locker(lock: str, var: str, other: str, loc: str,
                       gap: int) -> Iterator[Op]:
    """Retry-shaped race, thread B: two short critical sections writing
    the racy fields, separated by a pause."""
    yield ops.acq(lock)
    yield ops.wr(var, loc=f"{loc}/first")
    yield ops.rel(lock)
    yield from local_work(f"{loc}/locker", gap)
    yield ops.acq(lock)
    yield ops.wr(other, loc=f"{loc}/second")
    yield ops.rel(lock)


def retry_chain_writer(var: str, other: str, loc: str, lead: int,
                       gap: int) -> Iterator[Op]:
    """Retry-shaped race, thread A: unsynchronised writes interleaving
    with the locker's critical sections."""
    yield from local_work(f"{loc}/writerlead", lead)
    yield ops.wr(var, loc=loc)
    yield from local_work(f"{loc}/writergap", gap)
    yield ops.wr(other, loc=f"{loc}/other")


def retry_chain_reader(lock: str, var: str, loc: str,
                       delay: int) -> Iterator[Op]:
    """Retry-shaped race, thread C: passes through the lock late and
    reads the racy field; witness construction stalls on the locker's
    second critical section and must pull in its release (the paper's
    missing-release retry)."""
    yield from local_work(f"{loc}/reader", delay)
    yield ops.acq(lock)
    yield ops.rel(lock)
    yield ops.rd(var, loc=loc)

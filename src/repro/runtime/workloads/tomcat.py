"""tomcat-analog workload: a servlet container under request load.

DaCapo's tomcat exercises a real servlet container; it dominates the
paper's Table 1 with ~109–110 statically distinct races and thousands of
dynamic instances, spread across many container components (session
management, connectors, JSP runtime, logging, ...). The paper also
notes tomcat forks threads *implicitly* through ``java.util.concurrent``
(RoadRunner adds conservative fork/join edges); the analog models the
same thing by forking its request handlers from a dispatcher.

The analog serves ``requests`` HTTP requests across a handler pool.
Each request handler touches several of a large family of racy
container fields (generated static sites across ~6 component classes),
giving the many-static-sites / many-dynamic-instances profile.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.runtime.program import Op, Program, ops
from repro.runtime.workloads import patterns


def _racy_sites() -> List[Tuple[str, str, str]]:
    """The generated family of racy container fields (32 static sites,
    scaled down ~3.5x from the paper's 109 to keep traces tractable)."""
    sites = []
    components = [
        ("StandardSession", "attributes", 412),
        ("Http11Processor", "keepAlive", 233),
        ("StandardContext", "instanceCount", 561),
        ("JspRuntimeContext", "jspQueue", 148),
        ("AccessLogValve", "buffer", 305),
        ("StandardWrapper", "loadTime", 710),
        ("ApplicationContext", "attrMap", 820),
        ("WebappClassLoader", "resourceEntries", 433),
    ]
    for cls, field, line in components:
        for i in range(4):
            sites.append((
                f"tomcat.{cls}.{field}{i}",
                f"{cls}.set{field.capitalize()}():{line + i}",
                f"{cls}.get{field.capitalize()}():{line + 40 + i}",
            ))
    return sites


RACY_SITES = _racy_sites()


def _handler(index: int, requests: int) -> Iterator[Op]:
    ns = f"tomcat.handler{index}"
    for r in range(requests):
        # Connector accept queue: correct.
        yield from patterns.locked_counter(
            "tomcat.acceptLock", "tomcat.acceptQueue", "Acceptor.accept():95")
        yield from patterns.local_work(ns, 3)
        # Each request touches four racy container fields.
        for k in range(4):
            site = (index * 7 + r * 4 + k) % len(RACY_SITES)
            var, wloc, rloc = RACY_SITES[site]
            if site % 8 == index:
                yield ops.wr(var, loc=wloc)
            else:
                yield ops.rd(var, loc=rloc)
        # Session store: correct.
        yield from patterns.locked_counter(
            "tomcat.sessionLock", "tomcat.sessions", "ManagerBase.add():528")


def program(scale: float = 1.0) -> Program:
    """Build the tomcat-analog program."""
    handlers = 8
    requests = max(3, int(16 * scale))

    def main() -> Iterator[Op]:
        yield ops.wr("tomcat.config", loc="Catalina.load():47")
        yield ops.vwr("tomcat.started", loc="Catalina.start():60")
        for i in range(handlers):
            yield ops.fork(f"handler{i}", lambda i=i: _handler_body(i, requests))
        for i in range(handlers):
            yield ops.join(f"handler{i}")

    def _handler_body(i: int, requests: int) -> Iterator[Op]:
        yield ops.vrd("tomcat.started", loc="Connector.await():77")
        yield ops.rd("tomcat.config", loc="Connector.await():78")
        yield from _handler(i, requests)

    return Program(name="tomcat", main=main)

"""xalan-analog workload: an XSLT transformer with a shared buffer pool.

DaCapo's xalan is the paper's star witness. Table 1 reports 4 HB static
races but 63 WCP and 67 DC static races: most of xalan's races are
*WCP-only* — the observed schedule happens to order them through
unrelated critical sections on the shared pool lock (HB synchronisation
order), which WCP deliberately ignores — and four static sites are
*DC-only* (Table 2's ``FastStringBuffer`` and ``LocPathIterator``
races), with the longest event distances in the whole evaluation
(up to ~72M events).

The analog has:

* ``workers`` transformer threads, each writing per-chunk output
  buffers *without* synchronisation and then updating its own slot of
  pool bookkeeping under the pool lock;
* a collector thread that periodically passes through the pool lock
  (touching only its own bookkeeping) and then reads the output
  buffers — racy reads that the observed schedule HB-orders via the
  pool lock's release→acquire chain, but WCP does not (Figure 1's
  shape): the WCP-only population;
* a ``FastStringBuffer`` chain per Figure 2: the buffer's initial size
  field escapes in the constructor, is published under the buffer
  lock, relayed through the iterator lock by a second thread, and read
  by a late appender — DC-only races with the workload's largest event
  distances.
"""

from __future__ import annotations

from typing import Iterator

from repro.runtime.program import Op, Program, ops
from repro.runtime.workloads import patterns

#: Number of racy output-buffer sites (the WCP-only population).
BUFFER_SITES = 15

#: Plain HB-racy sites (Table 1: 4 HB static races).
HB_SITES = [
    ("xalan.errorCount", "TransformerImpl.fatalError():801", "Main.report():92"),
    ("xalan.lastDocId", "DTMManager.getDTM():344", "DTMManager.release():361"),
    ("xalan.outputProps", "Serializer.setProp():118", "Serializer.flush():140"),
    ("xalan.uriCache", "URIResolver.resolve():77", "URIResolver.clear():85"),
]


def _transformer(index: int, chunks: int, sites_per_worker: int) -> Iterator[Op]:
    ns = f"xalan.worker{index}"
    for c in range(chunks):
        # Each worker owns its buffer sites, so the only conflicting
        # access to a buffer is the collector's read (one static
        # write/read pair per site).
        site = index * sites_per_worker + (c % sites_per_worker)
        yield from patterns.local_work(ns, 2)
        # Racy buffer write, then unrelated pool bookkeeping under the
        # pool lock (Figure 1's WCP-only shape).
        yield from patterns.sync_separated_write(
            "xalan.poolLock", f"xalan.outputBuffer{site}",
            f"xalan.poolSlot{index}",
            loc=f"SerializationHandler.characters():{610 + site}")
        if c % 5 == index % 5:
            var, wloc, rloc = HB_SITES[(index + c) % len(HB_SITES)]
            if index % 2 == 0:
                yield ops.wr(var, loc=wloc)
            else:
                yield ops.rd(var, loc=rloc)


def _collector(n_sites: int, delay: int) -> Iterator[Op]:
    # The collector serialises output after the transforms have mostly
    # finished (realistically: serialisation follows transformation), so
    # its racy reads are usually HB-ordered after the buffer writes via
    # the pool lock's release->acquire chain -- the WCP-only population.
    yield from patterns.local_work("xalan.collector", delay)
    for site in range(n_sites):
        yield from patterns.sync_separated_read(
            "xalan.poolLock", f"xalan.outputBuffer{site}",
            "xalan.poolSlotCollector",
            loc=f"ToStream.flushPending():{215 + site}")
        yield from patterns.local_work("xalan.collector", 2)


def _fsb_constructor(buffers: int, spacing: int) -> Iterator[Op]:
    """FastStringBuffer.<init>: the size field escapes, then the buffer
    registers itself under the buffer lock."""
    for b in range(buffers):
        yield from patterns.publication_escape(
            "xalan.bufferLock", f"xalan.fsb{b}.size", f"xalan.fsbTable{b}",
            loc="FastStringBuffer.<init>():210")
        yield from patterns.local_work("xalan.fsbInit", spacing)


def _fsb_relay(buffers: int, spacing: int) -> Iterator[Op]:
    yield from patterns.local_work("xalan.fsbRelay", spacing)
    for b in range(buffers):
        yield from patterns.local_work("xalan.fsbRelay", spacing // 2)
        yield from patterns.publication_relay(
            "xalan.bufferLock", f"xalan.fsbTable{b}", "xalan.iterLock",
            loc="LocPathIterator.setRoot():369")


def _fsb_appender(buffers: int, spacing: int) -> Iterator[Op]:
    """FastStringBuffer.append(): reads the escaped size field long
    after construction — the workload's longest-distance DC-only races."""
    yield from patterns.local_work("xalan.fsbAppend", 4 * spacing)
    for b in range(buffers):
        yield from patterns.publication_sink(
            "xalan.iterLock", f"xalan.fsb{b}.size",
            loc=f"FastStringBuffer.append():{488 + 165 * (b % 2)}")
        yield from patterns.local_work("xalan.fsbAppend", spacing)


def _iter_holder(dwell: int) -> Iterator[Op]:
    yield from patterns.ls_chain_holder(
        "xalan.iterPoolLock", "xalan.iterRoot",
        "LocPathIterator.setRoot():369", dwell)


def _iter_writer(lead: int) -> Iterator[Op]:
    yield from patterns.ls_chain_writer(
        "xalan.iterRegistryLock", "xalan.iterRoot",
        "LocPathIterator.setRoot():370", lead)


def _iter_late_reader(delay: int) -> Iterator[Op]:
    yield from patterns.ls_chain_late_reader(
        "xalan.iterRegistryLock", "xalan.iterPoolLock", "xalan.iterRoot",
        "AttributeIterator.getNextNode():56", delay)


def _onestep_locker(gap: int) -> Iterator[Op]:
    yield from patterns.retry_chain_locker(
        "xalan.oneStepLock", "xalan.oneStepRoot", "xalan.oneStepPos",
        "OneStepIterator.setRoot():97", gap)


def _onestep_writer(lead: int, gap: int) -> Iterator[Op]:
    yield from patterns.retry_chain_writer(
        "xalan.oneStepRoot", "xalan.oneStepPos",
        "OneStepIterator.setRoot():97", lead, gap)


def _onestep_reader(delay: int) -> Iterator[Op]:
    yield from patterns.retry_chain_reader(
        "xalan.oneStepLock", "xalan.oneStepRoot",
        "OneStepIterator.detach():120", delay)


def program(scale: float = 1.0) -> Program:
    """Build the xalan-analog program."""
    workers = 5
    sites_per_worker = 3
    chunks = max(4, int(20 * scale))
    fsb_buffers = 4
    spacing = max(8, int(30 * scale))
    # Collector delay: roughly the workers' aggregate work, so buffer
    # reads land after the writes under most schedules.
    delay = workers * chunks * 4

    def main() -> Iterator[Op]:
        for i in range(workers):
            yield ops.fork(f"worker{i}",
                           lambda i=i: _transformer(i, chunks, sites_per_worker))
        yield ops.fork("collector",
                       lambda: _collector(workers * sites_per_worker, delay))
        yield ops.fork("fsbInit", lambda: _fsb_constructor(fsb_buffers, spacing))
        yield ops.fork("fsbRelay", lambda: _fsb_relay(fsb_buffers, spacing))
        yield ops.fork("fsbAppend", lambda: _fsb_appender(fsb_buffers, spacing))
        yield ops.fork("iterHolder", lambda: _iter_holder(dwell=12))
        yield ops.fork("iterWriter", lambda: _iter_writer(lead=6))
        yield ops.fork("iterReader", lambda: _iter_late_reader(delay=30))
        yield ops.fork("oneStepLocker", lambda: _onestep_locker(gap=14))
        yield ops.fork("oneStepWriter", lambda: _onestep_writer(lead=6, gap=1))
        yield ops.fork("oneStepReader", lambda: _onestep_reader(delay=36))
        for i in range(workers):
            yield ops.join(f"worker{i}")
        for name in ("collector", "fsbInit", "fsbRelay", "fsbAppend",
                     "iterHolder", "iterWriter", "iterReader",
                     "oneStepLocker", "oneStepWriter", "oneStepReader"):
            yield ops.join(name)

    return Program(name="xalan", main=main)

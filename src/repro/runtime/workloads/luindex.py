"""luindex-analog workload: a Lucene-style document indexer.

DaCapo's luindex builds a text index. The paper reports exactly one
statically distinct race with a single dynamic instance (Table 1): a
one-shot race on a progress/status field between the indexing thread
and the main thread, while all index structures proper are correctly
merged under locks.
"""

from __future__ import annotations

from typing import Iterator

from repro.runtime.program import Op, Program, ops
from repro.runtime.workloads import patterns


def _indexer(documents: int) -> Iterator[Op]:
    for doc in range(documents):
        yield from patterns.local_work("luindex.indexer", 5)
        yield from patterns.locked_counter(
            "luindex.segmentLock", "luindex.segments",
            "IndexWriter.addDocument():318")
    # The single racy site: progress is written without holding a lock.
    yield ops.wr("luindex.progress", loc="IndexWriter.updateProgress():402")


def program(scale: float = 1.0) -> Program:
    """Build the luindex-analog program (exactly one racy site)."""
    documents = max(3, int(20 * scale))

    def main() -> Iterator[Op]:
        yield ops.fork("indexer", lambda: _indexer(documents))
        yield from patterns.local_work("luindex.main", 6)
        # Main polls progress without synchronisation: the race's other side.
        yield ops.rd("luindex.progress", loc="Main.poll():77")
        yield ops.join("indexer")
        yield ops.rd("luindex.segments", loc="Main.close():81")

    return Program(name="luindex", main=main)

"""avrora-analog workload: a sensor-network node simulator.

DaCapo's avrora simulates AVR microcontroller nodes communicating over
a radio. The paper reports 5 statically distinct races, all of them
HB-races, with many dynamic instances (Table 1: 5 static, ~933–996
dynamic): node state that is read and written by neighbouring node
threads without synchronisation, over and over as the simulation turns.

This analog runs ``nodes`` simulator threads for ``cycles`` turns each.
The event queue is correctly lock-protected; five fields of the shared
radio/medium state are accessed racily in every turn, reproducing the
"few static sites, many dynamic instances" shape.
"""

from __future__ import annotations

from typing import Iterator

from repro.runtime.program import Op, Program, ops
from repro.runtime.workloads import patterns

#: The five statically distinct racy fields (class.method():line labels).
RACY_SITES = [
    ("radio.power", "Radio.setPower():88", "Radio.getPower():95"),
    ("radio.channel", "Radio.setChannel():112", "Radio.getChannel():120"),
    ("medium.busy", "Medium.transmit():61", "Medium.poll():74"),
    ("node.sleepCycles", "Node.sleep():203", "Node.wakeTime():211"),
    ("sim.eventCount", "Simulator.post():140", "Simulator.drain():155"),
]


def _node(index: int, nodes: int, cycles: int) -> Iterator[Op]:
    ns = f"avrora.node{index}"
    for cycle in range(cycles):
        yield from patterns.local_work(ns, 2)
        # Correctly synchronised event queue.
        yield from patterns.locked_counter(
            "sim.queueLock", "sim.queue", "EventQueue.add():77")
        # Racy neighbour communication: each shared field has one
        # designated writer node (so each site yields exactly one
        # statically distinct write/read race) and is read by the rest.
        site = (index + cycle) % len(RACY_SITES)
        var, wloc, rloc = RACY_SITES[site]
        if site % nodes == index:
            yield ops.wr(var, loc=wloc)
        else:
            yield ops.rd(var, loc=rloc)
        site = cycle % len(RACY_SITES)
        var, wloc, rloc = RACY_SITES[site]
        if site % nodes == index:
            yield ops.wr(var, loc=wloc)
        else:
            yield ops.rd(var, loc=rloc)


def program(scale: float = 1.0) -> Program:
    """Build the avrora-analog program (``scale`` multiplies cycles)."""
    nodes = 6
    cycles = max(4, int(40 * scale))

    def main() -> Iterator[Op]:
        for i in range(nodes):
            yield ops.fork(f"node{i}", lambda i=i: _node(i, nodes, cycles))
        yield from patterns.local_work("avrora.main", 4)
        for i in range(nodes):
            yield ops.join(f"node{i}")

    return Program(name="avrora", main=main)

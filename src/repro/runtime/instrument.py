"""Instrumentation-layer helpers: the redundant-access fast path.

The paper's implementation uses an instrumentation "fast path" that
skips *redundant* accesses — a read or write to a variable the same
thread already wrote (or a read it already read) with no interleaving
synchronisation — which cannot change race results but shrink both the
analysis work and the constraint graph (Section 6.1).

Here the fast path is a trace-to-trace filter applied between the
scheduler and the analyses. An access is redundant when, since the
thread's previous access to the same variable, the thread performed no
synchronisation operation (lock, volatile, fork/join), and either the
previous access was a write, or both accesses are reads. Such an access
adds no new orderings (its critical-section context equals the previous
access's) and any race it participates in is detected at the previous
access or at the other thread's access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro import obs
from repro.core.events import Event, EventKind, Target, Tid
from repro.core.trace import Trace


@dataclass
class FastPathStats:
    """Outcome of :func:`fast_path_filter`."""

    original_events: int
    filtered_events: int

    @property
    def removed(self) -> int:
        return self.original_events - self.filtered_events

    @property
    def hit_rate(self) -> float:
        """Fraction of events the fast path removed."""
        if self.original_events == 0:
            return 0.0
        return self.removed / self.original_events


def fast_path_filter(trace: Trace) -> Tuple[Trace, FastPathStats]:
    """Remove redundant accesses from ``trace``.

    Returns the filtered (renumbered) trace and the filter statistics.
    """
    # Per thread: epoch counter bumped at each synchronisation op, and
    # per variable the (epoch, kind) of the thread's last access.
    sync_epoch: Dict[Tid, int] = {}
    last_access: Dict[Tuple[Tid, Target], Tuple[int, EventKind]] = {}
    kept: List[Event] = []
    for e in trace:
        if e.kind.is_access:
            epoch = sync_epoch.get(e.tid, 0)
            prior = last_access.get((e.tid, e.target))
            if prior is not None and prior[0] == epoch:
                prior_kind = prior[1]
                redundant = (prior_kind is EventKind.WRITE
                             or (prior_kind is EventKind.READ
                                 and e.kind is EventKind.READ))
                if redundant:
                    continue
            last_access[(e.tid, e.target)] = (epoch, e.kind)
            kept.append(e)
        else:
            sync_epoch[e.tid] = sync_epoch.get(e.tid, 0) + 1
            kept.append(e)
    filtered = Trace.from_events(kept)
    # The filtered trace is the same execution, just pruned: it keeps
    # the original's provenance (plus a marker that the filter ran).
    if trace.provenance:
        filtered.provenance = dict(trace.provenance)
        filtered.provenance["fast_path_filtered"] = True
    stats = FastPathStats(original_events=len(trace),
                          filtered_events=len(filtered))
    reg = obs.metrics()
    if reg.enabled:
        reg.add("runtime.fast_path.seen", stats.original_events)
        reg.add("runtime.fast_path.removed", stats.removed)
    return filtered, stats

"""Execution substrate: concurrent-program model, scheduler, workloads.

This package replaces the paper's RoadRunner instrumentation layer: it
turns programs (thread bodies yielding abstract operations) into
execution traces through a seeded scheduler, with the paper's
redundant-access fast path available as a trace filter.
"""

from repro.runtime.program import Op, Program, ops
from repro.runtime.scheduler import (
    SchedulerDeadlockError,
    SchedulerError,
    execute,
)
from repro.runtime.instrument import FastPathStats, fast_path_filter
from repro.runtime.fuzz import ProgramConfig, random_program

__all__ = [
    "FastPathStats",
    "ProgramConfig",
    "Op",
    "Program",
    "SchedulerDeadlockError",
    "SchedulerError",
    "execute",
    "fast_path_filter",
    "ops",
    "random_program",
]

"""Concurrent-program model for the execution substrate.

The paper's implementation platform, RoadRunner, instruments JVM
bytecode and surfaces a stream of memory-access and synchronisation
events to the analyses. This module is the analogous substrate for the
reproduction: a *program* is a set of thread bodies written as Python
generators that yield abstract operations; the scheduler
(:mod:`repro.runtime.scheduler`) interleaves them into an execution
trace.

Example::

    from repro.runtime.program import Program, ops

    def writer():
        yield ops.acq("m")
        yield ops.wr("data", loc="Writer.run():12")
        yield ops.rel("m")

    def main():
        yield ops.fork("w", writer)
        yield ops.rd("data", loc="Main.check():40")
        yield ops.join("w")

    program = Program(name="example", main=main)

Thread bodies may fork further threads dynamically, synchronise on
locks and volatiles, and carry source-location strings so dynamic races
aggregate into statically distinct races exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.core.events import EventKind, Target


@dataclass(frozen=True)
class Op:
    """One abstract operation yielded by a thread body."""

    kind: EventKind
    target: Optional[Target] = None
    loc: Optional[str] = None
    #: For FORK: the body generator function of the new thread.
    body: Optional[Callable[[], Iterator["Op"]]] = None


class ops:
    """Factory helpers for :class:`Op` (kept in one namespace so thread
    bodies read like tiny programs)."""

    @staticmethod
    def rd(var: Target, loc: Optional[str] = None) -> Op:
        """Read a shared variable."""
        return Op(EventKind.READ, var, loc)

    @staticmethod
    def wr(var: Target, loc: Optional[str] = None) -> Op:
        """Write a shared variable."""
        return Op(EventKind.WRITE, var, loc)

    @staticmethod
    def acq(lock: Target, loc: Optional[str] = None) -> Op:
        """Acquire a lock (blocks while another thread holds it)."""
        return Op(EventKind.ACQUIRE, lock, loc)

    @staticmethod
    def rel(lock: Target, loc: Optional[str] = None) -> Op:
        """Release a held lock."""
        return Op(EventKind.RELEASE, lock, loc)

    @staticmethod
    def vrd(var: Target, loc: Optional[str] = None) -> Op:
        """Volatile read (synchronisation, never a race candidate)."""
        return Op(EventKind.VOLATILE_READ, var, loc)

    @staticmethod
    def vwr(var: Target, loc: Optional[str] = None) -> Op:
        """Volatile write."""
        return Op(EventKind.VOLATILE_WRITE, var, loc)

    @staticmethod
    def fork(name: Target, body: Callable[[], Iterator[Op]],
             loc: Optional[str] = None) -> Op:
        """Start a new thread running ``body``."""
        return Op(EventKind.FORK, name, loc, body)

    @staticmethod
    def join(name: Target, loc: Optional[str] = None) -> Op:
        """Wait for a forked thread to finish (blocks until it does)."""
        return Op(EventKind.JOIN, name, loc)


@dataclass
class Program:
    """A concurrent program: a name plus the main thread's body.

    Additional threads are created with :func:`ops.fork`; the scheduler
    assigns the forking thread's events and the children's events to
    distinct thread ids derived from the fork names.
    """

    name: str
    main: Callable[[], Iterator[Op]]

    def __str__(self) -> str:
        return f"Program({self.name})"

"""Random concurrent-program generation (scheduler fuzzing).

Where :mod:`repro.traces.gen` generates random *traces* directly, this
module generates random *programs* — thread bodies over shared locks,
variables, and volatiles with nested forks — to fuzz the scheduler:
every schedule of a well-formed program must yield a structurally valid
trace, identical for identical seeds, and all analyses must run on it
without error. Used by ``tests/test_fuzz.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

from repro.runtime.program import Op, Program, ops


@dataclass
class ProgramConfig:
    """Knobs for :func:`random_program`."""

    top_level_threads: int = 3
    ops_per_thread: int = 12
    variables: int = 3
    locks: int = 2
    volatiles: int = 1
    max_nesting: int = 2
    fork_probability: float = 0.15
    max_forks: int = 3


def random_program(seed: int,
                   config: Optional[ProgramConfig] = None) -> Program:
    """Generate a random well-formed program for ``seed``.

    Thread bodies acquire/release locks in nested order, access shared
    variables and volatiles, and occasionally fork (and always join)
    child threads. The program is deadlock-free by construction: locks
    are always acquired in a fixed global order.
    """
    cfg = config or ProgramConfig()
    fork_budget = [cfg.max_forks]
    name_counter = [0]

    variables = [f"x{i}" for i in range(cfg.variables)]
    locks = [f"m{i}" for i in range(cfg.locks)]
    volatiles = [f"v{i}" for i in range(cfg.volatiles)]

    def body_factory(depth: int, body_seed: int) -> Callable[[], Iterator[Op]]:
        def body() -> Iterator[Op]:
            local = random.Random(body_seed)
            held: List[int] = []  # indices into locks, ascending
            pending_joins: List[str] = []
            for _ in range(cfg.ops_per_thread):
                roll = local.random()
                if (roll < cfg.fork_probability and depth < 2
                        and fork_budget[0] > 0):
                    fork_budget[0] -= 1
                    name_counter[0] += 1
                    name = f"t{name_counter[0]}"
                    yield ops.fork(name, body_factory(depth + 1,
                                                      local.randrange(1 << 30)))
                    pending_joins.append(name)
                elif roll < 0.35 and len(held) < cfg.max_nesting:
                    # Acquire in global order to stay deadlock-free.
                    floor = held[-1] + 1 if held else 0
                    candidates = list(range(floor, len(locks)))
                    if candidates:
                        idx = local.choice(candidates)
                        held.append(idx)
                        yield ops.acq(locks[idx])
                        continue
                    yield ops.rd(local.choice(variables))
                elif roll < 0.55 and held:
                    yield ops.rel(locks[held.pop()])
                elif volatiles and roll < 0.62:
                    var = local.choice(volatiles)
                    if local.random() < 0.5:
                        yield ops.vwr(var)
                    else:
                        yield ops.vrd(var)
                else:
                    var = local.choice(variables)
                    if local.random() < 0.5:
                        yield ops.wr(var, loc=f"Fuzz.w{var}:1")
                    else:
                        yield ops.rd(var, loc=f"Fuzz.r{var}:1")
            while held:
                yield ops.rel(locks[held.pop()])
            for name in pending_joins:
                yield ops.join(name)
        return body

    def main() -> Iterator[Op]:
        # Reset shared generation state (and use a fresh RNG) so
        # re-executing the same Program is reproducible.
        rng = random.Random(seed)
        fork_budget[0] = cfg.max_forks
        name_counter[0] = 0
        names = []
        for i in range(cfg.top_level_threads):
            name_counter[0] += 1
            name = f"w{name_counter[0]}"
            yield ops.fork(name, body_factory(0, rng.randrange(1 << 30)))
            names.append(name)
        for name in names:
            yield ops.join(name)

    return Program(name=f"fuzz{seed}", main=main)

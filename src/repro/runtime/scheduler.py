"""Seeded scheduler: executes a :class:`~repro.runtime.program.Program`
into an execution trace.

The scheduler maintains a set of live threads (generators of operations)
and repeatedly picks one runnable thread to take a step, emitting the
corresponding trace event. A thread is blocked when its next operation
is an acquire of a held lock or a join of an unfinished thread.
Scheduling is reproducible: the same program and seed always produce the
same trace, while different seeds explore different interleavings —
the substrate's stand-in for the paper's ten-trial methodology.

Two policies are provided:

* ``"random"`` — uniformly random among runnable threads (default);
* ``"round_robin"`` — cycle through runnable threads with a seeded
  *quantum*, which yields longer per-thread runs and hence larger event
  distances between cross-thread conflicting accesses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro import obs
from repro.core.events import EventKind, Target, Tid
from repro.core.exceptions import ReproError
from repro.core.trace import Trace, TraceBuilder
from repro.runtime.program import Op, Program


class SchedulerDeadlockError(ReproError):
    """All live threads are blocked (the program deadlocked)."""


class SchedulerError(ReproError):
    """A thread issued an operation that is invalid in context."""


@dataclass
class _ThreadState:
    tid: Tid
    body: Iterator[Op]
    pending: Optional[Op] = None
    finished: bool = False
    held: List[Target] = field(default_factory=list)

    def next_op(self) -> Optional[Op]:
        """Peek the thread's next operation (None when it is done)."""
        if self.pending is None and not self.finished:
            try:
                self.pending = next(self.body)
            except StopIteration:
                self.finished = True
        return self.pending


def execute(program: Program, seed: int = 0, policy: str = "random",
            quantum: int = 8, thread_markers: bool = False,
            max_events: int = 2_000_000) -> Trace:
    """Run ``program`` under a seeded schedule and return the trace.

    Args:
        program: The program to execute.
        seed: Scheduler seed; determines the interleaving.
        policy: ``"random"`` or ``"round_robin"``.
        quantum: For ``round_robin``: how many steps a thread runs before
            the scheduler moves on (drawn ±50% per turn, seeded).
        thread_markers: Emit begin/end events for every thread.
        max_events: Safety bound on trace length.
    """
    if policy not in ("random", "round_robin"):
        raise ValueError(f"unknown scheduling policy {policy!r}")
    rng = random.Random(seed)
    builder = TraceBuilder()
    main_tid = f"{program.name}.main"
    threads: Dict[Tid, _ThreadState] = {
        main_tid: _ThreadState(tid=main_tid, body=program.main())
    }
    lock_holder: Dict[Target, Tid] = {}
    if thread_markers:
        builder.begin(main_tid)
    ended: set = set()
    emitted = 0
    current: Optional[Tid] = None
    budget = 0

    def runnable() -> List[_ThreadState]:
        # First pass: peek every thread so finished generators are marked
        # before join-blocking is evaluated (a join may depend on a thread
        # that appears later in the dict).
        for state in threads.values():
            state.next_op()
        out = []
        for state in threads.values():
            op = state.pending
            if op is None:
                continue
            if op.kind is EventKind.ACQUIRE and op.target in lock_holder:
                continue
            if op.kind is EventKind.JOIN:
                target_tid = _child_tid(program, op.target)
                child = threads.get(target_tid)
                if child is None or not (child.finished and child.pending is None):
                    continue
            out.append(state)
        return out

    # Pure observation (no extra RNG draws, so schedules stay
    # reproducible across instrumented and seed builds): context
    # switches and per-thread op counts, published in one batch below.
    switches = 0
    per_thread_ops: Dict[Tid, int] = {}
    last_tid: Optional[Tid] = None

    with obs.span("runtime.execute") as span:
        while True:
            ready = runnable()  # peeks every thread, marking finished ones
            for state in threads.values():
                if state.finished and state.pending is None and state.held:
                    raise SchedulerError(
                        f"thread {state.tid!r} finished holding locks {state.held}")
            if all(s.finished and s.pending is None for s in threads.values()):
                break
            if not ready:
                blocked = [s.tid for s in threads.values()
                           if not (s.finished and s.pending is None)]
                raise SchedulerDeadlockError(
                    f"{program.name}: all live threads blocked: {blocked}")
            if policy == "random":
                state = rng.choice(ready)
            else:
                if current is None or budget <= 0 or all(s.tid != current for s in ready):
                    state = rng.choice(ready)
                    current = state.tid
                    budget = max(1, int(quantum * (0.5 + rng.random())))
                else:
                    state = next(s for s in ready if s.tid == current)
                budget -= 1
            if state.tid != last_tid:
                if last_tid is not None:
                    switches += 1
                last_tid = state.tid
            per_thread_ops[state.tid] = per_thread_ops.get(state.tid, 0) + 1
            op = state.pending
            state.pending = None
            assert op is not None
            emitted += 1
            if emitted > max_events:
                raise SchedulerError(
                    f"{program.name}: exceeded max_events={max_events}")
            _emit(builder, program, threads, lock_holder, state, op,
                  thread_markers, ended)
        if thread_markers:
            builder.end(main_tid)
        trace = builder.build()
        span.annotate("events", emitted)
        span.annotate("switches", switches)
        span.annotate("threads", len(threads))
    trace.provenance = {
        "kind": "scheduler",
        "program": program.name,
        "seed": seed,
        "policy": policy,
        "quantum": quantum,
        "thread_markers": thread_markers,
    }
    reg = obs.metrics()
    if reg.enabled:
        reg.add("runtime.events", emitted)
        reg.add("runtime.context_switches", switches)
        reg.gauge("runtime.threads").track_max(len(threads))
        hist = reg.histogram("runtime.thread_ops",
                             obs.DEFAULT_SIZE_BUCKETS)
        for count in per_thread_ops.values():
            hist.observe(count)
    return trace


def _child_tid(program: Program, name: Target) -> Tid:
    return f"{program.name}.{name}"


def _emit(builder: TraceBuilder, program: Program,
          threads: Dict[Tid, _ThreadState], lock_holder: Dict[Target, Tid],
          state: _ThreadState, op: Op, thread_markers: bool,
          ended: set) -> None:
    kind = op.kind
    if kind is EventKind.READ:
        builder.rd(state.tid, op.target, loc=op.loc)
    elif kind is EventKind.WRITE:
        builder.wr(state.tid, op.target, loc=op.loc)
    elif kind is EventKind.VOLATILE_READ:
        builder.vrd(state.tid, op.target, loc=op.loc)
    elif kind is EventKind.VOLATILE_WRITE:
        builder.vwr(state.tid, op.target, loc=op.loc)
    elif kind is EventKind.ACQUIRE:
        if op.target in lock_holder:
            raise SchedulerError(f"{state.tid!r} acquired held lock {op.target!r}")
        builder.acq(state.tid, op.target, loc=op.loc)
        lock_holder[op.target] = state.tid
        state.held.append(op.target)
    elif kind is EventKind.RELEASE:
        if lock_holder.get(op.target) != state.tid:
            raise SchedulerError(
                f"{state.tid!r} released lock {op.target!r} it does not hold")
        builder.rel(state.tid, op.target, loc=op.loc)
        del lock_holder[op.target]
        state.held.remove(op.target)
    elif kind is EventKind.FORK:
        child_tid = _child_tid(program, op.target)
        if child_tid in threads:
            raise SchedulerError(f"thread name {op.target!r} reused")
        assert op.body is not None, "fork op without a body"
        builder.fork(state.tid, child_tid, loc=op.loc)
        threads[child_tid] = _ThreadState(tid=child_tid, body=op.body())
        if thread_markers:
            builder.begin(child_tid)
    elif kind is EventKind.JOIN:
        child_tid = _child_tid(program, op.target)
        if thread_markers and child_tid not in ended:
            builder.end(child_tid)
            ended.add(child_tid)
        builder.join(state.tid, child_tid, loc=op.loc)
    else:
        raise SchedulerError(f"thread body yielded unsupported op {op}")

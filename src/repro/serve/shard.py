"""Session shards: the daemon's unit of parallelism.

Each session is owned end to end by exactly one shard, chosen by a
stable hash of the session name (``sha256(name) % jobs``), so a
session's events are always analyzed by the same state — sharding
changes throughput, never results. A shard is either in-process
(:class:`InlineShard`, ``--jobs 1``) or a forked worker
(:class:`ProcessShard`) talking over a :func:`multiprocessing.Pipe`;
both run the same :class:`ShardState` dispatch, so the two modes are
behaviourally identical.

:meth:`ShardState.handle` never raises: every failure becomes the
protocol's structured error response, because a malformed client stream
must poison only its own session, not the worker owning other sessions.
"""

from __future__ import annotations

import hashlib
import os
import re
import signal
import threading
from multiprocessing.connection import Connection
from typing import Any, Dict, List, Optional

from repro.analysis.variants import VariantSpec
from repro.core import kernels
from repro.obs.schema import validate_serve_request, SchemaError
from repro.parallel.engine import pool_context
from repro.serve.checkpoint import (CheckpointError, resume_session,
                                    write_checkpoint)
from repro.serve.protocol import ProtocolError, error_response, ok_response
from repro.serve.session import SessionAnalyzer, SessionConfig

#: Internal (server → shard) ops, never accepted from clients.
DRAIN_OP = "__drain__"
EXIT_SENTINEL = "__exit__"


def shard_of(session: str, jobs: int) -> int:
    """Stable session→shard routing (pure function of the name)."""
    digest = hashlib.sha256(session.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % jobs


def checkpoint_path(checkpoint_dir: str, session: str) -> str:
    """Default checkpoint file for a session: a filesystem-safe slug
    plus a short name hash (distinct names never collide)."""
    slug = re.sub(r"[^A-Za-z0-9_.-]", "_", session)[:80]
    suffix = hashlib.sha256(session.encode("utf-8")).hexdigest()[:12]
    return os.path.join(checkpoint_dir, f"{slug}.{suffix}.vckp")


class ShardState:
    """All sessions owned by one shard, plus the request dispatch."""

    def __init__(self, checkpoint_dir: str):
        self.checkpoint_dir = checkpoint_dir
        self.sessions: Dict[str, SessionAnalyzer] = {}

    # ------------------------------------------------------------------
    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one request; always returns a protocol response."""
        op = request.get("op")
        op_name = op if isinstance(op, str) else "?"
        try:
            if op == DRAIN_OP:
                return self._drain(request)
            try:
                validate_serve_request(request)
            except SchemaError as exc:
                raise ProtocolError("bad-request", str(exc))
            return self._dispatch(op_name, request)
        except Exception as exc:  # noqa: BLE001 — becomes a wire error
            return error_response(op_name, exc)

    def _dispatch(self, op: str, request: Dict[str, Any]) -> Dict[str, Any]:
        if op == "hello":
            return self._hello(request)
        if op == "events":
            analyzer = self._get(request["session"])
            accepted = analyzer.feed_lines(request["lines"])
            return ok_response(
                op, accepted=accepted, events=len(analyzer.trace),
                gc_runs=analyzer.gc_runs, gc_retired=analyzer.gc_retired)
        if op == "status":
            return ok_response(op, status=self._get(request["session"]).status())
        if op == "races":
            return ok_response(op, races=self._get(request["session"]).races_document())
        if op == "finish":
            analyzer = self._get(request["session"])
            report = analyzer.finish()
            return ok_response(op, report=report,
                               trace_hash=analyzer.hasher.hexdigest())
        if op == "checkpoint":
            return self._checkpoint(request)
        if op == "sessions":
            return ok_response(op, sessions=[
                analyzer.status() for analyzer in self.sessions.values()])
        raise ProtocolError("bad-request",
                            f"op {op!r} is not handled by shards")

    # ------------------------------------------------------------------
    def _get(self, name: str) -> SessionAnalyzer:
        analyzer = self.sessions.get(name)
        if analyzer is None:
            raise ProtocolError("unknown-session",
                                f"no open session named {name!r}")
        return analyzer

    def _hello(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = request["session"]
        if name in self.sessions:
            raise ProtocolError("session-exists",
                                f"session {name!r} is already open")
        resume_from = request.get("resume")
        if resume_from is not None:
            analyzer = resume_session(resume_from)
            if analyzer.config.name != name:
                raise CheckpointError(
                    f"checkpoint {resume_from!r} belongs to session "
                    f"{analyzer.config.name!r}, not {name!r}")
            self.sessions[name] = analyzer
            return ok_response("hello", session=name, resumed=True,
                               events=len(analyzer.trace))
        config = SessionConfig.from_dict(name, request.get("config") or {})
        self.sessions[name] = SessionAnalyzer(config)
        return ok_response("hello", session=name, resumed=False, events=0)

    def _checkpoint(self, request: Dict[str, Any]) -> Dict[str, Any]:
        analyzer = self._get(request["session"])
        path = request.get("path") or checkpoint_path(
            self.checkpoint_dir, analyzer.config.name)
        written = write_checkpoint(analyzer, path)
        return ok_response("checkpoint", path=path, bytes=written,
                           events=len(analyzer.trace),
                           trace_hash=analyzer.hasher.hexdigest())

    def _drain(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Final checkpoints for every open, unfinished session (the
        graceful-shutdown path; internal op)."""
        directory = request.get("dir") or self.checkpoint_dir
        checkpoints: List[Dict[str, Any]] = []
        errors: List[Dict[str, Any]] = []
        for name, analyzer in self.sessions.items():
            if analyzer.finished or len(analyzer.trace) == 0:
                continue
            path = checkpoint_path(directory, name)
            try:
                written = write_checkpoint(analyzer, path)
            except Exception as exc:  # noqa: BLE001
                errors.append({"session": name, "message": str(exc)})
                continue
            checkpoints.append({"session": name, "path": path,
                                "bytes": written,
                                "events": len(analyzer.trace),
                                "trace_hash": analyzer.hasher.hexdigest()})
        return ok_response(DRAIN_OP, checkpoints=checkpoints, errors=errors)


class InlineShard:
    """The ``--jobs 1`` shard: same dispatch, no process boundary."""

    def __init__(self, index: int, checkpoint_dir: str):
        self.index = index
        self._state = ShardState(checkpoint_dir)
        self._lock = threading.Lock()

    def request(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            return self._state.handle(doc)

    def close(self) -> None:
        pass


def _shard_main(conn: "Connection", index: int,
                spec: Optional[VariantSpec] = None) -> None:
    """Forked worker loop: one request in, one response out, until the
    exit sentinel. Signals are the parent's job — the worker must keep
    serving drain requests while the parent handles SIGTERM."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    # Re-apply the daemon's resolved variant spec (streaming sessions
    # are always the "reference" variant — batch cannot stream — so in
    # practice this pins the clock-kernel backend): under `spawn` the
    # worker would otherwise re-resolve the env default, and a fleet
    # must never silently mix kernel implementations.
    if spec is not None:
        spec.apply()
    state = ShardState(checkpoint_dir=os.environ.get("TMPDIR", "/tmp"))
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            break
        if request == EXIT_SENTINEL:
            break
        if isinstance(request, dict) and "checkpoint_dir" in request:
            state.checkpoint_dir = request["checkpoint_dir"]
            request = {k: v for k, v in request.items()
                       if k != "checkpoint_dir"}
        try:
            conn.send(state.handle(request))
        except (BrokenPipeError, OSError):  # pragma: no cover
            break
    conn.close()


class ProcessShard:
    """A shard in a forked worker process (``--jobs N``), reached over a
    pipe. Requests on one shard are serialized by a lock; different
    shards run genuinely in parallel."""

    def __init__(self, index: int, checkpoint_dir: str):
        self.index = index
        self.checkpoint_dir = checkpoint_dir
        ctx = pool_context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self._conn: "Connection" = parent_conn
        self._lock = threading.Lock()
        self._proc = ctx.Process(target=_shard_main,
                                 args=(child_conn, index,
                                       VariantSpec(
                                           "reference",
                                           kernels.active_backend())),
                                 name=f"vindicator-shard-{index}",
                                 daemon=True)
        self._proc.start()
        child_conn.close()

    def request(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        # checkpoint_dir rides along so the worker (which may have been
        # forked before the server resolved its state dir) always
        # checkpoints where the parent expects.
        doc = dict(doc)
        doc["checkpoint_dir"] = self.checkpoint_dir
        with self._lock:
            try:
                self._conn.send(doc)
                response: Dict[str, Any] = self._conn.recv()
            except (EOFError, OSError) as exc:
                return error_response(
                    str(doc.get("op", "?")),
                    ProtocolError("internal",
                                  f"shard {self.index} died: {exc}"))
        return response

    def close(self) -> None:
        with self._lock:
            try:
                self._conn.send(EXIT_SENTINEL)
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
            self._conn.close()
        self._proc.join(timeout=10)
        if self._proc.is_alive():  # pragma: no cover - stuck worker
            self._proc.terminate()
            self._proc.join(timeout=5)


def make_shards(jobs: int, checkpoint_dir: str) -> "List[InlineShard | ProcessShard]":
    """The daemon's shard set. ``jobs == 1`` stays fully in-process;
    otherwise every shard forks (created before any listener thread
    starts, so the fork inherits a quiescent parent)."""
    if jobs == 1:
        return [InlineShard(0, checkpoint_dir)]
    return [ProcessShard(i, checkpoint_dir) for i in range(jobs)]

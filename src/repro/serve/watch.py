"""Files-as-queues ingestion: a polled drop directory.

Producers that cannot hold a socket open (cron jobs, CI steps, shell
pipelines) write a complete text-format trace to ``<name>.trace`` in the
watch directory. The watcher turns each file into a session named after
it, streams the lines through the normal request router in bounded
chunks (so a huge file behaves exactly like a long-lived socket
client), finishes it, and leaves:

* ``<name>.result.json`` — the ``finish`` report (the same
  ``vindicator.analyze/1`` document a socket client would get), and
* ``<name>.trace.done`` — the input, renamed so it is processed once;
  on failure ``<name>.error.json`` + ``<name>.trace.failed`` instead.

Files are claimed by renaming ``.trace`` → ``.trace.working`` first —
an atomic operation, so even two daemons watching one directory never
double-process a file. Partially written files are the producer's
problem: write elsewhere and ``mv`` in (atomic on one filesystem).
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Callable, Dict, List

#: Lines per ``events`` request when replaying a drop file.
CHUNK_LINES = 2000

Router = Callable[[Dict[str, Any]], Dict[str, Any]]


class Watcher:
    """Polls ``directory`` for ``*.trace`` files and feeds them through
    ``route`` (the daemon's request dispatcher)."""

    def __init__(self, directory: str, route: Router,
                 stop: threading.Event, poll_seconds: float = 0.2):
        self.directory = directory
        self.route = route
        self.stop = stop
        self.poll_seconds = poll_seconds
        #: Files fully processed (for tests/operators).
        self.processed: List[str] = []

    def run(self) -> None:
        os.makedirs(self.directory, exist_ok=True)
        while not self.stop.is_set():
            self.scan_once()
            self.stop.wait(self.poll_seconds)

    def scan_once(self) -> int:
        """One directory sweep; returns files processed."""
        count = 0
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:  # pragma: no cover - directory vanished
            return 0
        for name in names:
            if not name.endswith(".trace"):
                continue
            if self._process(name):
                count += 1
            if self.stop.is_set():
                break
        return count

    def _process(self, name: str) -> bool:
        path = os.path.join(self.directory, name)
        working = path + ".working"
        try:
            os.rename(path, working)  # atomic claim
        except OSError:
            return False  # another worker claimed it first
        session = f"watch/{name[:-len('.trace')]}"
        stem = path[:-len(".trace")]
        try:
            result = self._run_session(session, working)
        except Exception as exc:  # noqa: BLE001 — recorded, not fatal
            self._write_json(f"{stem}.error.json",
                             {"session": session,
                              "error": {"code": "internal",
                                        "message": str(exc)}})
            os.rename(working, path + ".failed")
            return True
        if result.get("ok"):
            self._write_json(f"{stem}.result.json", result)
            os.rename(working, path + ".done")
        else:
            self._write_json(f"{stem}.error.json", result)
            os.rename(working, path + ".failed")
        self.processed.append(name)
        return True

    def _run_session(self, session: str, path: str) -> Dict[str, Any]:
        response = self.route({"op": "hello", "session": session})
        if not response.get("ok"):
            return response
        chunk: List[str] = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                chunk.append(line)
                if len(chunk) >= CHUNK_LINES:
                    response = self.route({"op": "events",
                                           "session": session,
                                           "lines": chunk})
                    if not response.get("ok"):
                        return response
                    chunk = []
        if chunk:
            response = self.route({"op": "events", "session": session,
                                   "lines": chunk})
            if not response.get("ok"):
                return response
        return self.route({"op": "finish", "session": session})

    @staticmethod
    def _write_json(path: str, doc: Dict[str, Any]) -> None:
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)

"""A small synchronous client for the serve protocol.

Used by the CLI smoke paths, the throughput benchmark, and the tests;
also a reference implementation for anyone writing their own. Every
response is schema-validated
(:func:`repro.obs.schema.validate_serve_response`) before it is
returned, so protocol drift fails loudly at the client boundary.

Failed responses raise :class:`ServeError` carrying the server's
structured error (code, message, event index); callers that want the
raw response can pass ``check=False`` to :meth:`ServeClient.request`.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.exceptions import ReproError
from repro.obs.schema import validate_serve_response
from repro.serve.protocol import MAX_FRAME_BYTES, decode_frame, encode_frame


class ServeError(ReproError):
    """The daemon answered with a structured error."""

    def __init__(self, error: Dict[str, Any]):
        code = error.get("code", "internal")
        super().__init__(f"[{code}] {error.get('message', '')}")
        self.code = code
        self.error = error


class ServeClient:
    """One connection to a daemon, over unix or TCP socket.

    Args:
        path: Unix-domain socket path (mutually exclusive with address).
        address: ``(host, port)`` for TCP.
        timeout: Socket timeout in seconds (None = block forever).
    """

    def __init__(self, path: Optional[str] = None,
                 address: Optional[Tuple[str, int]] = None,
                 timeout: Optional[float] = 30.0):
        if (path is None) == (address is None):
            raise ValueError("pass exactly one of path= or address=")
        if path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(path)
        else:
            assert address is not None
            self._sock = socket.create_connection(address, timeout=timeout)
        self._reader = self._sock.makefile("rb")

    # ------------------------------------------------------------------
    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    # ------------------------------------------------------------------
    def request(self, doc: Dict[str, Any], check: bool = True) -> Dict[str, Any]:
        """Send one request, read and validate one response."""
        self._sock.sendall(encode_frame(doc))
        line = self._reader.readline(MAX_FRAME_BYTES + 2)
        if not line:
            raise ServeError({"code": "internal",
                              "message": "connection closed by daemon"})
        response = decode_frame(line)
        validate_serve_response(response)
        if check and not response.get("ok"):
            raise ServeError(response["error"])
        return response

    # ------------------------------------------------------------------
    # Convenience wrappers (one per protocol op)
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def hello(self, session: str, config: Optional[Dict[str, Any]] = None,
              resume: Optional[str] = None) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"op": "hello", "session": session}
        if config is not None:
            doc["config"] = config
        if resume is not None:
            doc["resume"] = resume
        return self.request(doc)

    def events(self, session: str, lines: Iterable[str]) -> Dict[str, Any]:
        return self.request({"op": "events", "session": session,
                             "lines": list(lines)})

    def status(self, session: str) -> Dict[str, Any]:
        return self.request({"op": "status", "session": session})["status"]

    def races(self, session: str) -> Dict[str, Any]:
        return self.request({"op": "races", "session": session})["races"]

    def finish(self, session: str) -> Dict[str, Any]:
        return self.request({"op": "finish", "session": session})

    def checkpoint(self, session: str,
                   path: Optional[str] = None) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"op": "checkpoint", "session": session}
        if path is not None:
            doc["path"] = path
        return self.request(doc)

    def sessions(self) -> List[Dict[str, Any]]:
        return self.request({"op": "sessions"})["sessions"]

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"op": "shutdown"})

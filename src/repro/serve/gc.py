"""Windowed metadata GC for streaming sessions.

Every ``gc_window`` accepted events, the session calls :func:`collect`,
which retires detector metadata no live thread can ever observe again:

* access-history entries (per-variable last read/write per thread),
* rule-(a) source-clock entries (critical-section and volatile tables),
* rule-(b) critical-section records and the cursors of dead observers,
* the per-thread clocks, snapshots, and caches of *joined* threads.

The criterion (see :class:`repro.analysis.base.GCFloors`): an entry
attributed to thread ``u`` at thread-local time ``t`` retires once every
live thread's cover clock has ``u``'s component at ``>= t`` — then no
future race scan or join can be affected by it, so the GC-on and GC-off
runs produce bit-identical verdicts, racing sets, counters, and DC edge
lists (the differential the tests pin). Soundness additionally requires
a fork-closed stream, which GC-enabled sessions enforce at ingestion.

The GC tick is a pure function of the accepted-event count, so it fires
at the same stream positions regardless of how the client chunked its
frames — the property that makes checkpoint/resume deterministic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.analysis.base import Detector, GCFloors
from repro.core.events import Tid

if TYPE_CHECKING:  # pragma: no cover
    from repro.serve.streaming import StreamingTrace


def _cover(detector: Detector, tid: Tid) -> Dict[Tid, int]:
    """Component-wise min over the detector's cover clocks for ``tid``.

    Components absent from any cover clock min to zero and are simply
    omitted (``GCFloors`` treats missing as 0).
    """
    clocks = detector.gc_cover_clocks(tid)
    if not clocks:
        return {}
    first = clocks[0]
    cover: Dict[Tid, int] = {u: t for u, t in first}
    for clock in clocks[1:]:
        for u in list(cover):
            other = clock.get(u)
            if other < cover[u]:
                if other:
                    cover[u] = other
                else:
                    del cover[u]
    return cover


def collect(trace: "StreamingTrace", detectors: "tuple[Detector, ...]") -> int:
    """Run one GC pass over every detector; returns entries retired.

    A live thread with no clock yet (e.g. forked before its parent's
    snapshot survived — impossible today, but belt and braces) maps to
    an empty cover, pinning every floor at zero rather than silently
    loosening the criterion.
    """
    dead = trace.dead_tids()
    live = trace.cover_tids()
    joined = trace.joined_tids()
    retired = 0
    for detector in detectors:
        covers = {tid: _cover(detector, tid) for tid in live}
        floors = GCFloors(covers, dead)
        retired += detector.gc_collect(floors)
        for tid in joined:
            detector.gc_drop_thread(tid)
    return retired

"""One streaming analysis session.

A session is the unit of sharding: one client stream, one
:class:`~repro.serve.streaming.StreamingTrace`, one set of reference
HB/WCP/DC detectors fed event by event as chunks arrive, with windowed
metadata GC (:mod:`repro.serve.gc`) bounding live state. Finishing a
session hands the materialised trace to the shared batch tail
(:meth:`repro.vindicate.vindicator.Vindicator.finalize`), so the final
report is bit-identical to single-shot ``vindicator analyze`` of the
same events — for any chunking, because every per-event effect
(detector updates, the determinism hash, the GC tick) is a pure
function of the accepted-event prefix, never of frame boundaries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, List, Optional, cast

from repro.analysis.dc import DCDetector
from repro.analysis.hb import HBDetector
from repro.analysis.races import RaceReport, classify
from repro.analysis.wcp import WCPDetector
from repro.core import kernels
from repro.core.events import Event
from repro.core.trace import Trace
from repro.serve import gc as serve_gc
from repro.serve.protocol import ProtocolError
from repro.serve.streaming import StreamingTrace
from repro.traces.io import parse_event_line
from repro.traces.packed import TraceHasher
from repro.vindicate.vindicator import (Vindicator, _analysis_doc,
                                        _race_doc)

#: Default GC window: one metadata sweep per this many accepted events.
#: Small enough to bound a pathological stream's live state, large
#: enough that the sweep cost is noise against per-event analysis.
DEFAULT_GC_WINDOW = 4096


@dataclass
class SessionConfig:
    """Per-session knobs, carried in ``hello`` and in checkpoints.

    Attributes:
        name: Client-chosen session name (unique per daemon).
        gc_window: Run metadata GC every this many accepted events;
            ``0`` disables GC entirely.
        build_graph: Maintain the DC constraint graph while streaming
            (required to ``finish``; sessions that only ever ask for
            online ``races`` can turn it off to keep memory flat).
        vindicate_all: Vindicate every DC-race at finish, not just
            DC-only ones.
        policy: Witness-constructor policy for vindication.
        transitive_force: See :attr:`repro.analysis.base.Detector.transitive_force`.
        require_fork_closed: Reject threads that appear without a fork.
            ``None`` (default) means "required iff GC is on" — the GC
            cover criterion is unsound on non-fork-closed streams, so
            GC-enabled sessions must enforce it at ingestion.
    """

    name: str
    gc_window: int = DEFAULT_GC_WINDOW
    build_graph: bool = True
    vindicate_all: bool = False
    policy: str = "latest"
    transitive_force: bool = True
    require_fork_closed: Optional[bool] = None

    def fork_closed(self) -> bool:
        if self.require_fork_closed is None:
            return self.gc_window > 0
        return self.require_fork_closed

    def to_dict(self) -> Dict[str, Any]:
        return {
            "gc_window": self.gc_window,
            "build_graph": self.build_graph,
            "vindicate_all": self.vindicate_all,
            "policy": self.policy,
            "transitive_force": self.transitive_force,
            "require_fork_closed": self.require_fork_closed,
        }

    @classmethod
    def from_dict(cls, name: str, doc: Dict[str, Any]) -> "SessionConfig":
        config = cls(name=name)
        for key in ("gc_window", "build_graph", "vindicate_all", "policy",
                    "transitive_force", "require_fork_closed"):
            if key in doc:
                setattr(config, key, doc[key])
        if not isinstance(config.gc_window, int) or config.gc_window < 0:
            raise ProtocolError(
                "bad-request",
                f"gc_window must be a non-negative integer, "
                f"got {config.gc_window!r}")
        return config


class SessionAnalyzer:
    """The analysis state machine behind one session.

    Event-at-a-time lifecycle: :meth:`feed_lines` / :meth:`feed_events`
    while the stream is open (each accepted event flows through the
    trace, the determinism hash, and the three detectors, with a GC
    sweep every ``gc_window`` events), :meth:`status` /
    :meth:`races_document` at any point, :meth:`finish` exactly once.
    """

    def __init__(self, config: SessionConfig):
        self.config = config
        self.trace = StreamingTrace(
            require_fork_closed=config.fork_closed(),
            provenance={"kind": "serve", "session": config.name})
        self.hasher = TraceHasher()
        self.hb = HBDetector()
        self.wcp = WCPDetector()
        self.dc = DCDetector(build_graph=config.build_graph)
        self._detectors = (self.hb, self.wcp, self.dc)
        for detector in self._detectors:
            detector.transitive_force = config.transitive_force
            # StreamingTrace duck-types the Trace surface the online
            # loop touches (local_time / held_locks / len / threads).
            detector.begin_trace(cast(Trace, self.trace))
        self.gc_runs = 0
        self.gc_retired = 0
        self.analysis_seconds = 0.0
        self.report_document: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.report_document is not None

    def _check_open(self) -> None:
        if self.finished:
            raise ProtocolError(
                "session-finished",
                f"session {self.config.name!r} is already finished")

    def feed_lines(self, lines: Iterable[str]) -> int:
        """Parse and accept text-format event lines; returns the number
        of events accepted (blank/comment lines parse to nothing).

        The whole frame is parsed before any event is accepted, so a
        syntax error rejects the frame *atomically* — the client can fix
        the line and resend without resynchronising. (Structural errors
        are different: they surface mid-feed at their event index, and
        everything before that index stays accepted, exactly as a batch
        load would have.)
        """
        self._check_open()
        base = len(self.trace)
        events: List[Event] = []
        for number, line in enumerate(lines, start=1):
            event = parse_event_line(line, eid=base + len(events),
                                     line_number=number)
            if event is not None:
                events.append(event)
        return self.feed_events(events)

    def feed_events(self, events: Iterable[Event]) -> int:
        """Accept already-parsed events (checkpoint replay path)."""
        self._check_open()
        accepted = 0
        start = time.perf_counter()
        for event in events:
            self._feed_one(event)
            accepted += 1
        self.analysis_seconds += time.perf_counter() - start
        return accepted

    def _feed_one(self, event: Event) -> None:
        self.trace.append(event)       # validates; raises MalformedTraceError
        self.hasher.update(event)
        self.hb.handle(event)
        self.wcp.handle(event)
        self.dc.handle(event)
        # The GC tick is a pure function of the accepted-event count, so
        # it fires at the same stream positions however the client
        # chunked its frames — and identically under checkpoint replay.
        window = self.config.gc_window
        if window and len(self.trace) % window == 0:
            self.gc_retired += serve_gc.collect(self.trace, self._detectors)
            self.gc_runs += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """The session's live counters (``status`` op payload)."""
        return {
            "session": self.config.name,
            "events": len(self.trace),
            "threads": len(self.trace.threads),
            "finished": self.finished,
            "gc_runs": self.gc_runs,
            "gc_retired": self.gc_retired,
            "trace_hash": self.hasher.hexdigest(),
            "kernels": kernels.active_backend(),
            "races": {
                "hb": len(self._races_of(self.hb)),
                "wcp": len(self._races_of(self.wcp)),
                "dc": len(self._races_of(self.dc)),
            },
        }

    @staticmethod
    def _races_of(detector: Any) -> List[Any]:
        report = detector.report
        return [] if report is None else report.races

    def races_document(self) -> Dict[str, Any]:
        """Online race query: the races detected *so far*, DC races
        classified against the current HB/WCP racing sets — without
        mutating any detector state (the stream may keep going)."""
        classified = [
            replace(race, race_class=classify((
                race.first.eid not in self.hb.racing_at.get(race.second.eid, ()),
                race.first.eid not in self.wcp.racing_at.get(race.second.eid, ()),
            )))
            for race in self._races_of(self.dc)
        ]
        assert self.dc.report is not None
        dc_view = RaceReport(relation=self.dc.report.relation,
                             races=classified,
                             counters=dict(self.dc.report.counters))
        assert self.hb.report is not None and self.wcp.report is not None
        return {
            "events": len(self.trace),
            "analyses": {
                "hb": _analysis_doc(self.hb.report),
                "wcp": _analysis_doc(self.wcp.report),
                "dc": _analysis_doc(dc_view),
            },
            "race_classes": {str(cls): len(races) for cls, races
                             in dc_view.by_class().items()},
        }

    # ------------------------------------------------------------------
    # Finish
    # ------------------------------------------------------------------
    def finish(self) -> Dict[str, object]:
        """Materialise the trace and run the shared batch tail; returns
        (and caches) the ``vindicator.analyze/1`` document."""
        if self.report_document is not None:
            return self.report_document
        if not self.config.build_graph:
            raise ProtocolError(
                "bad-request",
                f"session {self.config.name!r} was opened with "
                "build_graph=false and cannot be finished (online "
                "'races' queries remain available)")
        trace = self.trace.to_trace()
        # The streaming DC detector grew its graph lazily from zero;
        # finalize's reachability index sizes itself off the graph, so
        # pad it out to the full event range first.
        graph = self.dc.graph
        assert graph is not None
        if graph.num_events < len(trace):
            graph._grow(len(trace) - 1)
        hb_report = self.hb.finish()
        wcp_report = self.wcp.finish()
        dc_report = self.dc.finish()
        vindicator = Vindicator(
            vindicate_all=self.config.vindicate_all,
            policy=self.config.policy,
            transitive_force=self.config.transitive_force)
        report = vindicator.finalize(
            trace, self.hb, self.wcp, self.dc,
            hb_report, wcp_report, dc_report,
            analysis_seconds=self.analysis_seconds)
        self.report_document = report.to_document()
        return self.report_document


# Re-exported for the shard layer's race documents.
__all__ = ["DEFAULT_GC_WINDOW", "SessionAnalyzer", "SessionConfig",
           "_race_doc"]

"""Streaming analysis service (``vindicator serve``).

Turns the batch Vindicator pipeline into a long-running daemon:

* :mod:`repro.serve.server` — the daemon: unix/TCP listeners, a
  files-as-queues watcher, a live Prometheus ``/metrics`` endpoint,
  and graceful SIGTERM/SIGINT drain with a final checkpoint;
* :mod:`repro.serve.session` — one client session: a
  :class:`~repro.serve.streaming.StreamingTrace` fed incrementally
  through the reference HB/WCP/DC detectors, with windowed metadata GC
  (:mod:`repro.serve.gc`) bounding live state;
* :mod:`repro.serve.shard` — sessions sharded across worker processes
  (the PR-4 fork pool), one shard owning each session end to end;
* :mod:`repro.serve.checkpoint` — checkpoint/resume on the packed
  columnar encoding plus a determinism hash, so a resumed shard
  provably matches an uninterrupted run;
* :mod:`repro.serve.protocol` — the framed NDJSON protocol
  (``vindicator.serve/1``), schema-pinned by :mod:`repro.obs.schema`;
* :mod:`repro.serve.client` — a small client used by the CLI smoke
  jobs, the benchmarks, and the tests.

The load-bearing guarantee, pinned by the differential tests: for any
chunking of the event stream, any worker count, GC on or off, and any
checkpoint/resume kill-point, a finished session's report is
bit-identical to single-shot ``vindicator analyze`` of the same events
(timing/metrics/provenance metadata excepted).
"""

from repro.serve.session import DEFAULT_GC_WINDOW, SessionAnalyzer, SessionConfig
from repro.serve.server import ServeDaemon
from repro.serve.client import ServeClient

__all__ = [
    "DEFAULT_GC_WINDOW",
    "SessionAnalyzer",
    "SessionConfig",
    "ServeDaemon",
    "ServeClient",
]

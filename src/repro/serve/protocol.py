"""The ``vindicator.serve/1`` wire protocol.

Framing is newline-delimited JSON (NDJSON): each request and each
response is one JSON object on one line, capped at
:data:`MAX_FRAME_BYTES`. Requests carry an ``op``; responses echo the
``op``, carry ``ok``, and tag themselves with the schema id. Both
directions are pinned by :mod:`repro.obs.schema`
(:func:`~repro.obs.schema.validate_serve_request` /
:func:`~repro.obs.schema.validate_serve_response`).

Every client-triggerable failure maps to a structured error object
``{"code", "message", ...}`` — a malformed event stream reports the
offending event index, a bad text line its line number — never a raw
Python traceback.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.core.exceptions import (MalformedTraceError, ReproError,
                                   TraceFormatError)
from repro.obs.schema import SERVE_SCHEMA_ID

#: Hard cap on one NDJSON frame (either direction).
MAX_FRAME_BYTES = 4 * 1024 * 1024

#: Stable error codes (part of the ``vindicator.serve/1`` contract).
ERROR_CODES = (
    "bad-frame",        # not valid JSON / not an object / oversized
    "bad-request",      # schema-invalid or semantically bad request
    "unknown-session",  # op referenced a session that does not exist
    "session-exists",   # hello for a session name already open
    "session-finished", # events after finish
    "malformed-trace",  # structurally invalid event stream
    "trace-format",     # unparseable event line
    "checkpoint",       # unreadable/corrupt/mismatched checkpoint
    "too-large",        # frame above MAX_FRAME_BYTES
    "internal",         # unexpected server-side failure
)


class ProtocolError(ReproError):
    """A request that must be answered with a structured error."""

    def __init__(self, code: str, message: str,
                 event_index: Optional[int] = None,
                 line_number: Optional[int] = None):
        super().__init__(message)
        assert code in ERROR_CODES, code
        self.code = code
        self.event_index = event_index
        self.line_number = line_number


def error_fields(exc: BaseException) -> Dict[str, Any]:
    """Map an exception to the wire error object."""
    if isinstance(exc, ProtocolError):
        doc: Dict[str, Any] = {"code": exc.code, "message": str(exc)}
        if exc.event_index is not None:
            doc["event_index"] = exc.event_index
        if exc.line_number is not None:
            doc["line_number"] = exc.line_number
        return doc
    if isinstance(exc, MalformedTraceError):
        return {"code": "malformed-trace", "message": str(exc),
                "event_index": exc.event_index}
    if isinstance(exc, TraceFormatError):
        return {"code": "trace-format", "message": str(exc),
                "line_number": exc.line_number}
    return {"code": "internal", "message": f"{type(exc).__name__}: {exc}"}


def ok_response(op: str, **fields: Any) -> Dict[str, Any]:
    doc: Dict[str, Any] = {"schema": SERVE_SCHEMA_ID, "ok": True, "op": op}
    doc.update(fields)
    return doc


def error_response(op: str, exc: BaseException) -> Dict[str, Any]:
    return {"schema": SERVE_SCHEMA_ID, "ok": False, "op": op,
            "error": error_fields(exc)}


def encode_frame(doc: Dict[str, Any]) -> bytes:
    """One NDJSON frame (including the trailing newline)."""
    data = json.dumps(doc, separators=(",", ":")).encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError("too-large",
                            f"frame of {len(data)} bytes exceeds "
                            f"{MAX_FRAME_BYTES}")
    return data


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one request line into a dict (frame-level checks only)."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError("too-large",
                            f"frame of {len(line)} bytes exceeds "
                            f"{MAX_FRAME_BYTES}")
    try:
        doc = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("bad-frame", f"frame is not valid JSON: {exc}")
    if not isinstance(doc, dict):
        raise ProtocolError("bad-frame", "frame is not a JSON object")
    return doc

"""Checkpoint/resume for streaming sessions.

A checkpoint is the session's accepted-event prefix in the canonical
packed columnar encoding plus a small JSON header (session name, config,
event count, determinism hash)::

    VCKP1\\n | u64le header length | header JSON | packed trace bytes

Resume replays the packed events through a fresh
:class:`~repro.serve.session.SessionAnalyzer` under the *same config*.
Because every per-event effect — detector updates, the determinism
hash, the GC tick — is a pure function of the accepted-event prefix,
the resumed session is in exactly the state the checkpointed one was,
which the hash proves: replay recomputes it and refuses to resume on a
mismatch. This is what makes kill-anywhere/resume produce final reports
bit-identical to an uninterrupted run (the differential the serve tests
pin).

Writes are atomic (temp file + ``os.replace``), so a crash mid-write
leaves the previous checkpoint intact.
"""

from __future__ import annotations

import json
import os
import struct
from typing import Any, Dict, Tuple

from repro.serve.protocol import ProtocolError
from repro.serve.session import SessionAnalyzer, SessionConfig
from repro.traces.packed import from_bytes, to_bytes

CHECKPOINT_MAGIC = b"VCKP1\n"
_LEN = struct.Struct("<Q")

#: Hard cap on the header, far above any real config.
_MAX_HEADER_BYTES = 1 * 1024 * 1024


class CheckpointError(ProtocolError):
    """A checkpoint could not be written, read, or safely resumed."""

    def __init__(self, message: str):
        super().__init__("checkpoint", message)


def checkpoint_bytes(analyzer: SessionAnalyzer) -> bytes:
    """Serialize the session's accepted prefix + identity."""
    header: Dict[str, Any] = {
        "session": analyzer.config.name,
        "config": analyzer.config.to_dict(),
        "events": len(analyzer.trace),
        "trace_hash": analyzer.hasher.hexdigest(),
    }
    header_bytes = json.dumps(header, sort_keys=True,
                              separators=(",", ":")).encode("utf-8")
    payload = to_bytes(analyzer.trace.builder.to_packed())
    return b"".join((CHECKPOINT_MAGIC, _LEN.pack(len(header_bytes)),
                     header_bytes, payload))


def write_checkpoint(analyzer: SessionAnalyzer, path: str) -> int:
    """Atomically write the session's checkpoint; returns bytes written."""
    data = checkpoint_bytes(analyzer)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint {path!r}: {exc}")
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return len(data)


def _parse(data: bytes, source: str) -> Tuple[Dict[str, Any], bytes]:
    if not data.startswith(CHECKPOINT_MAGIC):
        raise CheckpointError(f"{source}: not a checkpoint "
                              f"(bad magic {data[:6]!r})")
    offset = len(CHECKPOINT_MAGIC)
    if len(data) < offset + _LEN.size:
        raise CheckpointError(f"{source}: truncated header length")
    (header_len,) = _LEN.unpack_from(data, offset)
    offset += _LEN.size
    if header_len > _MAX_HEADER_BYTES or offset + header_len > len(data):
        raise CheckpointError(f"{source}: header length {header_len} "
                              "is impossible")
    try:
        header = json.loads(data[offset:offset + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"{source}: corrupt header: {exc}")
    if not isinstance(header, dict):
        raise CheckpointError(f"{source}: header is not an object")
    return header, data[offset + header_len:]


def resume_session(path: str) -> SessionAnalyzer:
    """Rebuild a session from its checkpoint by replay, verifying the
    determinism hash before handing the session back."""
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}")
    header, payload = _parse(data, path)
    name = header.get("session")
    config_doc = header.get("config")
    expected_hash = header.get("trace_hash")
    expected_events = header.get("events")
    if (not isinstance(name, str) or not isinstance(config_doc, dict)
            or not isinstance(expected_hash, str)
            or not isinstance(expected_events, int)):
        raise CheckpointError(f"{path}: header is missing session/"
                              "config/events/trace_hash")
    packed = from_bytes(payload)  # full untrusted-input validation
    trace = packed.unpack()
    if len(trace) != expected_events:
        raise CheckpointError(
            f"{path}: header claims {expected_events} events but the "
            f"payload holds {len(trace)}")
    analyzer = SessionAnalyzer(SessionConfig.from_dict(name, config_doc))
    analyzer.feed_events(trace)
    actual = analyzer.hasher.hexdigest()
    if actual != expected_hash:
        raise CheckpointError(
            f"{path}: determinism hash mismatch after replay "
            f"(checkpoint {expected_hash[:16]}…, replay {actual[:16]}…)")
    return analyzer

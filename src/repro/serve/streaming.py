"""An incrementally built trace that detectors can analyze while it grows.

:class:`StreamingTrace` duck-types the slice of the
:class:`~repro.core.trace.Trace` surface the online detectors touch
during the event loop — ``local_time`` indexing, ``held_locks`` of the
*current* event, ``len``, ``threads`` — while events arrive one at a
time from a client stream. It performs the same structural validation
``Trace`` does at construction, but incrementally, rejecting the first
bad event with a :class:`~repro.core.exceptions.MalformedTraceError`
carrying its stream index (the daemon parses untrusted client bytes, so
nothing may escape as a raw ``KeyError``/``IndexError``).

The accepted events are retained only in packed columnar form
(:class:`~repro.traces.packed.PackedBuilder`, ~17 bytes/event), which
doubles as the checkpoint payload; :meth:`StreamingTrace.to_trace`
materialises a real ``Trace`` when the session finishes and the batch
finalisation pipeline takes over.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.events import Event, EventKind, Target, Tid
from repro.core.exceptions import MalformedTraceError
from repro.core.trace import Trace
from repro.traces.packed import PackedBuilder

_ACCESS_KINDS = (EventKind.READ, EventKind.WRITE,
                 EventKind.VOLATILE_READ, EventKind.VOLATILE_WRITE)


class StreamingTrace:
    """A growing, validated event stream with the online-``Trace`` surface.

    Args:
        require_fork_closed: Reject events from threads that were never
            forked (the first thread ever seen — the root — excepted).
            Metadata GC is sound only on fork-closed streams: a thread
            appearing out of nowhere starts with an empty clock and
            could race with already-retired entries, so GC-enabled
            sessions must run with this on.
    """

    def __init__(self, require_fork_closed: bool = False,
                 provenance: Optional[Dict[str, object]] = None):
        self.require_fork_closed = require_fork_closed
        self.builder = PackedBuilder(provenance=provenance)
        self.provenance: Dict[str, object] = self.builder.provenance
        #: Thread-local 1-based times, indexable by eid (detector surface).
        self.local_time = self.builder.local_time
        self._threads: Dict[Tid, None] = {}  # insertion-ordered set
        self._forked: Set[Tid] = set()
        self._joined: Set[Tid] = set()
        self._ended: Set[Tid] = set()
        self._lock_holder: Dict[Target, Tid] = {}
        self._lock_stacks: Dict[Tid, List[Target]] = {}

    # ------------------------------------------------------------------
    # Trace surface used by the detectors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.builder)

    @property
    def threads(self) -> List[Tid]:
        """Thread ids in order of first appearance."""
        return list(self._threads)

    def held_locks(self, e: Event) -> Tuple[Target, ...]:
        """Locks held by ``thr(e)`` at the *current* event (outermost
        first) — only valid for the most recently appended access, which
        is the only way the detectors use it mid-stream."""
        stack = self._lock_stacks.get(e.tid)
        return () if stack is None else tuple(stack)

    # ------------------------------------------------------------------
    # Liveness bookkeeping consumed by the GC driver
    # ------------------------------------------------------------------
    def dead_tids(self) -> Set[Tid]:
        """Threads that can produce no further events (ended or joined)."""
        return self._ended | self._joined

    def joined_tids(self) -> Set[Tid]:
        return set(self._joined)

    def cover_tids(self) -> List[Tid]:
        """Threads whose clocks constrain retirement: every started
        thread that is not dead, plus forked-but-not-yet-begun children
        (their stored fork snapshots lower-bound their future clocks)."""
        dead = self.dead_tids()
        live = [tid for tid in self._threads if tid not in dead]
        live.extend(tid for tid in self._forked
                    if tid not in self._threads and tid not in self._joined)
        return live

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def append(self, e: Event) -> None:
        """Validate and accept one event (the mirror of ``Trace``'s
        construction-time checks, evaluated online)."""
        eid = len(self.builder)
        if e.eid != eid:
            raise MalformedTraceError(
                f"{e}: event id does not match stream position {eid}",
                event_index=eid)
        tid, kind, target = e.tid, e.kind, e.target
        if tid in self._joined:
            raise MalformedTraceError(
                f"{e}: thread {tid!r} executes after its join", event_index=eid)
        if tid in self._ended:
            raise MalformedTraceError(
                f"{e}: thread {tid!r} executes after its end", event_index=eid)
        new_thread = tid not in self._threads
        if (new_thread and self.require_fork_closed and self._threads
                and tid not in self._forked):
            raise MalformedTraceError(
                f"{e}: thread {tid!r} appears without a fork (this session "
                "runs metadata GC, which requires a fork-closed stream)",
                event_index=eid)

        if kind is EventKind.ACQUIRE:
            if target is None:
                raise MalformedTraceError(
                    f"{e}: acquire without a target", event_index=eid)
            holder = self._lock_holder.get(target)
            if holder is not None:
                raise MalformedTraceError(
                    f"{e}: lock {target!r} already held by thread {holder!r} "
                    "(locks are non-reentrant)", event_index=eid)
        elif kind is EventKind.RELEASE:
            if target is None:
                raise MalformedTraceError(
                    f"{e}: release without a target", event_index=eid)
            holder = self._lock_holder.get(target)
            if holder != tid:
                raise MalformedTraceError(
                    f"{e}: releases lock {target!r} not held by thread {tid!r}",
                    event_index=eid)
            stack = self._lock_stacks[tid]
            if not stack or stack[-1] != target:
                raise MalformedTraceError(
                    f"{e}: releases lock {target!r} out of nesting order",
                    event_index=eid)
        elif kind is EventKind.FORK:
            if target == tid:
                raise MalformedTraceError(
                    f"{e}: thread forks itself", event_index=eid)
            if target in self._forked:
                raise MalformedTraceError(
                    f"{e}: thread {target!r} forked twice", event_index=eid)
            if target in self._threads:
                raise MalformedTraceError(
                    f"{e}: thread {target!r} executes before its fork",
                    event_index=eid)
        elif kind is EventKind.JOIN:
            if target in self._joined:
                raise MalformedTraceError(
                    f"{e}: thread {target!r} joined twice", event_index=eid)
        elif kind in _ACCESS_KINDS:
            if target is None:
                raise MalformedTraceError(
                    f"{e}: access without a target", event_index=eid)
        elif kind is EventKind.BEGIN:
            if not new_thread:
                raise MalformedTraceError(
                    f"{e}: begin is not thread's first event", event_index=eid)

        # All checks passed: commit.
        self.builder.append(e)
        if new_thread:
            self._threads[tid] = None
        if kind is EventKind.ACQUIRE:
            assert target is not None
            self._lock_holder[target] = tid
            self._lock_stacks.setdefault(tid, []).append(target)
        elif kind is EventKind.RELEASE:
            assert target is not None
            del self._lock_holder[target]
            self._lock_stacks[tid].pop()
        elif kind is EventKind.FORK:
            self._forked.add(target)
        elif kind is EventKind.JOIN:
            self._joined.add(target)
        elif kind is EventKind.END:
            self._ended.add(tid)

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def to_trace(self) -> Trace:
        """The accepted events as a real :class:`Trace` (for the batch
        finalisation pipeline). Structural validation is skipped — every
        event was already validated on the way in."""
        return self.builder.to_packed().unpack()

"""The ``vindicator serve`` daemon.

One process, three front doors, N shards:

* a unix-domain socket and/or a TCP socket speaking the framed NDJSON
  protocol (:mod:`repro.serve.protocol`), one thread per connection;
* a files-as-queues watcher (:mod:`repro.serve.watch`) that turns
  ``*.trace`` files dropped into a directory into sessions;
* an HTTP endpoint serving live Prometheus ``/metrics`` and
  ``/healthz``.

Sessions are routed to shards by a stable hash of their name
(:func:`repro.serve.shard.shard_of`), so every request for a session
reaches the same state no matter which listener it came in on. The
shards are created *before* any thread starts: forked workers must
inherit a quiescent, single-threaded parent.

Shutdown (SIGTERM/SIGINT or the ``shutdown`` op) is graceful: listeners
close, in-flight requests finish, and every open unfinished session is
checkpointed (:data:`repro.serve.shard.DRAIN_OP`) so clients can resume
against a fresh daemon with nothing lost.

The daemon keeps a *private*
:class:`~repro.obs.metrics.MetricsRegistry` rather than enabling the
process-global one: detector hot loops stay uninstrumented, and tests
embedding a daemon never leak metrics state across cases.
"""

from __future__ import annotations

import json
import os
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core import kernels
from repro.obs.export import to_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.serve.protocol import (ProtocolError, MAX_FRAME_BYTES,
                                  decode_frame, encode_frame,
                                  error_response, ok_response)
from repro.serve.shard import (DRAIN_OP, InlineShard, ProcessShard,
                               make_shards, shard_of)
from repro.serve.watch import Watcher


class ServeDaemon:
    """The streaming analysis service.

    Args:
        unix_socket: Path for the unix-domain listener (None = off).
        port: TCP port for the socket listener (None = off, 0 = pick an
            ephemeral port, exposed as :attr:`tcp_address` after start).
        host: Bind address for the TCP listener.
        jobs: Shard count; ``1`` keeps everything in-process.
        checkpoint_dir: Where drain/default checkpoints land (created
            on demand; defaults to the current directory).
        watch_dir: Directory to poll for ``*.trace`` drop files.
        metrics_port: HTTP port for ``/metrics`` + ``/healthz``
            (None = off, 0 = ephemeral, exposed as
            :attr:`metrics_address`).
    """

    def __init__(self, unix_socket: Optional[str] = None,
                 port: Optional[int] = None, host: str = "127.0.0.1",
                 jobs: int = 1, checkpoint_dir: Optional[str] = None,
                 watch_dir: Optional[str] = None,
                 metrics_port: Optional[int] = None,
                 watch_poll_seconds: float = 0.2):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if unix_socket is None and port is None and watch_dir is None:
            raise ValueError("serve needs at least one ingestion front "
                             "door: --socket, --port, or --watch")
        self.unix_socket = unix_socket
        self.port = port
        self.host = host
        self.jobs = jobs
        self.checkpoint_dir = checkpoint_dir or os.getcwd()
        self.watch_dir = watch_dir
        self.metrics_port = metrics_port
        self.watch_poll_seconds = watch_poll_seconds

        self.registry = MetricsRegistry()
        # Pre-register every serve counter at zero so a scrape exposes
        # the full set from the first request (absent-vs-zero matters
        # to alerting rules).
        for counter in ("requests_total", "errors_total",
                        "sessions_opened", "sessions_finished",
                        "events_total", "gc_runs_total", "gc_retired_total",
                        "checkpoints_written", "checkpoint_bytes_total"):
            self.registry.add(f"serve.{counter}", 0)
        self.registry.gauge("serve.sessions_open").set(0)
        # 1 when the compiled clock kernels are live in this daemon (the
        # shards inherit its resolved backend), 0 on pure Python — so a
        # fleet's backend mix is visible straight from /metrics.
        self.registry.gauge("serve.kernels_compiled").set(
            1 if kernels.active_backend() == "compiled" else 0)
        self._metrics_lock = threading.Lock()
        #: Last-seen cumulative (events, gc_runs, gc_retired) per
        #: session, for folding shard responses into counters as deltas.
        self._session_marks: Dict[str, Tuple[int, int, int]] = {}
        #: Sessions that have finished (marks are kept for delta folding;
        #: this set keeps the open-sessions gauge honest).
        self._finished_sessions: Set[str] = set()

        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._listeners: List[socket.socket] = []
        self._shards: List["InlineShard | ProcessShard"] = []
        self._http: Optional[ThreadingHTTPServer] = None
        self._watcher: Optional[Watcher] = None
        self.tcp_address: Optional[Tuple[str, int]] = None
        self.metrics_address: Optional[Tuple[str, int]] = None
        self._started = False
        self._drained = False
        self._drain_lock = threading.Lock()
        #: Checkpoints written by the final drain, for operators/tests.
        self.final_checkpoints: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bind listeners, fork shards, start every service thread."""
        assert not self._started, "daemon already started"
        self._started = True
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        # Shards fork before any thread exists (fork safety).
        self._shards = make_shards(self.jobs, self.checkpoint_dir)

        if self.unix_socket is not None:
            if os.path.exists(self.unix_socket):
                os.unlink(self.unix_socket)  # stale socket from a crash
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.bind(self.unix_socket)
            sock.listen(64)
            self._listeners.append(sock)
            self._spawn(self._accept_loop, sock, name="serve-accept-unix")
        if self.port is not None:
            sock = socket.create_server((self.host, self.port))
            self.tcp_address = sock.getsockname()[:2]
            self._listeners.append(sock)
            self._spawn(self._accept_loop, sock, name="serve-accept-tcp")
        if self.metrics_port is not None:
            self._http = _MetricsServer((self.host, self.metrics_port),
                                        daemon=self)
            self.metrics_address = self._http.server_address[:2]
            self._spawn(self._http.serve_forever, name="serve-metrics")
        if self.watch_dir is not None:
            self._watcher = Watcher(self.watch_dir, self.route,
                                    stop=self._stop,
                                    poll_seconds=self.watch_poll_seconds)
            self._spawn(self._watcher.run, name="serve-watch")

    def _spawn(self, target: Any, *args: Any, name: str) -> None:
        thread = threading.Thread(target=target, args=args, name=name,
                                  daemon=True)
        thread.start()
        self._threads.append(thread)

    def serve_forever(self) -> None:
        """Block until :meth:`shutdown` (signal, op, or another thread)."""
        self._stop.wait()

    def shutdown(self) -> None:
        """Graceful drain: stop listeners, checkpoint every open
        unfinished session, stop shards. Idempotent and thread-safe."""
        self._stop.set()
        with self._drain_lock:
            if self._drained:
                return
            self._drained = True
        for sock in self._listeners:
            try:
                sock.close()  # unblocks accept()
            except OSError:  # pragma: no cover
                pass
        if self._http is not None:
            self._http.shutdown()
        for shard in self._shards:
            response = shard.request({"op": DRAIN_OP,
                                      "dir": self.checkpoint_dir})
            for doc in response.get("checkpoints", []):
                self.final_checkpoints.append(doc)
                with self._metrics_lock:
                    self.registry.add("serve.checkpoints_written", 1)
                    self.registry.add("serve.checkpoint_bytes_total",
                                      doc.get("bytes", 0))
        for shard in self._shards:
            shard.close()
        if self.unix_socket is not None and os.path.exists(self.unix_socket):
            os.unlink(self.unix_socket)

    # ------------------------------------------------------------------
    # Request routing (shared by socket connections and the watcher)
    # ------------------------------------------------------------------
    def route(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one decoded request to its owner and fold the
        response into the live metrics."""
        op = request.get("op")
        op_name = op if isinstance(op, str) else "?"
        try:
            if op == "ping":
                response = ok_response("ping")
            elif op == "shutdown":
                # Trip the stop event; the drain itself happens on the
                # thread that owns serve_forever/run, after this
                # response has already been written back.
                self._stop.set()
                response = ok_response("shutdown")
            elif op == "sessions":
                merged: List[Dict[str, Any]] = []
                for shard in self._shards:
                    doc = shard.request({"op": "sessions"})
                    if doc.get("ok"):
                        merged.extend(doc.get("sessions", []))
                response = ok_response("sessions", sessions=merged)
            else:
                session = request.get("session")
                if not isinstance(session, str) or not session:
                    raise ProtocolError(
                        "bad-request",
                        f"op {op_name!r} requires a 'session' string")
                shard = self._shards[shard_of(session, self.jobs)]
                response = shard.request(request)
        except Exception as exc:  # noqa: BLE001 — becomes a wire error
            response = error_response(op_name, exc)
        self._observe(request, response)
        return response

    def _observe(self, request: Dict[str, Any],
                 response: Dict[str, Any]) -> None:
        with self._metrics_lock:
            reg = self.registry
            reg.add("serve.requests_total", 1)
            if not response.get("ok"):
                reg.add("serve.errors_total", 1)
                return
            op = response.get("op")
            session = request.get("session")
            if op == "hello":
                reg.add("serve.sessions_opened", 1)
                if isinstance(session, str):
                    self._session_marks[session] = (
                        int(response.get("events", 0)), 0, 0)
                reg.gauge("serve.sessions_open").set(
                    len(self._session_marks) - len(self._finished_sessions))
            elif op in ("events", "status"):
                doc = response if op == "events" else response.get("status", {})
                if isinstance(session, str) and isinstance(doc, dict):
                    events = int(doc.get("events", 0))
                    gc_runs = int(doc.get("gc_runs", 0))
                    gc_retired = int(doc.get("gc_retired", 0))
                    last = self._session_marks.get(session, (0, 0, 0))
                    reg.add("serve.events_total", max(0, events - last[0]))
                    reg.add("serve.gc_runs_total", max(0, gc_runs - last[1]))
                    reg.add("serve.gc_retired_total",
                            max(0, gc_retired - last[2]))
                    self._session_marks[session] = (events, gc_runs,
                                                    gc_retired)
            elif op == "finish":
                # finish is idempotent at the session layer; count (and
                # close the gauge for) each session only once.
                if isinstance(session, str) \
                        and session not in self._finished_sessions:
                    self._finished_sessions.add(session)
                    reg.add("serve.sessions_finished", 1)
                    reg.gauge("serve.sessions_open").set(
                        len(self._session_marks)
                        - len(self._finished_sessions))
            elif op == "checkpoint":
                reg.add("serve.checkpoints_written", 1)
                reg.add("serve.checkpoint_bytes_total",
                        int(response.get("bytes", 0)))

    # ------------------------------------------------------------------
    # Socket front door
    # ------------------------------------------------------------------
    def _accept_loop(self, listener: socket.socket) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = listener.accept()
            except OSError:  # listener closed by shutdown
                return
            self._spawn(self._serve_connection, conn, name="serve-conn")

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            reader = conn.makefile("rb")
            while not self._stop.is_set():
                try:
                    line = reader.readline(MAX_FRAME_BYTES + 2)
                except OSError:
                    return
                if not line:
                    return
                if line.strip() == b"":
                    continue
                try:
                    request = decode_frame(line)
                except ProtocolError as exc:
                    response = error_response("?", exc)
                    self._observe({}, response)
                else:
                    response = self.route(request)
                try:
                    conn.sendall(encode_frame(response))
                except (ProtocolError, OSError):
                    return


class _MetricsServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], daemon: ServeDaemon):
        self.serve_daemon = daemon
        super().__init__(address, _MetricsHandler)


class _MetricsHandler(BaseHTTPRequestHandler):
    server: _MetricsServer

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        daemon = self.server.serve_daemon
        if self.path.split("?")[0] == "/metrics":
            with daemon._metrics_lock:
                body = to_prometheus(daemon.registry)
            self._reply(200, body, "text/plain; version=0.0.4")
        elif self.path.split("?")[0] == "/healthz":
            self._reply(200, json.dumps({"status": "ok",
                                         "jobs": daemon.jobs}) + "\n",
                        "application/json")
        else:
            self._reply(404, "not found\n", "text/plain")

    def _reply(self, code: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # scrapes should not spam the daemon's stderr

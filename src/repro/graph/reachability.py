"""Memoizing reachability engine for the constraint graph.

VindicateRace's offline phase (Algorithm 1) is dominated by reachability
queries over ``G``: AddConstraints computes the race region
(``ancestors`` of the racing pair) once per fixpoint round, every
worklist edge triggers an ``ancestors``/``descendants`` pair plus a batch
of ``reaches`` checks for candidate LS constraints, and each round ends
with a cycle search over the race region. A fresh BFS per query makes
the whole phase O(queries × (V + E)).

:class:`ReachabilityIndex` memoizes *per-node strict reachability
closures* as bitsets — plain Python ints with bit ``i`` set when event
``i`` is reachable through at least one edge — so that

* repeated queries between graph mutations are answered from cache, and
* a cache miss reuses every already-cached closure it reaches: the BFS
  stops expanding at a node whose closure is known and ORs the whole
  bitset in (one C-speed big-int operation instead of re-walking the
  subgraph).

Closures are *strict* (a node appears in its own closure only when it
lies on a cycle), matching :meth:`ConstraintGraph.descendants` /
:meth:`~ConstraintGraph.ancestors` semantics exactly, and are keyed by
``(node, window)`` so the paper's event-window optimisation
(Section 6.1) gets its own cache entries.

Invalidation is generation-based with selective pruning:
:class:`ConstraintGraph` bumps :attr:`~ConstraintGraph.generation` on
every edge add/remove and journals the mutation, and the index catches
up lazily on the next query, dropping only the closures a mutated edge
can actually affect — forward closures containing the edge's source,
backward closures containing its sink (see :meth:`_sync` for the
soundness argument). Query bursts between AddConstraints' tagged-edge
insertions therefore keep most of the cache warm, and untagging a
finished race's edges leaves the untouched remainder of the graph
cached for the next race. The ``hits`` / ``misses`` /
``invalidations`` counters are surfaced through the detector stats so
benchmarks can report cache behaviour.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.graph.constraint_graph import ConstraintGraph

#: One cache per window key (None or an (lo, hi) tuple); inside, plain
#: int node keys — tuple hashing on the per-edge hot path is measurable.
_Window = Optional[Tuple[int, int]]
_Cache = Dict[int, int]

#: Shared table of single-bit masks, grown on demand. ``_BITS[i]`` is
#: ``1 << i`` — indexing reuses the same immutable int instead of
#: allocating a fresh multi-word big-int per edge visit.
_BITS = [1]


def _bit_table(n: int):
    bits = _BITS
    while len(bits) < n:
        bits.append(1 << len(bits))
    return bits


#: Bit positions set in each byte value, for fast mask expansion.
_BYTE_BITS = [tuple(i for i in range(8) if b >> i & 1) for b in range(256)]


def mask_to_set(mask: int) -> Set[int]:
    """Expand a bitset into the set of positions of its set bits.

    Walks the mask bytewise with a per-byte position table — much
    cheaper than repeated ``mask & -mask`` extraction, which pays an
    O(words) big-int operation (and an allocation) per set bit.
    """
    result: Set[int] = set()
    if not mask:
        return result
    base = 0
    byte_bits = _BYTE_BITS
    for byte in mask.to_bytes((mask.bit_length() + 7) // 8, "little"):
        if byte:
            for offset in byte_bits[byte]:
                result.add(base + offset)
        base += 8
    return result


class ReachabilityIndex:
    """Window-aware memoized reachability over one :class:`ConstraintGraph`.

    The index never mutates the graph; it watches
    :attr:`ConstraintGraph.generation` and discards every cached closure
    when the graph changes. One index instance is intended to be shared
    across all queries of one vindication run (and across races — the
    cache simply refills after each race's tagged edges are removed).
    """

    #: When True, a cache miss on an *unwindowed* query runs one SCC
    #: pass over the whole reachable region and caches every node's
    #: closure — best when many distinct roots inside one region are
    #: queried, as AddConstraints' worklist does over a race region.
    #: Windowed misses always cache only the queried root: windows are
    #: short-lived (they grow as constraints are added) and their
    #: regions small, so per-root walks that absorb cached closures win
    #: there.
    region_caching = True

    def __init__(self, graph: ConstraintGraph):
        self.graph = graph
        self._generation = graph.generation
        self._journal_pos = graph.journal_position
        self._fwd: Dict[_Window, _Cache] = {}
        self._bwd: Dict[_Window, _Cache] = {}
        #: Materialised query results: (roots, include_roots, window,
        #: forward) -> set. Returned as copies (callers mutate results).
        self._results: Dict[Tuple, Set[int]] = {}
        #: Queries answered from a cached result or closure.
        self.hits = 0
        #: Closure computations (Tarjan region passes).
        self.misses = 0
        #: Cache invalidations triggered by a graph generation change
        #: (selective prune for edge adds, full flush for removals).
        self.invalidations = 0

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def _sync(self) -> None:
        """Catch up with graph mutations since the last query.

        Both edge insertions and removals invalidate *selectively*: a
        mutation of edge ``src → dst`` can only change a forward closure
        whose node is ``src`` or contains ``src`` — no other closure
        ever traverses that edge, and any cycle the edge creates or
        breaks consists of nodes that reach ``src`` — and symmetrically
        a backward closure whose node is/contains ``dst``. Everything
        else stays cached. This is what makes the index pay off under
        VindicateRace's churn: AddConstraints' tagged-edge insertions
        land between query bursts, and untagging a finished race's
        edges restores the pristine graph without discarding the
        closures the race never touched, so later races start warm.
        A full flush happens only when the graph's bounded journal has
        overflowed since the last query.
        """
        graph = self.graph
        if self._generation == graph.generation:
            return
        self._generation = graph.generation
        entries, self._journal_pos = graph.mutations_since(self._journal_pos)
        if not (self._fwd or self._bwd or self._results):
            return
        self.invalidations += 1
        if entries is None:
            self._fwd.clear()
            self._bwd.clear()
            self._results.clear()
            return
        self._results.clear()
        bits = _bit_table(self.graph.num_events)
        src_mask = 0
        dst_mask = 0
        srcs = set()
        dsts = set()
        for _, src, dst in entries:
            src_mask |= bits[src]
            dst_mask |= bits[dst]
            srcs.add(src)
            dsts.add(dst)
        self._prune(self._fwd, src_mask, srcs)
        self._prune(self._bwd, dst_mask, dsts)

    @staticmethod
    def _prune(caches: Dict[_Window, _Cache], mask: int,
               nodes: Set[int]) -> None:
        """Drop every closure whose node is in ``nodes`` or whose bitset
        intersects ``mask``; surviving entries are unaffected by the
        edges the mask stands for, so they remain exact."""
        for cache in caches.values():
            dead = [node for node, closure in cache.items()
                    if closure & mask or node in nodes]
            for node in dead:
                del cache[node]

    # ------------------------------------------------------------------
    # Core closure computation
    # ------------------------------------------------------------------
    def _closure(self, node: int, forward: bool,
                 window: Optional[Tuple[int, int]]) -> int:
        """The strict reachability closure of ``node`` as a bitset.

        Matches :meth:`ConstraintGraph._bfs` seeded with one root: the
        root expands regardless of the window, discovered nodes are
        filtered by it, and the root's own bit is set only when an edge
        inside the window leads back to it.

        A miss walks the window-restricted region, *absorbing* every
        already-cached closure it meets: when the walk discovers a node
        whose closure is cached, that whole bitset is ORed in (one
        C-speed big-int operation) and the subtree is never expanded.
        Absorption is exact — a cached closure of ``w`` covers every
        in-window node reachable from anything it contains, including
        cycle members — so overlapping queries share work without the
        index ever paying for closures nobody asks about.
        """
        caches = self._fwd if forward else self._bwd
        cache = caches.get(window)
        if cache is None:
            cache = caches[window] = {}
        cached = cache.get(node)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        adj = (self.graph.successor_set if forward
               else self.graph.predecessor_set)
        if window is not None:
            lo, hi = window
        else:
            # Node ids are always < num_events, so a full-range window
            # is equivalent to no window — one code path, no branch.
            lo, hi = 0, self.graph.num_events
        bits = _bit_table(self.graph.num_events)

        if self.region_caching and window is None:
            return self._closure_region(node, adj, cache, lo, hi, bits)
        closure = 0
        stack = [node]
        cache_get = cache.get
        while stack:
            for w in adj(stack.pop()):
                if w < lo or w > hi:
                    continue
                bit = bits[w]
                if closure & bit:
                    # Already discovered (or covered by an absorbed
                    # closure, which also covers everything below it).
                    continue
                sub = cache_get(w)
                if sub is not None:
                    closure |= bit | sub
                else:
                    closure |= bit
                    stack.append(w)
        cache[node] = closure
        return closure

    def _closure_region(self, node: int, adj, cache: _Cache,
                        lo: int, hi: int, bits) -> int:
        """Whole-region variant of the closure miss path: one iterative
        Tarjan SCC pass over the window-restricted region reachable from
        ``node`` computes and caches the closure of *every* region node,
        in reverse topological order of the condensation — each closure
        is the OR of its out-neighbours' already-final closures. Later
        queries rooted anywhere in the region are O(1) lookups, which is
        the dominant access pattern of AddConstraints' worklist (many
        distinct roots inside one race region)."""
        index: Dict[int, int] = {node: 0}
        low: Dict[int, int] = {node: 0}
        counter = 1
        on_stack = {node}
        scc_stack = [node]
        call_stack = [(node, iter(adj(node)))]
        while call_stack:
            v, it = call_stack[-1]
            advanced = False
            for w in it:
                if w < lo or w > hi:
                    continue
                if w not in index:
                    if w in cache:
                        # Already closed in an earlier pass; its closure
                        # is final and cannot share a cycle with v (or
                        # it would have been on v's stack back then).
                        continue
                    index[w] = low[w] = counter
                    counter += 1
                    on_stack.add(w)
                    scc_stack.append(w)
                    call_stack.append((w, iter(adj(w))))
                    advanced = True
                    break
                if w in on_stack and index[w] < low[v]:
                    low[v] = index[w]
            if advanced:
                continue
            call_stack.pop()
            if call_stack:
                parent = call_stack[-1][0]
                if low[v] < low[parent]:
                    low[parent] = low[v]
            if low[v] == index[v]:
                # ``v`` roots an SCC: pop it and finalise its closure.
                members = []
                while True:
                    w = scc_stack.pop()
                    on_stack.discard(w)
                    members.append(w)
                    if w == v:
                        break
                scc_mask = 0
                if len(members) > 1:
                    # Every member lies on a cycle: strict closures
                    # include the whole component.
                    for m in members:
                        scc_mask |= bits[m]
                member_set = set(members)
                closure = scc_mask
                for m in members:
                    for w in adj(m):
                        if w in member_set or w < lo or w > hi:
                            continue
                        # Cross-SCC edges point at finished components.
                        closure |= bits[w] | cache[w]
                for m in members:
                    cache[m] = closure
        return cache[node]

    def _union(self, roots: Iterable[int], forward: bool,
               window: Optional[Tuple[int, int]]) -> int:
        mask = 0
        for root in roots:
            mask |= self._closure(root, forward, window)
        return mask

    # ------------------------------------------------------------------
    # Query API (mirrors ConstraintGraph's)
    # ------------------------------------------------------------------
    def _query(self, roots: Iterable[int], forward: bool,
               include_roots: bool,
               within: Optional[Tuple[int, int]]) -> Set[int]:
        self._sync()
        roots = tuple(roots)
        key = (roots, include_roots, within, forward)
        cached = self._results.get(key)
        if cached is not None:
            self.hits += 1
            # Callers own (and mutate) the returned set.
            return cached.copy()
        result = mask_to_set(self._union(roots, forward, within))
        if include_roots:
            result.update(roots)
        self._results[key] = result
        return result.copy()

    def descendants(self, roots: Iterable[int],
                    include_roots: bool = False,
                    within: Optional[Tuple[int, int]] = None) -> Set[int]:
        """All nodes reachable from ``roots`` forward; see
        :meth:`ConstraintGraph.descendants`."""
        return self._query(roots, True, include_roots, within)

    def ancestors(self, roots: Iterable[int],
                  include_roots: bool = False,
                  within: Optional[Tuple[int, int]] = None) -> Set[int]:
        """All nodes from which some root is reachable; see
        :meth:`ConstraintGraph.ancestors`."""
        return self._query(roots, False, include_roots, within)

    def descendants_mask(self, roots: Iterable[int],
                         within: Optional[Tuple[int, int]] = None) -> int:
        """Strict forward closure of ``roots`` as a raw bitset (no set
        materialisation — for membership-test-only callers)."""
        self._sync()
        return self._union(roots, True, within)

    def ancestors_mask(self, roots: Iterable[int],
                       within: Optional[Tuple[int, int]] = None) -> int:
        """Strict backward closure of ``roots`` as a raw bitset."""
        self._sync()
        return self._union(roots, False, within)

    def reaches(self, src: int, dst: int) -> bool:
        """``src ⇝_G dst``: strict reachability (at least one edge).

        ``reaches(x, x)`` is True exactly when ``x`` lies on a cycle,
        because the strict closure contains its own root only then.
        """
        self._sync()
        return bool(self._closure(src, True, None) & (1 << dst))

    # ------------------------------------------------------------------
    # Checkpointing and state transfer
    # ------------------------------------------------------------------
    def checkpoint(self) -> Tuple:
        """Capture the cache state for :meth:`restore`.

        Used by :func:`repro.vindicate.vindicator.vindicate_race` to
        bracket one race's tagged-edge churn: the constraint graph's
        edge *set* is identical before AddConstraints and after the
        race's edges are untagged, so restoring the checkpointed caches
        is exact — and strictly better than :meth:`_sync`'s selective
        prune, which must drop every closure the temporary edges
        touched even though the final graph never contained them.

        Closure bitsets are immutable ints and result sets are only
        ever handed out as copies, so shallow per-window dict copies
        suffice. The hit/miss/invalidation counters are *not* part of
        the checkpoint: they keep accumulating across races.
        """
        self._sync()
        return (
            self._generation,
            self._journal_pos,
            {w: dict(c) for w, c in self._fwd.items()},
            {w: dict(c) for w, c in self._bwd.items()},
            dict(self._results),
        )

    def restore(self, cp: Tuple) -> None:
        """Merge a :meth:`checkpoint` back in.

        Only sound when the graph's edge set equals what it was at
        checkpoint time (the vindication loop guarantees this: every
        edge added for a race is removed in its ``finally``).

        This is a *merge*, not a reset: first the normal :meth:`_sync`
        prune runs, keeping every closure computed since the checkpoint
        that the churned edges never touched (those stay exact for the
        restored graph — this is how the cache warms up across races);
        then the checkpointed entries the prune had to drop are
        resurrected. The result is a strict superset of what selective
        pruning alone would leave.
        """
        _, _, fwd, bwd, results = cp
        self._sync()
        for source, target in ((fwd, self._fwd), (bwd, self._bwd)):
            for window, cache in source.items():
                current = target.setdefault(window, {})
                for node, closure in cache.items():
                    if node not in current:
                        current[node] = closure
        for key, result in results.items():
            if key not in self._results:
                self._results[key] = result

    def export_state(self) -> Dict[str, Dict[int, int]]:
        """Serialize the unwindowed closure caches for another process.

        Returns a picklable ``{"fwd": {node: bitset}, "bwd": ...}``
        payload. Windowed caches and materialised result sets are
        deliberately left out: windows are race-specific and short-lived,
        while the unwindowed closures are what AddConstraints re-derives
        from scratch in a cold index.
        """
        self._sync()
        return {
            "fwd": dict(self._fwd.get(None, {})),
            "bwd": dict(self._bwd.get(None, {})),
        }

    def import_state(self, state: Dict[str, Dict[int, int]]) -> None:
        """Adopt closures exported by :meth:`export_state`.

        The importing index must be bound to a graph with the *same
        edge set* as the exporter's (the parallel engine rebuilds the
        graph from its serialized arrays before importing).
        """
        self._sync()
        if state.get("fwd"):
            self._fwd.setdefault(None, {}).update(state["fwd"])
        if state.get("bwd"):
            self._bwd.setdefault(None, {}).update(state["bwd"])

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Cache counters, suitable for ``Detector.bump`` accumulation."""
        return {
            "reach_hits": self.hits,
            "reach_misses": self.misses,
            "reach_invalidations": self.invalidations,
        }

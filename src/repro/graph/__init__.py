"""The constraint graph used by DC analysis and VindicateRace."""

from repro.graph.constraint_graph import ConstraintGraph

__all__ = ["ConstraintGraph"]

"""The constraint graph used by DC analysis and VindicateRace, plus the
memoizing reachability engine that accelerates its hot-path queries."""

from repro.graph.constraint_graph import ConstraintGraph
from repro.graph.reachability import ReachabilityIndex

__all__ = ["ConstraintGraph", "ReachabilityIndex"]

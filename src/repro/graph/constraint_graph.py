"""The constraint graph ``G`` (Section 5.1).

Nodes are trace events (identified by eid); edges are ordering constraints
on any correctly reordered trace. DC analysis populates the initial graph
so that reachability coincides with DC ordering:

* program-order edges chain each thread's events;
* rule (a) edges run from the release of a critical section to a later
  conflicting access in another critical section on the same lock;
* rule (b) edges order releases of the same lock;
* hard edges cover fork/join, volatile ordering, and forced ordering
  after a detected race.

VindicateRace then temporarily adds *consecutive-event* and
*lock-semantics* edges; those are tracked by tag so they can be removed
afterwards, leaving ``G`` pristine for the next race (Section 6.1,
"VindicateRace").

Edge lists are kept in both directions because AddConstraints queries
direct predecessors of the racing events, and reachability is needed both
forward (descendants) and backward (ancestors).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

Edge = Tuple[int, int]


class ConstraintGraph:
    """A directed graph over event ids with tagged, removable edges."""

    def __init__(self, num_events: int = 0):
        self._succ: Dict[int, List[int]] = {}
        self._pred: Dict[int, List[int]] = {}
        self._edges: Set[Edge] = set()
        self.num_events = num_events

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_edge(self, src: int, dst: int) -> bool:
        """Add edge ``src -> dst``. Returns False if already present."""
        if src == dst:
            raise ValueError(f"self edge on event {src}")
        edge = (src, dst)
        if edge in self._edges:
            return False
        self._edges.add(edge)
        self._succ.setdefault(src, []).append(dst)
        self._pred.setdefault(dst, []).append(src)
        if src >= self.num_events:
            self.num_events = src + 1
        if dst >= self.num_events:
            self.num_events = dst + 1
        return True

    def remove_edge(self, src: int, dst: int) -> None:
        """Remove an edge previously added with :meth:`add_edge`."""
        edge = (src, dst)
        if edge not in self._edges:
            return
        self._edges.remove(edge)
        self._succ[src].remove(dst)
        self._pred[dst].remove(src)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def has_edge(self, src: int, dst: int) -> bool:
        return (src, dst) in self._edges

    def successors(self, node: int) -> List[int]:
        return self._succ.get(node, [])

    def predecessors(self, node: int) -> List[int]:
        return self._pred.get(node, [])

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------
    def descendants(self, roots: Iterable[int],
                    include_roots: bool = False,
                    within: Optional[Tuple[int, int]] = None) -> Set[int]:
        """All nodes reachable from ``roots`` by following edges forward.

        With ``within=(lo, hi)``, traversal is restricted to nodes whose
        event id lies in the window (the paper's Lamport-timestamp window
        optimisation for AddConstraints)."""
        return self._bfs(roots, self._succ, include_roots, within)

    def ancestors(self, roots: Iterable[int],
                  include_roots: bool = False,
                  within: Optional[Tuple[int, int]] = None) -> Set[int]:
        """All nodes from which some root is reachable (``e ⇝_G root``)."""
        return self._bfs(roots, self._pred, include_roots, within)

    @staticmethod
    def _bfs(roots: Iterable[int], adjacency: Dict[int, List[int]],
             include_roots: bool,
             within: Optional[Tuple[int, int]] = None) -> Set[int]:
        roots = list(roots)
        seen: Set[int] = set()
        queue = deque(roots)
        while queue:
            node = queue.popleft()
            for nxt in adjacency.get(node, ()):
                if nxt in seen:
                    continue
                if within is not None and not within[0] <= nxt <= within[1]:
                    continue
                seen.add(nxt)
                queue.append(nxt)
        # Strict reachability: a root belongs to the result only if it was
        # re-reached through an edge (i.e. it lies on a cycle) — unless the
        # caller asked for reflexive reachability.
        if include_roots:
            seen.update(roots)
        return seen

    def reaches(self, src: int, dst: int) -> bool:
        """``src ⇝_G dst``: strict reachability (at least one edge)."""
        if src == dst:
            # A node reaches itself only through a cycle.
            return self._on_cycle(src)
        seen = {src}
        queue = deque([src])
        while queue:
            node = queue.popleft()
            for nxt in self._succ.get(node, ()):
                if nxt == dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return False

    def _on_cycle(self, node: int) -> bool:
        seen: Set[int] = set()
        queue = deque(self._succ.get(node, ()))
        while queue:
            cur = queue.popleft()
            if cur == node:
                return True
            if cur in seen:
                continue
            seen.add(cur)
            queue.extend(self._succ.get(cur, ()))
        return False

    def find_cycle_reaching(self, targets: Set[int]) -> Optional[List[int]]:
        """Find a cycle among nodes that reach one of ``targets``
        (Algorithm 1, lines 20–21: a cycle is only disqualifying when it
        constrains the racing events). Returns the cycle's nodes or None.

        Implemented as an iterative DFS with colouring over the subgraph
        induced by the ancestors of ``targets`` (targets included).
        """
        region = self.ancestors(targets, include_roots=True)
        region.update(targets)
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[int, int] = {}
        parent: Dict[int, int] = {}
        for root in region:
            if color.get(root, WHITE) is not WHITE:
                continue
            stack: List[Tuple[int, Iterator[int]]] = [(root, iter(self._succ.get(root, ())))]
            color[root] = GRAY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if nxt not in region:
                        continue
                    c = color.get(nxt, WHITE)
                    if c == GRAY:
                        # Found a back edge: reconstruct the cycle.
                        cycle = [nxt, node]
                        cur = node
                        while cur != nxt and cur in parent:
                            cur = parent[cur]
                            cycle.append(cur)
                        return cycle
                    if c == WHITE:
                        color[nxt] = GRAY
                        parent[nxt] = node
                        stack.append((nxt, iter(self._succ.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None

    def copy(self) -> "ConstraintGraph":
        clone = ConstraintGraph(self.num_events)
        for src, dst in self._edges:
            clone.add_edge(src, dst)
        return clone

    def __repr__(self) -> str:
        return f"ConstraintGraph({self.num_events} events, {len(self._edges)} edges)"

"""The constraint graph ``G`` (Section 5.1).

Nodes are trace events (identified by eid); edges are ordering constraints
on any correctly reordered trace. DC analysis populates the initial graph
so that reachability coincides with DC ordering:

* program-order edges chain each thread's events;
* rule (a) edges run from the release of a critical section to a later
  conflicting access in another critical section on the same lock;
* rule (b) edges order releases of the same lock;
* hard edges cover fork/join, volatile ordering, and forced ordering
  after a detected race.

VindicateRace then temporarily adds *consecutive-event* and
*lock-semantics* edges; those are tracked by tag so they can be removed
afterwards, leaving ``G`` pristine for the next race (Section 6.1,
"VindicateRace").

Adjacency is kept in both directions because AddConstraints queries
direct predecessors of the racing events, and reachability is needed both
forward (descendants) and backward (ancestors). Since event ids are dense
trace positions, adjacency is an event-id-indexed array of per-node sets:
``has_edge`` and ``remove_edge`` are O(1), which matters under
VindicateRace's add/remove-tagged-edges churn (one batch of temporary
edges per vindicated race).

Every successful mutation bumps :attr:`ConstraintGraph.generation` and
is recorded in a bounded mutation journal;
:class:`~repro.graph.reachability.ReachabilityIndex` uses the generation
to detect staleness and the journal to invalidate only the memoized
closures an edge insertion can actually affect.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

Edge = Tuple[int, int]

#: Shared immutable empty adjacency for out-of-range nodes.
_EMPTY: FrozenSet[int] = frozenset()


class ConstraintGraph:
    """A directed graph over dense event ids with removable edges."""

    #: Journal entries kept before consumers fall back to a full flush.
    _JOURNAL_LIMIT = 4096

    def __init__(self, num_events: int = 0):
        self._succ: List[Set[int]] = [set() for _ in range(num_events)]
        self._pred: List[Set[int]] = [set() for _ in range(num_events)]
        self._edge_count = 0
        self.num_events = num_events
        #: Bumped on every successful ``add_edge``/``remove_edge``; lets
        #: reachability caches detect staleness without subscriptions.
        self.generation = 0
        #: Bounded log of successful mutations as ``(is_add, src, dst)``;
        #: lets reachability caches invalidate selectively (see
        #: :meth:`mutations_since`). ``_journal_base`` is the absolute
        #: position of ``_journal[0]``.
        self._journal: List[Tuple[bool, int, int]] = []
        self._journal_base = 0

    def _grow(self, eid: int) -> None:
        if eid >= self.num_events:
            for _ in range(self.num_events, eid + 1):
                self._succ.append(set())
                self._pred.append(set())
            self.num_events = eid + 1

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_edge(self, src: int, dst: int) -> bool:
        """Add edge ``src -> dst``. Returns False if already present."""
        if src == dst:
            raise ValueError(f"self edge on event {src}")
        self._grow(src if src > dst else dst)
        succ = self._succ[src]
        if dst in succ:
            return False
        succ.add(dst)
        self._pred[dst].add(src)
        self._edge_count += 1
        self.generation += 1
        self._record(True, src, dst)
        return True

    def remove_edge(self, src: int, dst: int) -> None:
        """Remove an edge previously added with :meth:`add_edge`."""
        if src >= self.num_events or dst not in self._succ[src]:
            return
        self._succ[src].discard(dst)
        self._pred[dst].discard(src)
        self._edge_count -= 1
        self.generation += 1
        self._record(False, src, dst)

    def _record(self, is_add: bool, src: int, dst: int) -> None:
        journal = self._journal
        journal.append((is_add, src, dst))
        if len(journal) > self._JOURNAL_LIMIT:
            # Discard the backlog; consumers behind it do a full flush.
            self._journal_base += len(journal)
            journal.clear()

    @property
    def journal_position(self) -> int:
        """Absolute position just past the latest journal entry."""
        return self._journal_base + len(self._journal)

    def mutations_since(self, pos: int):
        """Journal entries from absolute position ``pos`` onward, with
        the new position: ``(entries, new_pos)``. ``entries`` is None
        when the backlog has been discarded (the caller must treat every
        cached derivation as stale)."""
        start = pos - self._journal_base
        if start < 0:
            return None, self.journal_position
        return self._journal[start:], self.journal_position

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def has_edge(self, src: int, dst: int) -> bool:
        return src < self.num_events and dst in self._succ[src]

    def successors(self, node: int) -> List[int]:
        if node >= self.num_events or node < 0:
            return []
        return list(self._succ[node])

    def predecessors(self, node: int) -> List[int]:
        if node >= self.num_events or node < 0:
            return []
        return list(self._pred[node])

    def successor_set(self, node: int):
        """The successor set itself (read-only; O(1), no copy)."""
        if 0 <= node < self.num_events:
            return self._succ[node]
        return _EMPTY

    def predecessor_set(self, node: int):
        """The predecessor set itself (read-only; O(1), no copy)."""
        if 0 <= node < self.num_events:
            return self._pred[node]
        return _EMPTY

    def edges(self) -> Iterator[Edge]:
        for src, succ in enumerate(self._succ):
            for dst in succ:
                yield (src, dst)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def stats(self) -> "dict[str, int]":
        """Structure counters for the metrics registry / reports."""
        return {
            "nodes": self.num_events,
            "edges": self._edge_count,
            "generation": self.generation,
        }

    # ------------------------------------------------------------------
    # Reachability (direct BFS; see repro.graph.reachability for the
    # memoizing engine used by the vindication hot paths)
    # ------------------------------------------------------------------
    def descendants(self, roots: Iterable[int],
                    include_roots: bool = False,
                    within: Optional[Tuple[int, int]] = None) -> Set[int]:
        """All nodes reachable from ``roots`` by following edges forward.

        With ``within=(lo, hi)``, traversal is restricted to nodes whose
        event id lies in the window (the paper's Lamport-timestamp window
        optimisation for AddConstraints)."""
        return self._bfs(roots, self._succ, include_roots, within)

    def ancestors(self, roots: Iterable[int],
                  include_roots: bool = False,
                  within: Optional[Tuple[int, int]] = None) -> Set[int]:
        """All nodes from which some root is reachable (``e ⇝_G root``)."""
        return self._bfs(roots, self._pred, include_roots, within)

    def _bfs(self, roots: Iterable[int], adjacency: List[Set[int]],
             include_roots: bool,
             within: Optional[Tuple[int, int]] = None) -> Set[int]:
        roots = list(roots)
        n = self.num_events
        seen: Set[int] = set()
        queue = deque(roots)
        while queue:
            node = queue.popleft()
            if node >= n or node < 0:
                continue
            for nxt in adjacency[node]:
                if nxt in seen:
                    continue
                if within is not None and not within[0] <= nxt <= within[1]:
                    continue
                seen.add(nxt)
                queue.append(nxt)
        # Strict reachability: a root belongs to the result only if it was
        # re-reached through an edge (i.e. it lies on a cycle) — unless the
        # caller asked for reflexive reachability.
        if include_roots:
            seen.update(roots)
        return seen

    def reaches(self, src: int, dst: int) -> bool:
        """``src ⇝_G dst``: strict reachability (at least one edge)."""
        if src >= self.num_events or src < 0:
            return False
        if src == dst:
            # A node reaches itself only through a cycle.
            return self._on_cycle(src)
        seen = {src}
        queue = deque([src])
        n = self.num_events
        while queue:
            node = queue.popleft()
            for nxt in self._succ[node]:
                if nxt == dst:
                    return True
                if nxt not in seen and nxt < n:
                    seen.add(nxt)
                    queue.append(nxt)
        return False

    def _on_cycle(self, node: int) -> bool:
        seen: Set[int] = set()
        queue = deque(self._succ[node])
        while queue:
            cur = queue.popleft()
            if cur == node:
                return True
            if cur in seen:
                continue
            seen.add(cur)
            queue.extend(self._succ[cur])
        return False

    def find_cycle_reaching(self, targets: Set[int],
                            region: Optional[Set[int]] = None) -> Optional[List[int]]:
        """Find a cycle among nodes that reach one of ``targets``
        (Algorithm 1, lines 20–21: a cycle is only disqualifying when it
        constrains the racing events). Returns the cycle's nodes or None.

        Implemented as an iterative DFS with colouring over the subgraph
        induced by the ancestors of ``targets`` (targets included).
        ``region`` optionally supplies that ancestor set precomputed (e.g.
        by a :class:`~repro.graph.reachability.ReachabilityIndex`).
        """
        if region is None:
            region = self.ancestors(targets, include_roots=True)
        region = set(region)
        region.update(targets)
        WHITE, GRAY, BLACK = 0, 1, 2
        color: "dict[int, int]" = {}
        parent: "dict[int, int]" = {}
        for root in region:
            if color.get(root, WHITE) != WHITE:
                continue
            stack: List[Tuple[int, Iterator[int]]] = [
                (root, iter(self.successor_set(root)))]
            color[root] = GRAY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if nxt not in region:
                        continue
                    c = color.get(nxt, WHITE)
                    if c == GRAY:
                        # Found a back edge: reconstruct the cycle.
                        cycle = [nxt, node]
                        cur = node
                        while cur != nxt and cur in parent:
                            cur = parent[cur]
                            cycle.append(cur)
                        return cycle
                    if c == WHITE:
                        color[nxt] = GRAY
                        parent[nxt] = node
                        stack.append((nxt, iter(self.successor_set(nxt))))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None

    # ------------------------------------------------------------------
    # Serialization (process-boundary handoff for repro.parallel)
    # ------------------------------------------------------------------
    def to_arrays(self) -> Tuple["array[int]", "array[int]"]:
        """Serialize the edge set as CSR arrays ``(offsets, targets)``.

        ``offsets`` has ``num_events + 1`` entries; node ``v``'s
        successors are ``targets[offsets[v]:offsets[v+1]]``, sorted
        ascending. Both are :class:`array.array` instances, which pickle
        as flat buffers — the parallel engine ships a graph to a worker
        pool once this way instead of pickling per-node set objects.
        """
        offsets = array("Q", [0])
        targets = array("I")
        total = 0
        for succ in self._succ:
            total += len(succ)
            offsets.append(total)
            targets.extend(sorted(succ))
        return offsets, targets

    @classmethod
    def from_arrays(cls, offsets: "array[int]",
                    targets: "array[int]") -> "ConstraintGraph":
        """Rebuild a graph serialized by :meth:`to_arrays`.

        The clone starts with a fresh generation and an empty mutation
        journal (it is a new graph whose initial edge set happens to be
        the serialized one).
        """
        graph = cls(len(offsets) - 1)
        succ = graph._succ
        pred = graph._pred
        for node in range(graph.num_events):
            row = targets[offsets[node]:offsets[node + 1]]
            if not row:
                continue
            succ[node].update(row)
            for dst in row:
                pred[dst].add(node)
        graph._edge_count = len(targets)
        return graph

    def copy(self) -> "ConstraintGraph":
        clone = ConstraintGraph(self.num_events)
        clone._succ = [set(s) for s in self._succ]
        clone._pred = [set(p) for p in self._pred]
        clone._edge_count = self._edge_count
        return clone

    def __repr__(self) -> str:
        return f"ConstraintGraph({self.num_events} events, {self._edge_count} edges)"

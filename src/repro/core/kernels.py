"""Backend dispatch for the clock hot-path kernels.

Every per-event inner loop of the analyses — the dense list-clock
kernels behind ``--fast-vc``, the SmartTrack gated race scan, the
rule (a) source-clock joins, the rule (b) fixpoint, and the
recency-ordered (del-then-insert) table maintenance shared with the
sparse reference detectors — funnels through the module-level functions
defined here. Two interchangeable implementations exist:

* **python** — the pure-Python reference implementations in this file
  (``py_*``). Always available; semantics-defining.
* **compiled** — :mod:`repro.core._kernels`, a hand-written CPython
  extension built by ``setup.py`` when a C compiler is present
  (``pip install -e .`` degrades gracefully to pure Python when it is
  not). Bit-identical to the reference implementations by construction
  and gated by ``tests/test_kernels_differential.py`` plus the existing
  differential suites.

Selection happens at import time from the ``VINDICATOR_KERNELS``
environment variable (``auto`` — compiled when importable, else python;
``python``; ``compiled`` — fail loudly when unavailable) and can be
changed afterwards with :func:`set_backend` (the CLI's global
``--kernels`` flag). Consumers must call through the module attribute
(``kernels.join_into_list(...)``), never ``from``-import a kernel, so a
later :func:`set_backend` rebinds them too.

:func:`active_backend` reports which implementation is live; it is
stamped into every ``vindicator.analyze/1`` document, the obs session
meta record, the serve shard status, and the Prometheus ``/metrics``
export, so any result can be traced to the backend that produced it.

Iteration-order contract: every dict-table kernel sees the table in
insertion order (CPython dicts; ``PyDict_Next`` on the C side), and the
del-then-insert maintenance (:func:`record_latest`) keeps that order
most-recent-last — a pure function of the record sequence, which the
edge-minimising scans (and therefore the DC edge list and the GC
differentials) depend on.
"""

from __future__ import annotations

import os
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    TypeVar)

__all__ = [
    "active_backend",
    "backends",
    "compiled_available",
    "set_backend",
    "set_sync_fusion",
    "sync_fusion_enabled",
    "join_into_list",
    "join_into_list_changed",
    "dominates_list",
    "record_latest",
    "slot_intern",
    "source_join_into",
    "rule_b_fixpoint",
    "gated_scan",
    "scan_racing_sparse",
    "source_join_into_sparse",
    "rule_b_fixpoint_sparse",
    "drain_edges",
    "access_wcp",
    "access_dc",
    "acquire_wcp",
    "release_wcp",
    "fork_wcp",
    "join_wcp",
    "acquire_dc",
    "release_dc",
    "fork_dc",
    "join_dc",
]

_K = TypeVar("_K")
_V = TypeVar("_V")

#: A dense rule-(a) record: (source eid, source local time, snapshot).
DenseRec = Tuple[int, int, List[int]]


# ----------------------------------------------------------------------
# Pure-Python reference implementations (the semantics of the layer)
# ----------------------------------------------------------------------
def py_join_into_list(dst: List[int], src: Sequence[int]) -> None:
    """In-place pointwise max: ``dst[i] = max(dst[i], src[i])``.

    Requires ``len(src) <= len(dst)`` (clocks sharing one table and
    allocated at full table size always satisfy this).
    """
    for i, value in enumerate(src):
        if value > dst[i]:
            dst[i] = value


def py_join_into_list_changed(dst: List[int], src: Sequence[int]) -> bool:
    """:func:`py_join_into_list` that also reports whether ``dst`` grew."""
    changed = False
    for i, value in enumerate(src):
        if value > dst[i]:
            dst[i] = value
            changed = True
    return changed


def py_dominates_list(big: Sequence[int], small: Sequence[int]) -> bool:
    """Pointwise ``small <= big`` (missing trailing components are 0)."""
    nb = len(big)
    for i, value in enumerate(small):
        if value and (i >= nb or value > big[i]):
            return False
    return True


def py_record_latest(table: Dict[_K, _V], key: _K, value: _V) -> None:
    """(Re-)insert ``table[key] = value`` at the *end* of the table.

    Iteration order stays most-recent-last — a pure function of the
    record sequence. The edge-minimising scans mutate their target
    clock mid-scan, so an order that depended on *first* insertion
    (dict in-place update) would diverge once streaming GC removed and
    re-admitted a key (see ``SourceClocks.record``).
    """
    if key in table:
        del table[key]
    table[key] = value


def py_slot_intern(index: Dict[Any, int], tids: List[Any],
                   values: List[int], tid: Any) -> int:
    """Intern ``tid`` into the (``index``, ``tids``) table and grow the
    ``values`` storage to cover its slot; returns the slot index."""
    idx = index.get(tid)
    if idx is None:
        idx = len(tids)
        index[tid] = idx
        tids.append(tid)
    if idx >= len(values):
        values.extend([0] * (len(tids) - len(values)))
    return idx


def py_source_join_into(entries: Dict[int, DenseRec], values: List[int],
                        skip_ti: int) -> Optional[List[int]]:
    """Dense rule (a)/volatile join: fold every other thread's snapshot
    whose source event is not already covered (vector-clock edge
    minimisation) into ``values``. Returns the newly ordered source
    eids in table order, or None when nothing joined."""
    out: Optional[List[int]] = None
    for u, rec in entries.items():
        if u == skip_ti or values[u] >= rec[1]:
            continue
        py_join_into_list(values, rec[2])
        if out is None:
            out = [rec[0]]
        else:
            out.append(rec[0])
    return out


def py_rule_b_fixpoint(records: Dict[int, List[List[Any]]],
                       cursors: Dict[int, int],
                       values: List[int]) -> Optional[List[int]]:
    """Dense rule (b) fixpoint over per-thread critical-section queues
    (``[acq_time, rel_eid, rel_time, snapshot|None]`` records): consume
    closed sections whose acquire is covered, joining their release
    snapshots, iterating because each join can order further acquires.
    ``cursors`` is the *observer's* cursor map (mutated in place).
    Returns newly ordered release eids or None."""
    out: Optional[List[int]] = None
    changed = True
    while changed:
        changed = False
        for u, recs in records.items():
            i = cursors.get(u, 0)
            n = len(recs)
            while i < n:
                rec = recs[i]
                snap = rec[3]
                if snap is None:
                    break  # source critical section still open
                if values[u] < rec[0]:
                    break  # FIFO heads are monotone per thread
                if values[u] < rec[2]:
                    py_join_into_list(values, snap)
                    if out is None:
                        out = [rec[1]]
                    else:
                        out.append(rec[1])
                    changed = True
                i += 1
            cursors[u] = i
    return out


def py_gated_scan(
    writes: Optional[Dict[int, Tuple[int, Any, Optional[List[int]]]]],
    reads: Optional[Dict[int, Tuple[int, Any, Optional[List[int]]]]],
    ti: int, values: List[int], use_gates: bool,
    we_time: int, we_ti: int, rg_time: int, rg_ti: int, rg_shared: bool,
) -> Tuple[Optional[List[Tuple[int, Tuple[int, Any, Optional[List[int]]]]]],
           bool, bool]:
    """The SmartTrack gated race scan over dense per-thread access maps
    (tid index -> ``(time, event, snapshot)``).

    Scans ``writes`` for racing priors unless the FastTrack-style write
    epoch ``we_time @ we_ti`` is covered (the write gate, consulted
    only when ``use_gates``); then scans ``reads`` (pass None for a
    read access) unless the chained read epoch is intact and covered
    (the read gate, valid only under a passing write gate). Returns
    ``(racing, write_gate_hit, read_gate_hit)`` where ``racing`` is the
    ``(tid index, record)`` list in writes-then-reads table order, or
    None when no prior races.
    """
    racing: Optional[List[Tuple[int, Tuple[int, Any, Optional[List[int]]]]]]
    racing = None
    w_gate = False
    r_gate = False
    if writes is not None:
        if use_gates and (we_time == 0 or values[we_ti] >= we_time):
            # Write-epoch gate: the last write is covered, hence (by the
            # transitive-force propagation invariant) so is every prior
            # write — and every read up to that write.
            w_gate = True
        else:
            for u, wrec in writes.items():
                if u != ti and wrec[0] > values[u]:
                    if racing is None:
                        racing = [(u, wrec)]
                    else:
                        racing.append((u, wrec))
    if reads is not None:
        if (w_gate and not rg_shared
                and (rg_time == 0 or values[rg_ti] >= rg_time)):
            # Read gate: the chained read epoch since the last write is
            # covered (older reads are covered via the write gate,
            # which must also have passed).
            r_gate = True
        else:
            for u, rrec in reads.items():
                if u != ti and rrec[0] > values[u]:
                    if racing is None:
                        racing = [(u, rrec)]
                    else:
                        racing.append((u, rrec))
    return racing, w_gate, r_gate


def py_scan_racing_sparse(
    last_write: Dict[Any, Tuple[Any, Any]],
    last_read: Optional[Dict[Any, Tuple[Any, Any]]],
    tid: Any, local_time: Sequence[int],
    clock_get: Callable[[Any], int],
) -> Optional[List[Tuple[Any, Any]]]:
    """The sparse access-history race scan (``Detector.check_access``):
    a prior access by another thread with thread-local time above the
    current clock's component is unordered and therefore racing.
    ``last_read`` is None for read accesses (read/read pairs never
    race); ``local_time`` is a list for in-memory traces and an
    ``array('I')`` for streaming ones. Returns ``(event, snapshot)``
    entries in writes-then-reads table order, or None."""
    racing: Optional[List[Tuple[Any, Any]]] = None
    for rec in last_write.values():
        prior = rec[0]
        if prior.tid != tid and local_time[prior.eid] > clock_get(prior.tid):
            if racing is None:
                racing = [rec]
            else:
                racing.append(rec)
    if last_read is not None:
        for rec in last_read.values():
            prior = rec[0]
            if prior.tid != tid and local_time[prior.eid] > clock_get(prior.tid):
                if racing is None:
                    racing = [rec]
                else:
                    racing.append(rec)
    return racing


def py_source_join_into_sparse(entries: Dict[Any, Tuple[int, int, Any]],
                               target: Any, skip_tid: Any) -> List[int]:
    """Sparse analog of :func:`py_source_join_into` over dict-backed
    clocks (``target`` is a ``VectorClock``-shaped object). Returns the
    newly ordered source eids (empty list when nothing joined, matching
    the historical ``SourceClocks.join_into`` contract)."""
    new_sources: List[int] = []
    target_get = target.get
    target_join = target.join
    for tid, rec in entries.items():
        if tid == skip_tid or target_get(tid) >= rec[1]:
            continue
        target_join(rec[2])
        new_sources.append(rec[0])
    return new_sources


def py_rule_b_fixpoint_sparse(records: Dict[Any, List[Any]],
                              cursors: Dict[Any, int],
                              clock: Any) -> List[int]:
    """Sparse rule (b) fixpoint over ``CSRecord`` queues and a
    dict-backed observer clock; ``cursors`` is the observer's cursor
    map (mutated in place). Returns newly ordered release eids."""
    new_sources: List[int] = []
    clock_get = clock.get
    clock_join = clock.join
    changed = True
    while changed:
        changed = False
        # The observer's own records are included: rule (b) has no
        # thread restriction (see LockQueues.apply_rule_b).
        for tid, recs in records.items():
            i = cursors.get(tid, 0)
            n = len(recs)
            while i < n:
                rec = recs[i]
                rel_clock = rec.rel_clock
                if rel_clock is None:
                    # The source critical section is still open; it
                    # cannot be ordered before this release.
                    break
                t = clock_get(tid)
                if t < rec.acq_local_time:
                    break  # FIFO heads are monotone per thread.
                if t < rec.rel_local_time:
                    clock_join(rel_clock)
                    new_sources.append(rec.rel_eid)
                    changed = True
                i += 1
            cursors[tid] = i
    return new_sources


def py_drain_edges(pairs: List[int],
                   add_edge: Callable[[int, int], Any]) -> int:
    """Drain a DC *edge buffer* into a constraint graph.

    ``pairs`` is the flat append-ordered buffer the graph-building DC
    detectors accumulate — ``[src0, dst0, src1, dst1, ...]`` — with one
    (src, dst) pair per ``add_edge`` call the reference detector would
    have made, in the reference's exact insertion order (every reference
    edge is inserted while processing its destination event, and events
    are processed in trace order, so a single append-ordered stream
    reproduces it). Both backends append into the same plain list: the
    Python detector paths via ``list.append`` and the fused compiled
    kernels via C-side ``PyList_Append`` — a growable C array either
    way, with no per-edge Python call on the compiled path.

    Calls ``add_edge(src, dst)`` for every pair, clears the buffer, and
    returns the number of pairs drained.
    """
    it = iter(pairs)
    n = 0
    for src, dst in zip(it, it):
        add_edge(src, dst)
        n += 1
    pairs.clear()
    return n


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
#: Kernels with a native implementation in repro.core._kernels.
_COMPILED_NAMES: Tuple[str, ...] = (
    "join_into_list",
    "join_into_list_changed",
    "dominates_list",
    "record_latest",
    "slot_intern",
    "source_join_into",
    "rule_b_fixpoint",
    "gated_scan",
    "scan_racing_sparse",
)

#: Kernels behind the boundary whose compiled backend reuses the Python
#: implementation: the sparse rule (a)/(b) loops spend their time in
#: VectorClock method calls, so a native loop harness buys nothing —
#: they are routed here so a future backend (or a set-based detector's
#: kernel set) can take them without touching the analyses again.
_PYTHON_ONLY_NAMES: Tuple[str, ...] = (
    "source_join_into_sparse",
    "rule_b_fixpoint_sparse",
    "drain_edges",
)

#: Compiled-only *fused* kernels: one call executes the whole per-access
#: fast path of an epoch detector (advance + rule (a) staging +
#: prefilter gate + exclusive-stage store), returning 1 when the rare
#: SHARED-stage check must still run in Python.  Under the python
#: backend these bind to None and the detectors run their open-coded
#: ``_on_access`` — which *is* the reference implementation the fused
#: kernels are line-for-line transcriptions of.  Consumers must
#: therefore test for None at trace start (see
#: ``_EpochDetectorBase``); bit-identical behaviour across the two
#: routes is enforced by the end-to-end differential suites.
_FUSED_NAMES: Tuple[str, ...] = (
    "access_wcp",
    "access_dc",
)

#: Compiled-only fused *sync-op* kernels: one call executes the whole
#: ``on_acquire`` / ``on_release`` / ``on_fork`` / ``on_join`` body of an
#: epoch detector — clock advance, rule (a)/(b) queue maintenance, CCS
#: ownership-tag updates, H/P snapshot recording, and (for DC with the
#: graph on) edge-buffer appends — against a per-trace sync context
#: tuple.  Like the fused access kernels they bind to None under the
#: python backend (the detectors' open-coded ``on_*`` methods are the
#: reference these transcribe), and additionally when sync fusion is
#: disabled via :func:`set_sync_fusion` (the A/B lever the composite
#: benchmark uses to isolate the sync-op win from the access-only
#: fused path).  The release kernels return a status int (0 — handled,
#: 1 — no matching acquire) so the caller raises the exact exception
#: the open-coded path would.
_SYNC_NAMES: Tuple[str, ...] = (
    "acquire_wcp",
    "release_wcp",
    "fork_wcp",
    "join_wcp",
    "acquire_dc",
    "release_dc",
    "fork_dc",
    "join_dc",
)

_compiled_mod: Optional[Any]
try:  # pragma: no cover - exercised only when the extension is built
    from repro.core import _kernels as _compiled_mod  # type: ignore[attr-defined]
except ImportError:  # pragma: no cover - default source checkout
    _compiled_mod = None

_active = "python"
_sync_fusion = True

# Dispatched public bindings (rebound by set_backend; call through the
# module attribute, never `from`-import these).
join_into_list: Callable[[List[int], Sequence[int]], None]
join_into_list_changed: Callable[[List[int], Sequence[int]], bool]
dominates_list: Callable[[Sequence[int], Sequence[int]], bool]
record_latest: Callable[..., None]
slot_intern: Callable[[Dict[Any, int], List[Any], List[int], Any], int]
source_join_into: Callable[
    [Dict[int, DenseRec], List[int], int], Optional[List[int]]]
rule_b_fixpoint: Callable[
    [Dict[int, List[List[Any]]], Dict[int, int], List[int]],
    Optional[List[int]]]
gated_scan: Callable[..., Tuple[Optional[List[Any]], bool, bool]]
scan_racing_sparse: Callable[..., Optional[List[Tuple[Any, Any]]]]
source_join_into_sparse: Callable[
    [Dict[Any, Tuple[int, int, Any]], Any, Any], List[int]]
rule_b_fixpoint_sparse: Callable[
    [Dict[Any, List[Any]], Dict[Any, int], Any], List[int]]
drain_edges: Callable[[List[int], Callable[[int, int], Any]], int]
access_wcp: Optional[Callable[..., int]]
access_dc: Optional[Callable[..., int]]
acquire_wcp: Optional[Callable[..., Any]]
release_wcp: Optional[Callable[..., int]]
fork_wcp: Optional[Callable[..., Any]]
join_wcp: Optional[Callable[..., Any]]
acquire_dc: Optional[Callable[..., Any]]
release_dc: Optional[Callable[..., int]]
fork_dc: Optional[Callable[..., Any]]
join_dc: Optional[Callable[..., Any]]


#: Valid arguments to :func:`set_backend` (``"auto"`` resolves at
#: bind time to ``"compiled"`` when available, else ``"python"``).
BACKENDS = ("auto", "python", "compiled")


def compiled_available() -> bool:
    """Whether the native :mod:`repro.core._kernels` extension imported."""
    return _compiled_mod is not None


def backends() -> Tuple[str, ...]:
    """The backends available in this environment."""
    return ("python", "compiled") if compiled_available() else ("python",)


def active_backend() -> str:
    """The implementation currently live: ``"python"`` or ``"compiled"``."""
    return _active


def set_backend(choice: str) -> str:
    """Bind the kernel layer to ``choice`` and return the active backend.

    ``"auto"`` selects the compiled backend when the extension is
    importable and degrades to pure Python otherwise; ``"python"`` and
    ``"compiled"`` are explicit (``"compiled"`` raises RuntimeError when
    the extension is unavailable rather than silently running the slow
    path — an explicit request must not produce misleading benchmarks).
    Workers and serve shards re-apply the parent's *resolved* backend,
    so a fleet never mixes implementations silently.
    """
    global _active
    if choice == "auto":
        target = "compiled" if _compiled_mod is not None else "python"
    elif choice in ("python", "compiled"):
        if choice == "compiled" and _compiled_mod is None:
            raise RuntimeError(
                "kernels backend 'compiled' requested but the "
                "repro.core._kernels extension is not importable; build it "
                "with `python setup.py build_ext --inplace` (requires a C "
                "compiler) or use --kernels auto")
        target = choice
    else:
        raise ValueError(
            f"unknown kernels backend {choice!r}; expected one of "
            f"'auto', 'python', 'compiled'")
    g = globals()
    for name in _COMPILED_NAMES:
        g[name] = (getattr(_compiled_mod, name) if target == "compiled"
                   else g["py_" + name])
    for name in _PYTHON_ONLY_NAMES:
        g[name] = g["py_" + name]
    for name in _FUSED_NAMES:
        g[name] = (getattr(_compiled_mod, name) if target == "compiled"
                   else None)
    for name in _SYNC_NAMES:
        g[name] = (getattr(_compiled_mod, name)
                   if target == "compiled" and _sync_fusion else None)
    _active = target
    return target


def set_sync_fusion(enabled: bool) -> bool:
    """Enable or disable the fused sync-op kernels (compiled backend).

    With fusion off the compiled backend keeps the fused *access*
    kernels and the fine-grained clock kernels but routes
    acquire/release/fork/join through the detectors' open-coded Python
    paths — exactly the shape of the access-only fused backend this PR
    extends.  The composite benchmark flips this to measure the sync-op
    fusion win in isolation; results are bit-identical either way (the
    open-coded paths are the reference the kernels transcribe).
    Detectors consult the binding at ``begin_trace``, so flip this
    between analyses, not mid-trace.  Returns the new setting.
    """
    global _sync_fusion
    _sync_fusion = bool(enabled)
    set_backend(_active)
    return _sync_fusion


def sync_fusion_enabled() -> bool:
    """Whether the fused sync-op kernels may bind (compiled backend)."""
    return _sync_fusion


#: Environment override consulted once at import; the CLI's --kernels
#: flag calls set_backend() again after argument parsing.
ENV_VAR = "VINDICATOR_KERNELS"

set_backend(os.environ.get(ENV_VAR, "auto"))

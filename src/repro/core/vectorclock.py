"""Vector clocks and epochs.

Vector clocks [Mattern 1989] map each thread to a logical time. The
analyses in :mod:`repro.analysis` use them to represent, for each thread,
the set of events known to be ordered before the thread's next event
under a given relation (HB, WCP, or DC).

The implementation is dict-backed: absent threads implicitly have time 0,
so clocks stay small in programs where most threads never interact.

:class:`Epoch` is the FastTrack-style compressed representation ``c@t``
of a clock that is known to have a single non-trivial component; it backs
the optional FastTrack detector (:mod:`repro.analysis.fasttrack`).
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.core.events import Tid


class VectorClock:
    """A mutable vector clock: a map from thread id to logical time.

    Missing entries are implicitly zero. Supports in-place ``join``
    (pointwise max), component get/set, the pointwise-≤ comparison
    (``other <= self`` via :meth:`dominates`), and copying.
    """

    __slots__ = ("_clocks", "version")

    def __init__(self, clocks: Optional[Mapping[Tid, int]] = None):
        self._clocks: Dict[Tid, int] = dict(clocks) if clocks else {}
        #: Bumped on every mutation except :meth:`advance`. Snapshot
        #: caches (``Detector.check_access``) compare versions to decide
        #: whether a previously copied snapshot still equals this clock
        #: on every *foreign* component; ``advance`` is exempt because
        #: it only raises the owning thread's own component, which every
        #: snapshot consumer re-derives exactly (see the soundness note
        #: on :meth:`advance`).
        self.version: int = 0

    # ------------------------------------------------------------------
    # Component access
    # ------------------------------------------------------------------
    def get(self, tid: Tid) -> int:
        """Return this clock's component for ``tid`` (0 if absent)."""
        return self._clocks.get(tid, 0)

    def set(self, tid: Tid, time: int) -> None:
        """Set the component for ``tid``. Setting 0 removes the entry."""
        self.version += 1
        if time:
            self._clocks[tid] = time
        else:
            self._clocks.pop(tid, None)

    def advance(self, tid: Tid, time: int) -> None:
        """Set ``tid``'s component without bumping :attr:`version`.

        Only for the per-event self-advance of a thread's *own*
        component in a detector's per-thread clock ``C_t``. Soundness of
        leaving ``version`` unchanged: ``check_access`` consumers of a
        cached snapshot always overwrite the owner's component with the
        prior event's exact local time *before* joining, so a snapshot
        that is stale only in the owner's own (monotonically advanced)
        component joins to the identical result.
        """
        if time:
            self._clocks[tid] = time
        else:
            self._clocks.pop(tid, None)

    def increment(self, tid: Tid) -> int:
        """Advance ``tid``'s component by one and return the new value."""
        self.version += 1
        new = self._clocks.get(tid, 0) + 1
        self._clocks[tid] = new
        return new

    # ------------------------------------------------------------------
    # Lattice operations
    # ------------------------------------------------------------------
    def join(self, other: "VectorClock") -> bool:
        """In-place pointwise max with ``other``.

        Returns True if any component of ``self`` increased — callers use
        this to decide whether a join conveyed new ordering information
        (e.g. for constraint-graph edge minimisation).
        """
        changed = False
        mine = self._clocks
        for tid, time in other._clocks.items():
            if time > mine.get(tid, 0):
                mine[tid] = time
                changed = True
        if changed:
            self.version += 1
        return changed

    def dominates(self, other: "VectorClock") -> bool:
        """Return True if ``other ⊑ self`` (pointwise ≤)."""
        mine = self._clocks
        for tid, time in other._clocks.items():
            if time > mine.get(tid, 0):
                return False
        return True

    def copy(self) -> "VectorClock":
        clone = VectorClock()
        clone._clocks = dict(self._clocks)
        return clone

    # ------------------------------------------------------------------
    # Protocol support
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._clocks == other._clocks

    def __hash__(self):  # pragma: no cover - clocks are mutable
        raise TypeError("VectorClock is mutable and unhashable")

    def __iter__(self) -> Iterator[Tuple[Tid, int]]:
        return iter(self._clocks.items())

    def __len__(self) -> int:
        return len(self._clocks)

    def __bool__(self) -> bool:
        return bool(self._clocks)

    def __repr__(self) -> str:
        inner = ", ".join(f"T{t}:{c}" for t, c in sorted(self._clocks.items(), key=str))
        return f"VC[{inner}]"

    def as_dict(self) -> Dict[Tid, int]:
        """Return a snapshot of the non-zero components."""
        return dict(self._clocks)


class Epoch:
    """A FastTrack epoch ``c@t``: logical time ``c`` of thread ``t``.

    Epochs compress the common case where a variable's last writes (or
    reads) are totally ordered, replacing a full vector clock with a
    single (time, thread) pair.
    """

    __slots__ = ("time", "tid")

    def __init__(self, time: int, tid: Tid):
        self.time = time
        self.tid = tid

    def happens_before(self, clock: VectorClock) -> bool:
        """Return True if this epoch is covered by ``clock`` (``c ≤ clock[t]``)."""
        return self.time <= clock.get(self.tid)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Epoch):
            return NotImplemented
        return self.time == other.time and self.tid == other.tid

    def __repr__(self) -> str:
        return f"{self.time}@T{self.tid}"


#: The distinguished empty epoch (time 0 is before everything).
EPOCH_ZERO = Epoch(0, "<none>")

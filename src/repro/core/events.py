"""Event model for execution traces.

An execution trace is a totally ordered list of events (Section 2.1 of the
paper). Each event is one of:

* ``rd(x)`` / ``wr(x)`` — read / write of a shared variable ``x``;
* ``acq(m)`` / ``rel(m)`` — acquire / release of a lock ``m``;
* ``fork(u)`` / ``join(u)`` — thread creation / join, which induce direct
  ordering edges in every relation the library computes;
* ``begin`` / ``end`` — the first / last event of a thread (optional);
* ``vwr(v)`` / ``vrd(v)`` — volatile (synchronisation) accesses, which
  induce write-to-read ordering edges and are never race candidates.

Events carry an optional source ``loc`` string used to aggregate dynamic
races into *statically distinct* races, mirroring the paper's
class/method/line identifiers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, Optional

#: Type alias for thread identifiers.
Tid = Hashable
#: Type alias for variable / lock / volatile identifiers.
Target = Hashable


class EventKind(enum.Enum):
    """The kind of a trace event."""

    READ = "rd"
    WRITE = "wr"
    ACQUIRE = "acq"
    RELEASE = "rel"
    FORK = "fork"
    JOIN = "join"
    BEGIN = "begin"
    END = "end"
    VOLATILE_WRITE = "vwr"
    VOLATILE_READ = "vrd"

    @property
    def is_access(self) -> bool:
        """True for plain (non-volatile) reads and writes."""
        return self in (EventKind.READ, EventKind.WRITE)

    @property
    def is_read(self) -> bool:
        return self is EventKind.READ

    @property
    def is_write(self) -> bool:
        return self is EventKind.WRITE

    @property
    def is_lock_op(self) -> bool:
        return self in (EventKind.ACQUIRE, EventKind.RELEASE)

    @property
    def is_volatile(self) -> bool:
        return self in (EventKind.VOLATILE_WRITE, EventKind.VOLATILE_READ)

    @property
    def is_thread_op(self) -> bool:
        return self in (EventKind.FORK, EventKind.JOIN, EventKind.BEGIN, EventKind.END)


@dataclass(frozen=True)
class Event:
    """A single event in an execution trace.

    Attributes:
        eid: The event's position in the observed total order ``<_tr``.
            Unique within a trace; smaller means earlier.
        tid: Identifier of the thread that executed the event.
        kind: What the event does (:class:`EventKind`).
        target: The operand — a variable for accesses, a lock for
            acquire/release, a thread id for fork/join, a volatile
            variable for volatile accesses, and ``None`` for begin/end.
        loc: Optional static source location (used for static race
            de-duplication); ``None`` when unknown.
    """

    eid: int
    tid: Tid
    kind: EventKind
    target: Optional[Target] = None
    loc: Optional[str] = field(default=None, compare=False)

    def __str__(self) -> str:
        if self.target is None:
            return f"{self.kind.value}()@T{self.tid}#{self.eid}"
        return f"{self.kind.value}({self.target})@T{self.tid}#{self.eid}"

    __repr__ = __str__

    # ------------------------------------------------------------------
    # Convenience predicates, mirroring the paper's notation.
    # ------------------------------------------------------------------
    @property
    def is_access(self) -> bool:
        return self.kind.is_access

    @property
    def is_read(self) -> bool:
        return self.kind.is_read

    @property
    def is_write(self) -> bool:
        return self.kind.is_write

    @property
    def is_acquire(self) -> bool:
        return self.kind is EventKind.ACQUIRE

    @property
    def is_release(self) -> bool:
        return self.kind is EventKind.RELEASE


def conflicts(e1: Event, e2: Event) -> bool:
    """Return True if ``e1 ≍ e2`` (the paper's conflicting-events predicate).

    Two events conflict when they are plain accesses to the same variable
    by *different* threads and at least one is a write. Volatile accesses
    never conflict: they are synchronisation, not data.
    """
    if not (e1.is_access and e2.is_access):
        return False
    if e1.tid == e2.tid or e1.target != e2.target:
        return False
    return e1.is_write or e2.is_write

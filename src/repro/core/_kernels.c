/* Native implementations of the clock hot-path kernels.
 *
 * This module is the optional "compiled" backend behind
 * repro.core.kernels.  Every function here is a line-for-line
 * re-implementation of the pure-Python reference kernel of the same
 * name (the ``py_*`` functions in kernels.py, which define the
 * semantics); bit-identical behaviour is enforced by
 * tests/test_kernels_differential.py and the existing differential
 * suites.
 *
 * Contracts shared with the Python side:
 *
 * - Dict tables are iterated in insertion order (PyDict_Next walks the
 *   dense entry array of CPython's insertion-ordered dicts), and the
 *   del-then-insert maintenance (record_latest) keeps that order
 *   most-recent-last.  The edge-minimising scans depend on it.
 * - Integer comparisons take a fast path when both operands are
 *   machine-word PyLongs and fall back to rich comparison otherwise,
 *   so arbitrary-precision clock values behave exactly as in Python.
 * - scan_racing_sparse calls back into Python (clock.get, event
 *   attribute access); those callables must not mutate the table being
 *   scanned (the same requirement the Python for-loop has).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

static PyObject *str_tid;  /* interned "tid" */
static PyObject *str_eid;  /* interned "eid" */

/* Attribute names used by the fused access kernels. */
static PyObject *str_entries;        /* "entries" (DenseSourceClocks) */
static PyObject *str_owner;          /* _VarState / DenseLockQueues */
static PyObject *str_xw_time;
static PyObject *str_xw_ev;
static PyObject *str_xw_snap;
static PyObject *str_xr_time;
static PyObject *str_xr_ev;
static PyObject *str_xr_snap;
/* DenseLockQueues slots used by the fused sync-op kernels. */
static PyObject *str_records;
static PyObject *str_cursors;
static PyObject *str_open_ti;
static PyObject *str_open_rec;
/* Shared small-int singletons for the lock-queue state machine. */
static PyObject *long_neg1;
static PyObject *long_neg2;

static int ebuf_push(PyObject *ebuf, PyObject *src_obj, PyObject *dst_obj);
/* Slots of the fused-kernel counter block (smarttrack._FS_*). */
#define FS_JOINS          0
#define FS_FILTER_SKIPS   1
#define FS_FILTER_CHECKS  2
#define FS_EXCL_FAST      3
#define FS_SNAP_REUSES    4
#define FS_SNAP_COPIES    5
#define FS_GRAPH_EDGES    6
#define FS_RULE_B_SKIPS   7
#define FS_LOCK_TRANSFERS 8
#define FS_SLOTS          9

/* ------------------------------------------------------------------ */
/* Comparison helpers (exact-long fast path, rich-compare fallback)    */
/* ------------------------------------------------------------------ */
static int
obj_cmp(PyObject *a, PyObject *b, int op)
{
    if (PyLong_CheckExact(a) && PyLong_CheckExact(b)) {
        int ofa = 0, ofb = 0;
        long la = PyLong_AsLongAndOverflow(a, &ofa);
        long lb = PyLong_AsLongAndOverflow(b, &ofb);
        if (!ofa && !ofb) {
            switch (op) {
                case Py_GT: return la > lb;
                case Py_GE: return la >= lb;
                case Py_LT: return la < lb;
                default: break;
            }
        }
    }
    return PyObject_RichCompareBool(a, b, op);
}

/* values[i] with Python indexing semantics; borrowed reference. */
static PyObject *
list_get(PyObject *list, Py_ssize_t i)
{
    Py_ssize_t n = PyList_GET_SIZE(list);
    if (i < 0)
        i += n;
    if (i < 0 || i >= n) {
        PyErr_SetString(PyExc_IndexError, "list index out of range");
        return NULL;
    }
    return PyList_GET_ITEM(list, i);
}

/* Core of join_into_list: dst[i] = max(dst[i], src[i]) for every src
 * component.  Returns 1 if dst grew, 0 if unchanged, -1 on error. */
static int
join_core(PyObject *dst, PyObject *src)
{
    PyObject *fast;
    PyObject **items;
    Py_ssize_t i, n, nd;
    int changed = 0;

    if (!PyList_Check(dst)) {
        PyErr_SetString(PyExc_TypeError, "dst must be a list");
        return -1;
    }
    fast = PySequence_Fast(src, "src must be a sequence");
    if (fast == NULL)
        return -1;
    n = PySequence_Fast_GET_SIZE(fast);
    items = PySequence_Fast_ITEMS(fast);
    nd = PyList_GET_SIZE(dst);
    for (i = 0; i < n; i++) {
        PyObject *s = items[i];
        PyObject *d;
        int c;
        if (i >= nd) {  /* mirrors the Python dst[i] IndexError */
            PyErr_SetString(PyExc_IndexError, "list index out of range");
            goto error;
        }
        d = PyList_GET_ITEM(dst, i);
        c = obj_cmp(s, d, Py_GT);
        if (c < 0)
            goto error;
        if (c) {
            Py_INCREF(s);
            PyList_SetItem(dst, i, s);  /* steals s, decrefs old */
            changed = 1;
        }
    }
    Py_DECREF(fast);
    return changed;
error:
    Py_DECREF(fast);
    return -1;
}

/* ------------------------------------------------------------------ */
/* List kernels                                                        */
/* ------------------------------------------------------------------ */
static PyObject *
k_join_into_list(PyObject *self, PyObject *args)
{
    PyObject *dst, *src;
    if (!PyArg_ParseTuple(args, "OO:join_into_list", &dst, &src))
        return NULL;
    if (join_core(dst, src) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
k_join_into_list_changed(PyObject *self, PyObject *args)
{
    PyObject *dst, *src;
    int changed;
    if (!PyArg_ParseTuple(args, "OO:join_into_list_changed", &dst, &src))
        return NULL;
    changed = join_core(dst, src);
    if (changed < 0)
        return NULL;
    return PyBool_FromLong(changed);
}

static PyObject *
k_dominates_list(PyObject *self, PyObject *args)
{
    PyObject *big, *small, *fast;
    PyObject **items;
    Py_ssize_t i, n, nb;

    if (!PyArg_ParseTuple(args, "OO:dominates_list", &big, &small))
        return NULL;
    if (!PyList_Check(big)) {
        PyErr_SetString(PyExc_TypeError, "big must be a list");
        return NULL;
    }
    fast = PySequence_Fast(small, "small must be a sequence");
    if (fast == NULL)
        return NULL;
    n = PySequence_Fast_GET_SIZE(fast);
    items = PySequence_Fast_ITEMS(fast);
    nb = PyList_GET_SIZE(big);
    for (i = 0; i < n; i++) {
        PyObject *v = items[i];
        int truthy = PyObject_IsTrue(v);
        if (truthy < 0)
            goto error;
        if (truthy) {
            int c;
            if (i >= nb) {
                Py_DECREF(fast);
                Py_RETURN_FALSE;
            }
            c = obj_cmp(v, PyList_GET_ITEM(big, i), Py_GT);
            if (c < 0)
                goto error;
            if (c) {
                Py_DECREF(fast);
                Py_RETURN_FALSE;
            }
        }
    }
    Py_DECREF(fast);
    Py_RETURN_TRUE;
error:
    Py_DECREF(fast);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* Table maintenance                                                   */
/* ------------------------------------------------------------------ */
/* (Re-)insert table[key] = value at the end of the insertion order. */
static int
record_latest_core(PyObject *table, PyObject *key, PyObject *value)
{
    int has;
    if (!PyDict_Check(table)) {
        PyErr_SetString(PyExc_TypeError, "table must be a dict");
        return -1;
    }
    has = PyDict_Contains(table, key);
    if (has < 0)
        return -1;
    if (has && PyDict_DelItem(table, key) < 0)
        return -1;
    return PyDict_SetItem(table, key, value);
}

static PyObject *
k_record_latest(PyObject *self, PyObject *args)
{
    PyObject *table, *key, *value;
    if (!PyArg_ParseTuple(args, "OOO:record_latest", &table, &key, &value))
        return NULL;
    if (record_latest_core(table, key, value) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
k_slot_intern(PyObject *self, PyObject *args)
{
    PyObject *index, *tids, *values, *tid, *idx_obj;
    Py_ssize_t idx, nvals, want;

    if (!PyArg_ParseTuple(args, "OOOO:slot_intern",
                          &index, &tids, &values, &tid))
        return NULL;
    if (!PyDict_Check(index) || !PyList_Check(tids) ||
            !PyList_Check(values)) {
        PyErr_SetString(PyExc_TypeError,
                        "slot_intern expects (dict, list, list, tid)");
        return NULL;
    }
    idx_obj = PyDict_GetItemWithError(index, tid);
    if (idx_obj == NULL) {
        if (PyErr_Occurred())
            return NULL;
        idx = PyList_GET_SIZE(tids);
        idx_obj = PyLong_FromSsize_t(idx);
        if (idx_obj == NULL)
            return NULL;
        if (PyDict_SetItem(index, tid, idx_obj) < 0) {
            Py_DECREF(idx_obj);
            return NULL;
        }
        if (PyList_Append(tids, tid) < 0) {
            Py_DECREF(idx_obj);
            return NULL;
        }
    }
    else {
        idx = PyLong_AsSsize_t(idx_obj);
        if (idx == -1 && PyErr_Occurred())
            return NULL;
        Py_INCREF(idx_obj);
    }
    nvals = PyList_GET_SIZE(values);
    if (idx >= nvals) {
        want = PyList_GET_SIZE(tids);
        while (nvals < want) {
            PyObject *zero = PyLong_FromLong(0);
            if (zero == NULL || PyList_Append(values, zero) < 0) {
                Py_XDECREF(zero);
                Py_DECREF(idx_obj);
                return NULL;
            }
            Py_DECREF(zero);
            nvals++;
        }
    }
    return idx_obj;
}

/* ------------------------------------------------------------------ */
/* Dense rule (a): edge-minimised source-clock join                    */
/* ------------------------------------------------------------------ */

/* Core of source_join_into, shared with the fused access kernels.
 * When out != NULL, newly ordered source eids are appended to *out
 * (created lazily).  Returns 1 if any source joined, 0 if none,
 * -1 on error. */
static int
source_join_core(PyObject *entries, PyObject *values, long skip_ti,
                 PyObject **out)
{
    PyObject *key, *val;
    Py_ssize_t pos = 0;
    int joined = 0;

    if (!PyDict_Check(entries) || !PyList_Check(values)) {
        PyErr_SetString(PyExc_TypeError,
                        "source_join_into expects (dict, list, int)");
        return -1;
    }
    while (PyDict_Next(entries, &pos, &key, &val)) {
        long u = PyLong_AsLong(key);
        PyObject *vu;
        int c;
        if (u == -1 && PyErr_Occurred())
            return -1;
        if (u == skip_ti)
            continue;
        if (!PyTuple_Check(val) || PyTuple_GET_SIZE(val) != 3) {
            PyErr_SetString(PyExc_TypeError,
                            "source entry must be a 3-tuple");
            return -1;
        }
        vu = list_get(values, (Py_ssize_t)u);
        if (vu == NULL)
            return -1;
        c = obj_cmp(vu, PyTuple_GET_ITEM(val, 1), Py_GE);
        if (c < 0)
            return -1;
        if (c)
            continue;
        if (join_core(values, PyTuple_GET_ITEM(val, 2)) < 0)
            return -1;
        joined = 1;
        if (out != NULL) {
            if (*out == NULL) {
                *out = PyList_New(0);
                if (*out == NULL)
                    return -1;
            }
            if (PyList_Append(*out, PyTuple_GET_ITEM(val, 0)) < 0)
                return -1;
        }
    }
    return joined;
}

static PyObject *
k_source_join_into(PyObject *self, PyObject *args)
{
    PyObject *entries, *values, *out = NULL;
    long skip_ti;

    if (!PyArg_ParseTuple(args, "OOl:source_join_into",
                          &entries, &values, &skip_ti))
        return NULL;
    if (source_join_core(entries, values, skip_ti, &out) < 0) {
        Py_XDECREF(out);
        return NULL;
    }
    if (out == NULL)
        Py_RETURN_NONE;
    return out;
}

/* ------------------------------------------------------------------ */
/* Dense rule (b): FIFO-cursor fixpoint                                */
/* ------------------------------------------------------------------ */

/* Core of rule_b_fixpoint, shared with the fused release kernels.
 * When out != NULL, the newly ordered release eids are appended to
 * *out (created lazily, reference insertion order; cleanup of *out on
 * error is the caller's job).  Returns 1 if any record joined, 0 if
 * none, -1 on error. */
static int
rule_b_core(PyObject *records, PyObject *cursors, PyObject *values,
            PyObject **out)
{
    int changed = 1, joined = 0;

    if (!PyDict_Check(records) || !PyDict_Check(cursors) ||
            !PyList_Check(values)) {
        PyErr_SetString(PyExc_TypeError,
                        "rule_b_fixpoint expects (dict, dict, list)");
        return -1;
    }
    while (changed) {
        PyObject *key, *recs;
        Py_ssize_t pos = 0;
        changed = 0;
        while (PyDict_Next(records, &pos, &key, &recs)) {
            PyObject *cur, *i_obj, *vu;
            Py_ssize_t i, n;
            long u;

            u = PyLong_AsLong(key);
            if (u == -1 && PyErr_Occurred())
                return -1;
            cur = PyDict_GetItemWithError(cursors, key);
            if (cur == NULL) {
                if (PyErr_Occurred())
                    return -1;
                i = 0;
            }
            else {
                i = PyLong_AsSsize_t(cur);
                if (i == -1 && PyErr_Occurred())
                    return -1;
            }
            if (!PyList_Check(recs)) {
                PyErr_SetString(PyExc_TypeError,
                                "record queue must be a list");
                return -1;
            }
            n = PyList_GET_SIZE(recs);
            vu = NULL;
            while (i < n) {
                PyObject *rec = PyList_GET_ITEM(recs, i);
                PyObject *snap;
                int c;
                if (!PyList_Check(rec) || PyList_GET_SIZE(rec) != 4) {
                    PyErr_SetString(PyExc_TypeError,
                                    "rule (b) record must be a 4-list");
                    return -1;
                }
                snap = PyList_GET_ITEM(rec, 3);
                if (snap == Py_None)
                    break;  /* source critical section still open */
                vu = list_get(values, (Py_ssize_t)u);
                if (vu == NULL)
                    return -1;
                c = obj_cmp(vu, PyList_GET_ITEM(rec, 0), Py_LT);
                if (c < 0)
                    return -1;
                if (c)
                    break;  /* FIFO heads are monotone per thread */
                c = obj_cmp(vu, PyList_GET_ITEM(rec, 2), Py_LT);
                if (c < 0)
                    return -1;
                if (c) {
                    if (join_core(values, snap) < 0)
                        return -1;
                    joined = 1;
                    if (out != NULL) {
                        if (*out == NULL) {
                            *out = PyList_New(0);
                            if (*out == NULL)
                                return -1;
                        }
                        if (PyList_Append(*out,
                                          PyList_GET_ITEM(rec, 1)) < 0)
                            return -1;
                    }
                    changed = 1;
                }
                i++;
            }
            i_obj = PyLong_FromSsize_t(i);
            if (i_obj == NULL)
                return -1;
            if (PyDict_SetItem(cursors, key, i_obj) < 0) {
                Py_DECREF(i_obj);
                return -1;
            }
            Py_DECREF(i_obj);
        }
    }
    return joined;
}

static PyObject *
k_rule_b_fixpoint(PyObject *self, PyObject *args)
{
    PyObject *records, *cursors, *values, *out = NULL;

    if (!PyArg_ParseTuple(args, "OOO:rule_b_fixpoint",
                          &records, &cursors, &values))
        return NULL;
    if (rule_b_core(records, cursors, values, &out) < 0) {
        Py_XDECREF(out);
        return NULL;
    }
    if (out == NULL)
        Py_RETURN_NONE;
    return out;
}

/* ------------------------------------------------------------------ */
/* Dense gated race scan (SmartTrack epoch gates + history scan)       */
/* ------------------------------------------------------------------ */

/* Scan one dense access map for racing priors, appending (key, record)
 * pairs to *out (created lazily).  Returns 0 on success, -1 on error. */
static int
scan_dense_table(PyObject *table, long ti, PyObject *values, PyObject **out)
{
    PyObject *key, *val;
    Py_ssize_t pos = 0;

    if (!PyDict_Check(table)) {
        PyErr_SetString(PyExc_TypeError, "access map must be a dict");
        return -1;
    }
    while (PyDict_Next(table, &pos, &key, &val)) {
        long u = PyLong_AsLong(key);
        PyObject *vu, *pair;
        int c;
        if (u == -1 && PyErr_Occurred())
            return -1;
        if (u == ti)
            continue;
        if (!PyTuple_Check(val) || PyTuple_GET_SIZE(val) != 3) {
            PyErr_SetString(PyExc_TypeError,
                            "access record must be a 3-tuple");
            return -1;
        }
        vu = list_get(values, (Py_ssize_t)u);
        if (vu == NULL)
            return -1;
        c = obj_cmp(PyTuple_GET_ITEM(val, 0), vu, Py_GT);
        if (c < 0)
            return -1;
        if (!c)
            continue;
        if (*out == NULL) {
            *out = PyList_New(0);
            if (*out == NULL)
                return -1;
        }
        pair = PyTuple_Pack(2, key, val);
        if (pair == NULL)
            return -1;
        if (PyList_Append(*out, pair) < 0) {
            Py_DECREF(pair);
            return -1;
        }
        Py_DECREF(pair);
    }
    return 0;
}

static PyObject *
k_gated_scan(PyObject *self, PyObject *args)
{
    PyObject *writes, *reads, *values, *we_time, *rg_time;
    PyObject *racing = NULL, *result;
    long ti, we_ti, rg_ti;
    int use_gates, rg_shared, w_gate = 0, r_gate = 0;

    if (!PyArg_ParseTuple(args, "OOlOiOlOli:gated_scan",
                          &writes, &reads, &ti, &values, &use_gates,
                          &we_time, &we_ti, &rg_time, &rg_ti, &rg_shared))
        return NULL;
    if (!PyList_Check(values)) {
        PyErr_SetString(PyExc_TypeError, "values must be a list");
        return NULL;
    }
    if (writes != Py_None) {
        int gated = 0;
        if (use_gates) {
            int truthy = PyObject_IsTrue(we_time);
            if (truthy < 0)
                return NULL;
            if (!truthy)
                gated = 1;  /* no write yet: trivially covered */
            else {
                PyObject *v = list_get(values, (Py_ssize_t)we_ti);
                int c;
                if (v == NULL)
                    return NULL;
                c = obj_cmp(v, we_time, Py_GE);
                if (c < 0)
                    return NULL;
                gated = c;
            }
        }
        if (gated)
            w_gate = 1;
        else if (scan_dense_table(writes, ti, values, &racing) < 0)
            goto error;
    }
    if (reads != Py_None) {
        int gated = 0;
        if (w_gate && !rg_shared) {
            int truthy = PyObject_IsTrue(rg_time);
            if (truthy < 0)
                goto error;
            if (!truthy)
                gated = 1;
            else {
                PyObject *v = list_get(values, (Py_ssize_t)rg_ti);
                int c;
                if (v == NULL)
                    goto error;
                c = obj_cmp(v, rg_time, Py_GE);
                if (c < 0)
                    goto error;
                gated = c;
            }
        }
        if (gated)
            r_gate = 1;
        else if (scan_dense_table(reads, ti, values, &racing) < 0)
            goto error;
    }
    result = Py_BuildValue("(OOO)",
                           racing == NULL ? Py_None : racing,
                           w_gate ? Py_True : Py_False,
                           r_gate ? Py_True : Py_False);
    Py_XDECREF(racing);
    return result;
error:
    Py_XDECREF(racing);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* Sparse access-history race scan (Detector.check_access)             */
/* ------------------------------------------------------------------ */

static int
scan_sparse_table(PyObject *table, PyObject *tid, PyObject *local_time,
                  PyObject *clock_get, PyObject **out)
{
    PyObject *key, *rec;
    Py_ssize_t pos = 0;
    /* local_time is a plain list for in-memory traces but an
     * array('I') view for streaming traces, so index generically. */
    int lt_is_list = PyList_Check(local_time);

    if (!PyDict_Check(table)) {
        PyErr_SetString(PyExc_TypeError, "history table must be a dict");
        return -1;
    }
    while (PyDict_Next(table, &pos, &key, &rec)) {
        PyObject *prior, *ptid, *peid, *lt, *cg;
        Py_ssize_t eid;
        int ne, c;

        if (!PyTuple_Check(rec) || PyTuple_GET_SIZE(rec) != 2) {
            PyErr_SetString(PyExc_TypeError,
                            "history record must be a 2-tuple");
            return -1;
        }
        prior = PyTuple_GET_ITEM(rec, 0);
        ptid = PyObject_GetAttr(prior, str_tid);
        if (ptid == NULL)
            return -1;
        ne = PyObject_RichCompareBool(ptid, tid, Py_NE);
        if (ne < 0) {
            Py_DECREF(ptid);
            return -1;
        }
        if (!ne) {
            Py_DECREF(ptid);
            continue;
        }
        peid = PyObject_GetAttr(prior, str_eid);
        if (peid == NULL) {
            Py_DECREF(ptid);
            return -1;
        }
        eid = PyLong_AsSsize_t(peid);
        Py_DECREF(peid);
        if (eid == -1 && PyErr_Occurred()) {
            Py_DECREF(ptid);
            return -1;
        }
        if (lt_is_list) {
            lt = list_get(local_time, eid);
            Py_XINCREF(lt);
        }
        else {
            lt = PySequence_GetItem(local_time, eid);
        }
        if (lt == NULL) {
            Py_DECREF(ptid);
            return -1;
        }
        cg = PyObject_CallFunctionObjArgs(clock_get, ptid, NULL);
        Py_DECREF(ptid);
        if (cg == NULL) {
            Py_DECREF(lt);
            return -1;
        }
        c = obj_cmp(lt, cg, Py_GT);
        Py_DECREF(lt);
        Py_DECREF(cg);
        if (c < 0)
            return -1;
        if (!c)
            continue;
        if (*out == NULL) {
            *out = PyList_New(0);
            if (*out == NULL)
                return -1;
        }
        if (PyList_Append(*out, rec) < 0)
            return -1;
    }
    return 0;
}

static PyObject *
k_scan_racing_sparse(PyObject *self, PyObject *args)
{
    PyObject *last_write, *last_read, *tid, *local_time, *clock_get;
    PyObject *racing = NULL;

    if (!PyArg_ParseTuple(args, "OOOOO:scan_racing_sparse",
                          &last_write, &last_read, &tid, &local_time,
                          &clock_get))
        return NULL;
    if (scan_sparse_table(last_write, tid, local_time, clock_get,
                          &racing) < 0) {
        Py_XDECREF(racing);
        return NULL;
    }
    if (last_read != Py_None &&
            scan_sparse_table(last_read, tid, local_time, clock_get,
                              &racing) < 0) {
        Py_XDECREF(racing);
        return NULL;
    }
    if (racing == NULL)
        Py_RETURN_NONE;
    return racing;
}

/* ------------------------------------------------------------------ */
/* Fused per-access fast paths (EpochWCPDetector / EpochDCDetector)    */
/* ------------------------------------------------------------------ */

/* list[i] = v with a new reference taken for the list. */
static int
list_set_obj(PyObject *list, Py_ssize_t i, PyObject *v)
{
    Py_INCREF(v);
    return PyList_SetItem(list, i, v);  /* steals v, decrefs old */
}

/* A fresh dense clock: [0] * n. */
static PyObject *
zeros_list(Py_ssize_t n)
{
    PyObject *lst = PyList_New(n);
    Py_ssize_t i;
    if (lst == NULL)
        return NULL;
    for (i = 0; i < n; i++) {
        PyObject *zero = PyLong_FromLong(0);
        if (zero == NULL) {
            Py_DECREF(lst);
            return NULL;
        }
        PyList_SET_ITEM(lst, i, zero);
    }
    return lst;
}

/* fs[i] += delta on the fused-kernel counter block (a plain list of
 * machine-word ints; smarttrack's _drain_fused folds it back into the
 * named detector counters before anything reads them). */
static int
bump_slot(PyObject *fs, Py_ssize_t i, long delta)
{
    PyObject *cur = PyList_GET_ITEM(fs, i);
    PyObject *fresh;
    int of = 0;
    long v;

    if (!PyLong_CheckExact(cur)) {
        PyErr_SetString(PyExc_TypeError, "counter block must hold ints");
        return -1;
    }
    v = PyLong_AsLongAndOverflow(cur, &of);
    if (of) {
        PyErr_SetString(PyExc_OverflowError, "counter block overflow");
        return -1;
    }
    fresh = PyLong_FromLong(v + delta);
    if (fresh == NULL)
        return -1;
    return PyList_SetItem(fs, i, fresh);
}

/* Join one conflicting critical-section table into `values`; with the
 * edge buffer active (ebuf != NULL), append one counted
 * (source_release -> eid) pair per newly ordered source, in the order
 * source_join_core visits them (= the reference's _add_edge order).
 * Returns 1 if anything joined, 0 otherwise, -1 on error. */
static int
rule_a_join_one(PyObject *src, PyObject *values, long ti,
                PyObject *fs, PyObject *ebuf, PyObject *eid_obj)
{
    PyObject *entries = PyObject_GetAttr(src, str_entries);
    PyObject *srcs = NULL;
    int c;

    if (entries == NULL)
        return -1;
    c = source_join_core(entries, values, ti, ebuf == NULL ? NULL : &srcs);
    Py_DECREF(entries);
    if (c < 0) {
        Py_XDECREF(srcs);
        return -1;
    }
    if (srcs != NULL) {
        Py_ssize_t k, n = PyList_GET_SIZE(srcs);
        for (k = 0; k < n; k++) {
            if (ebuf_push(ebuf, PyList_GET_ITEM(srcs, k), eid_obj) < 0) {
                Py_DECREF(srcs);
                return -1;
            }
        }
        if (n > 0 && bump_slot(fs, FS_GRAPH_EDGES, (long)n) < 0) {
            Py_DECREF(srcs);
            return -1;
        }
        Py_DECREF(srcs);
    }
    return c;
}

/* The held-lock rule (a) staging loop shared by both fused access
 * kernels: join the conflicting critical-section source clocks into
 * the analysis clock and record this access as pending for the
 * enclosing releases.  Returns 1 if any source joined (the caller
 * invalidates the thread's snapshot), 0 otherwise, -1 on error. */
static int
rule_a_held(PyObject *held_t, PyObject *cs_writes, PyObject *cs_reads,
            PyObject *pend, PyObject *values, long ti, long nv,
            PyObject *vi_obj, long vi, int is_write,
            PyObject *fs, PyObject *ebuf, PyObject *eid_obj)
{
    Py_ssize_t k, nheld;
    int dirty = 0;

    if (!PyTuple_Check(held_t)) {
        PyErr_SetString(PyExc_TypeError, "held locks must be a tuple");
        return -1;
    }
    if (!PyDict_Check(pend)) {
        PyErr_SetString(PyExc_TypeError, "pending map must be a dict");
        return -1;
    }
    nheld = PyTuple_GET_SIZE(held_t);
    for (k = 0; k < nheld; k++) {
        PyObject *li_obj = PyTuple_GET_ITEM(held_t, k);
        PyObject *key, *src, *cur;
        long li = PyLong_AsLong(li_obj);
        int c;

        if (li == -1 && PyErr_Occurred())
            return -1;
        key = PyLong_FromLong(li * nv + vi);
        if (key == NULL)
            return -1;
        src = PyDict_GetItemWithError(cs_writes, key);
        if (src == NULL && PyErr_Occurred()) {
            Py_DECREF(key);
            return -1;
        }
        if (src != NULL) {
            c = rule_a_join_one(src, values, ti, fs, ebuf, eid_obj);
            if (c < 0) {
                Py_DECREF(key);
                return -1;
            }
            dirty |= c;
        }
        if (is_write) {
            src = PyDict_GetItemWithError(cs_reads, key);
            if (src == NULL && PyErr_Occurred()) {
                Py_DECREF(key);
                return -1;
            }
            if (src != NULL) {
                c = rule_a_join_one(src, values, ti, fs, ebuf, eid_obj);
                if (c < 0) {
                    Py_DECREF(key);
                    return -1;
                }
                dirty |= c;
            }
        }
        Py_DECREF(key);
        /* cur = pend.setdefault(li, (set(), set())) */
        cur = PyDict_GetItemWithError(pend, li_obj);
        if (cur == NULL) {
            PyObject *reads_set, *writes_set, *fresh;
            if (PyErr_Occurred())
                return -1;
            reads_set = PySet_New(NULL);
            writes_set = PySet_New(NULL);
            if (reads_set == NULL || writes_set == NULL) {
                Py_XDECREF(reads_set);
                Py_XDECREF(writes_set);
                return -1;
            }
            fresh = PyTuple_Pack(2, reads_set, writes_set);
            Py_DECREF(reads_set);
            Py_DECREF(writes_set);
            if (fresh == NULL)
                return -1;
            if (PyDict_SetItem(pend, li_obj, fresh) < 0) {
                Py_DECREF(fresh);
                return -1;
            }
            Py_DECREF(fresh);
            cur = PyDict_GetItemWithError(pend, li_obj);
            if (cur == NULL)
                return -1;
        }
        if (!PyTuple_Check(cur) || PyTuple_GET_SIZE(cur) != 2) {
            PyErr_SetString(PyExc_TypeError,
                            "pending entry must be a (reads, writes) pair");
            return -1;
        }
        if (PySet_Add(PyTuple_GET_ITEM(cur, is_write ? 1 : 0), vi_obj) < 0)
            return -1;
    }
    return dirty;
}

/* The exclusive-stage store: take or reuse the per-thread snapshot
 * (the dirty-flag cache) and record the access in the O(1) x* fields.
 * Returns 0 on success, -1 on error. */
static int
excl_fast(PyObject *fs, PyObject *st, PyObject *clock, PyObject *snaps,
          PyObject *snap_ok, long ti, int force_snap, int is_write,
          PyObject *t_obj, PyObject *event)
{
    PyObject *snap;
    int snap_owned = 0;

    if (bump_slot(fs, FS_EXCL_FAST, 1) < 0)
        return -1;
    if (force_snap) {
        PyObject *ok = list_get(snap_ok, (Py_ssize_t)ti);
        int truthy;
        if (ok == NULL)
            return -1;
        truthy = PyObject_IsTrue(ok);
        if (truthy < 0)
            return -1;
        if (truthy) {
            if (bump_slot(fs, FS_SNAP_REUSES, 1) < 0)
                return -1;
            snap = list_get(snaps, (Py_ssize_t)ti);
            if (snap == NULL)
                return -1;
        }
        else {
            snap = PyList_GetSlice(clock, 0, PyList_GET_SIZE(clock));
            if (snap == NULL)
                return -1;
            snap_owned = 1;
            Py_INCREF(snap);
            if (PyList_SetItem(snaps, (Py_ssize_t)ti, snap) < 0)
                goto error;
            if (list_set_obj(snap_ok, (Py_ssize_t)ti, Py_True) < 0)
                goto error;
            if (bump_slot(fs, FS_SNAP_COPIES, 1) < 0)
                goto error;
        }
    }
    else {
        snap = Py_None;
    }
    if (PyObject_SetAttr(st, is_write ? str_xw_time : str_xr_time,
                         t_obj) < 0)
        goto error;
    if (PyObject_SetAttr(st, is_write ? str_xw_ev : str_xr_ev, event) < 0)
        goto error;
    if (PyObject_SetAttr(st, is_write ? str_xw_snap : str_xr_snap,
                         snap) < 0)
        goto error;
    if (snap_owned)
        Py_DECREF(snap);
    return 0;
error:
    if (snap_owned)
        Py_DECREF(snap);
    return -1;
}

/* ------------------------------------------------------------------ */
/* The DC edge buffer                                                  */
/* ------------------------------------------------------------------ */

/* Graph edges are staged as a flat [src0, dst0, src1, dst1, ...]
 * Python list shared with the detector (its `_ebuf`), appended in
 * exactly the order the reference detector inserts them into the
 * constraint graph, and drained by Python at finish() — so the fused
 * kernels stay graph-agnostic and the drained graph is edge-for-edge
 * identical, insertion order included. */
static int
ebuf_push(PyObject *ebuf, PyObject *src_obj, PyObject *dst_obj)
{
    if (PyList_Append(ebuf, src_obj) < 0)
        return -1;
    return PyList_Append(ebuf, dst_obj);
}

/* One call executes the entire _on_access body of the epoch detectors
 * for the overwhelmingly common cases; the return value tells the
 * caller whether the rare SHARED-stage race check still must run in
 * Python: 0 — fully handled, 1 — run _check_shared.
 *
 * ctx is built once per trace by the detector's begin_trace:
 *   (fs, tix, lt, tgt, held, clock_a, clock_b, pending_fork, snap_ok,
 *    snaps, cand, vars, pending_vars, cs_writes, cs_reads, nv, T,
 *    force_snap, varstate_cls, ebuf)
 * with clock_a/clock_b = (_h, _p) for WCP and (_values, _last_event)
 * for DC.  ebuf is the DC edge buffer when graph building is on, None
 * otherwise (always None for WCP). */

#define ACCESS_CTX_SIZE 20

typedef struct {
    PyObject *fs, *tix, *lt, *tgt, *held, *clock_a, *clock_b;
    PyObject *pending_fork, *snap_ok, *snaps, *cand, *vars;
    PyObject *pending_vars, *cs_w, *cs_r, *varstate_cls;
    PyObject *ebuf;  /* NULL when graph building is off */
    long nv, T;
    int force_snap;
} access_ctx;

static int
unpack_access_ctx(PyObject *ctx, access_ctx *c)
{
    if (!PyTuple_Check(ctx) || PyTuple_GET_SIZE(ctx) != ACCESS_CTX_SIZE) {
        PyErr_SetString(PyExc_TypeError, "bad access kernel context");
        return -1;
    }
    c->fs = PyTuple_GET_ITEM(ctx, 0);
    c->tix = PyTuple_GET_ITEM(ctx, 1);
    c->lt = PyTuple_GET_ITEM(ctx, 2);
    c->tgt = PyTuple_GET_ITEM(ctx, 3);
    c->held = PyTuple_GET_ITEM(ctx, 4);
    c->clock_a = PyTuple_GET_ITEM(ctx, 5);
    c->clock_b = PyTuple_GET_ITEM(ctx, 6);
    c->pending_fork = PyTuple_GET_ITEM(ctx, 7);
    c->snap_ok = PyTuple_GET_ITEM(ctx, 8);
    c->snaps = PyTuple_GET_ITEM(ctx, 9);
    c->cand = PyTuple_GET_ITEM(ctx, 10);
    c->vars = PyTuple_GET_ITEM(ctx, 11);
    c->pending_vars = PyTuple_GET_ITEM(ctx, 12);
    c->cs_w = PyTuple_GET_ITEM(ctx, 13);
    c->cs_r = PyTuple_GET_ITEM(ctx, 14);
    c->nv = PyLong_AsLong(PyTuple_GET_ITEM(ctx, 15));
    c->T = PyLong_AsLong(PyTuple_GET_ITEM(ctx, 16));
    c->force_snap = PyObject_IsTrue(PyTuple_GET_ITEM(ctx, 17));
    c->varstate_cls = PyTuple_GET_ITEM(ctx, 18);
    c->ebuf = PyTuple_GET_ITEM(ctx, 19);
    if (((c->nv == -1 || c->T == -1) && PyErr_Occurred()) ||
            c->force_snap < 0)
        return -1;
    if (c->ebuf == Py_None)
        c->ebuf = NULL;
    else if (!PyList_Check(c->ebuf)) {
        PyErr_SetString(PyExc_TypeError, "bad access kernel context");
        return -1;
    }
    if (!PyList_Check(c->fs) || PyList_GET_SIZE(c->fs) < FS_SLOTS) {
        PyErr_SetString(PyExc_TypeError, "bad access kernel context");
        return -1;
    }
    if (!PyList_Check(c->tix) || !PyList_Check(c->lt) ||
            !PyList_Check(c->tgt) || !PyList_Check(c->held) ||
            !PyList_Check(c->clock_a) || !PyList_Check(c->clock_b) ||
            !PyDict_Check(c->pending_fork) || !PyList_Check(c->snap_ok) ||
            !PyList_Check(c->snaps) || !PyList_Check(c->vars) ||
            !PyList_Check(c->pending_vars) || !PyDict_Check(c->cs_w) ||
            !PyDict_Check(c->cs_r)) {
        PyErr_SetString(PyExc_TypeError, "bad access kernel context");
        return -1;
    }
    return 0;
}

/* The tail shared by both kernels: rule (a) staging, the prefilter
 * gate, and the exclusive fast path.  `values` is the clock the race
 * check consults (P for WCP, the DC clock for DC).  Returns 0/1 as the
 * kernel result or -1 on error. */
static int
access_tail(access_ctx *c, Py_ssize_t eid, int is_write, PyObject *event,
            PyObject *ti_obj, long ti, PyObject *t_obj, PyObject *values,
            PyObject *eid_obj)
{
    PyObject *held_t, *st, *vi_obj;
    long vi, owner;
    int st_owned = 0;

    vi_obj = list_get(c->tgt, eid);
    if (vi_obj == NULL)
        return -1;
    vi = PyLong_AsLong(vi_obj);
    if (vi == -1 && PyErr_Occurred())
        return -1;
    held_t = list_get(c->held, eid);
    if (held_t == NULL)
        return -1;
    if (held_t != Py_None) {
        PyObject *pend = list_get(c->pending_vars, ti);
        int dirty;
        if (pend == NULL)
            return -1;
        dirty = rule_a_held(held_t, c->cs_w, c->cs_r, pend, values,
                            ti, c->nv, vi_obj, vi, is_write,
                            c->fs, c->ebuf, eid_obj);
        if (dirty < 0)
            return -1;
        if (dirty && list_set_obj(c->snap_ok, ti, Py_False) < 0)
            return -1;
    }
    if (c->cand != Py_None) {
        PyObject *cv;
        int truthy;
        if (!PyList_Check(c->cand)) {
            PyErr_SetString(PyExc_TypeError, "prefilter must be a list");
            return -1;
        }
        cv = list_get(c->cand, vi);
        if (cv == NULL)
            return -1;
        truthy = PyObject_IsTrue(cv);
        if (truthy < 0)
            return -1;
        if (!truthy)
            return bump_slot(c->fs, FS_FILTER_SKIPS, 1) < 0 ? -1 : 0;
        if (bump_slot(c->fs, FS_FILTER_CHECKS, 1) < 0)
            return -1;
    }
    st = list_get(c->vars, vi);
    if (st == NULL)
        return -1;
    if (st == Py_None) {
        st = PyObject_CallFunctionObjArgs(c->varstate_cls, ti_obj, NULL);
        if (st == NULL)
            return -1;
        st_owned = 1;
        Py_INCREF(st);
        if (PyList_SetItem(c->vars, vi, st) < 0)
            goto error;
    }
    {
        PyObject *owner_obj = PyObject_GetAttr(st, str_owner);
        if (owner_obj == NULL)
            goto error;
        owner = PyLong_AsLong(owner_obj);
        Py_DECREF(owner_obj);
        if (owner == -1 && PyErr_Occurred())
            goto error;
    }
    if (owner == ti) {
        if (excl_fast(c->fs, st, values, c->snaps, c->snap_ok, ti,
                      c->force_snap, is_write, t_obj, event) < 0)
            goto error;
        if (st_owned)
            Py_DECREF(st);
        return 0;
    }
    if (st_owned)
        Py_DECREF(st);
    return 1;
error:
    if (st_owned)
        Py_DECREF(st);
    return -1;
}

/* The per-event WCP clock advance shared by the access and sync-op
 * kernels: bump H[ti] to the event's local time (P carries no own
 * program order) and consume a pending fork edge.  On success the
 * h_out and p_out parameters receive borrowed references kept alive
 * by the clock tables. */
static int
wcp_advance(PyObject *fs, PyObject *clock_a, PyObject *clock_b,
            PyObject *pending_fork, PyObject *snap_ok, long T, long ti,
            PyObject *ti_obj, PyObject *t_obj,
            PyObject **h_out, PyObject **p_out)
{
    PyObject *h, *p;

    h = list_get(clock_a, ti);
    if (h == NULL)
        return -1;
    if (h == Py_None) {
        h = zeros_list(T);
        if (h == NULL)
            return -1;
        if (PyList_SetItem(clock_a, ti, h) < 0)  /* list keeps h alive */
            return -1;
        p = zeros_list(T);
        if (p == NULL)
            return -1;
        if (PyList_SetItem(clock_b, ti, p) < 0)
            return -1;
    }
    else {
        p = list_get(clock_b, ti);
        if (p == NULL)
            return -1;
    }
    if (!PyList_Check(h) || !PyList_Check(p)) {
        PyErr_SetString(PyExc_TypeError, "clock must be a list");
        return -1;
    }
    if (list_set_obj(h, ti, t_obj) < 0)  /* h[ti] = t */
        return -1;
    if (PyDict_GET_SIZE(pending_fork) > 0) {
        PyObject *parent = PyDict_GetItemWithError(pending_fork, ti_obj);
        if (parent == NULL) {
            if (PyErr_Occurred())
                return -1;
        }
        else {
            int changed;
            Py_INCREF(parent);
            if (PyDict_DelItem(pending_fork, ti_obj) < 0 ||
                    join_core(h, parent) < 0) {
                Py_DECREF(parent);
                return -1;
            }
            changed = join_core(p, parent);
            Py_DECREF(parent);
            if (changed < 0)
                return -1;
            if (changed && list_set_obj(snap_ok, ti, Py_False) < 0)
                return -1;
            if (bump_slot(fs, FS_JOINS, 2) < 0)
                return -1;
        }
    }
    *h_out = h;
    *p_out = p;
    return 0;
}

/* The per-event DC advance shared by the access and sync-op kernels:
 * values[ti] = t, the (uncounted) program-order edge from the thread's
 * previous event, a pending fork join plus its counted edge, then
 * last_event[ti] = eid — exactly EpochDCDetector._advance.  ebuf is
 * NULL when graph building is off.  On success *values_out receives a
 * borrowed reference kept alive by the clock table. */
static int
dc_advance(PyObject *fs, PyObject *clock_a, PyObject *clock_b,
           PyObject *pending_fork, PyObject *snap_ok, PyObject *ebuf,
           long T, long ti, PyObject *ti_obj, PyObject *t_obj,
           PyObject *eid_obj, PyObject **values_out)
{
    PyObject *values;

    values = list_get(clock_a, ti);
    if (values == NULL)
        return -1;
    if (values == Py_None) {
        values = zeros_list(T);
        if (values == NULL)
            return -1;
        if (PyList_SetItem(clock_a, ti, values) < 0)
            return -1;
    }
    if (!PyList_Check(values)) {
        PyErr_SetString(PyExc_TypeError, "clock must be a list");
        return -1;
    }
    if (list_set_obj(values, ti, t_obj) < 0)  /* values[ti] = t */
        return -1;
    if (ebuf != NULL) {
        /* Program order: read prev before last_event is overwritten. */
        PyObject *prev_obj = list_get(clock_b, ti);
        long prev;
        if (prev_obj == NULL)
            return -1;
        prev = PyLong_AsLong(prev_obj);
        if (prev == -1 && PyErr_Occurred())
            return -1;
        if (prev >= 0 && ebuf_push(ebuf, prev_obj, eid_obj) < 0)
            return -1;
    }
    if (PyDict_GET_SIZE(pending_fork) > 0) {
        PyObject *pending = PyDict_GetItemWithError(pending_fork, ti_obj);
        if (pending == NULL) {
            if (PyErr_Occurred())
                return -1;
        }
        else {
            int changed;
            if (!PyTuple_Check(pending) || PyTuple_GET_SIZE(pending) != 2) {
                PyErr_SetString(PyExc_TypeError,
                                "pending fork must be (eid, clock)");
                return -1;
            }
            Py_INCREF(pending);
            if (PyDict_DelItem(pending_fork, ti_obj) < 0) {
                Py_DECREF(pending);
                return -1;
            }
            changed = join_core(values, PyTuple_GET_ITEM(pending, 1));
            if (changed < 0) {
                Py_DECREF(pending);
                return -1;
            }
            if (changed && list_set_obj(snap_ok, ti, Py_False) < 0) {
                Py_DECREF(pending);
                return -1;
            }
            if (bump_slot(fs, FS_JOINS, 1) < 0) {
                Py_DECREF(pending);
                return -1;
            }
            if (ebuf != NULL &&
                    (ebuf_push(ebuf, PyTuple_GET_ITEM(pending, 0),
                               eid_obj) < 0 ||
                     bump_slot(fs, FS_GRAPH_EDGES, 1) < 0)) {
                Py_DECREF(pending);
                return -1;
            }
            Py_DECREF(pending);
        }
    }
    if (list_set_obj(clock_b, ti, eid_obj) < 0)  /* last_event[ti] = eid */
        return -1;
    *values_out = values;
    return 0;
}

static PyObject *
k_access_wcp(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *event, *ti_obj, *t_obj, *h, *p;
    access_ctx c;
    Py_ssize_t eid;
    long ti;
    int is_write, r;

    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "access_wcp expects (ctx, eid, is_write, event)");
        return NULL;
    }
    eid = PyLong_AsSsize_t(args[1]);
    if (eid == -1 && PyErr_Occurred())
        return NULL;
    is_write = PyObject_IsTrue(args[2]);
    if (is_write < 0)
        return NULL;
    event = args[3];
    if (unpack_access_ctx(args[0], &c) < 0)
        return NULL;
    ti_obj = list_get(c.tix, eid);
    if (ti_obj == NULL)
        return NULL;
    ti = PyLong_AsLong(ti_obj);
    if (ti == -1 && PyErr_Occurred())
        return NULL;
    t_obj = list_get(c.lt, eid);
    if (t_obj == NULL)
        return NULL;
    if (wcp_advance(c.fs, c.clock_a, c.clock_b, c.pending_fork, c.snap_ok,
                    c.T, ti, ti_obj, t_obj, &h, &p) < 0)
        return NULL;
    r = access_tail(&c, eid, is_write, event, ti_obj, ti, t_obj, p, NULL);
    if (r < 0)
        return NULL;
    return PyLong_FromLong(r);
}

static PyObject *
k_access_dc(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *event, *ti_obj, *t_obj, *values, *eid_obj;
    access_ctx c;
    Py_ssize_t eid;
    long ti;
    int is_write, r;

    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "access_dc expects (ctx, eid, is_write, event)");
        return NULL;
    }
    eid = PyLong_AsSsize_t(args[1]);
    if (eid == -1 && PyErr_Occurred())
        return NULL;
    is_write = PyObject_IsTrue(args[2]);
    if (is_write < 0)
        return NULL;
    event = args[3];
    if (unpack_access_ctx(args[0], &c) < 0)
        return NULL;
    ti_obj = list_get(c.tix, eid);
    if (ti_obj == NULL)
        return NULL;
    ti = PyLong_AsLong(ti_obj);
    if (ti == -1 && PyErr_Occurred())
        return NULL;
    t_obj = list_get(c.lt, eid);
    if (t_obj == NULL)
        return NULL;
    eid_obj = PyLong_FromSsize_t(eid);
    if (eid_obj == NULL)
        return NULL;
    if (dc_advance(c.fs, c.clock_a, c.clock_b, c.pending_fork, c.snap_ok,
                   c.ebuf, c.T, ti, ti_obj, t_obj, eid_obj, &values) < 0) {
        Py_DECREF(eid_obj);
        return NULL;
    }
    r = access_tail(&c, eid, is_write, event, ti_obj, ti, t_obj, values,
                    eid_obj);
    Py_DECREF(eid_obj);
    if (r < 0)
        return NULL;
    return PyLong_FromLong(r);
}

/* ------------------------------------------------------------------ */
/* Fused sync-op fast paths (acquire / release / fork / join)          */
/* ------------------------------------------------------------------ */

/* One call executes the entire on_acquire / on_release / on_fork /
 * on_join body of the epoch detectors: clock advance, lock-queue
 * rule (a)/(b) maintenance, CCS ownership tags, and H/P snapshot
 * recording.  Signature: kernel(sctx, eid).  The release kernels
 * return a status int — 0 handled, 1 no matching acquire (the caller
 * raises the reference exception); the others return None.
 *
 * sctx is built once per trace by the detector's _bind_sync:
 *   (fs, tix, lt, tgt, clock_a, clock_b, pending_fork, snap_ok,
 *    queues, lockq_cls, pending_vars, cs_writes, cs_reads,
 *    srcclocks_cls, nv, T, ebuf, lock_h, lock_p)
 * with clock_a/clock_b = (_h, _p) for WCP and (_values, _last_event)
 * for DC; ebuf is the DC edge buffer or None; lock_h/lock_p are the
 * WCP per-lock snapshot tables (None for DC). */

#define SYNC_CTX_SIZE 19

typedef struct {
    PyObject *fs, *tix, *lt, *tgt, *clock_a, *clock_b;
    PyObject *pending_fork, *snap_ok, *queues, *lockq_cls;
    PyObject *pending_vars, *cs_w, *cs_r, *srcclocks_cls;
    PyObject *ebuf;            /* NULL when graph building is off */
    PyObject *lock_h, *lock_p; /* NULL for DC */
    long nv, T;
} sync_ctx;

static int
unpack_sync_ctx(PyObject *ctx, sync_ctx *c)
{
    if (!PyTuple_Check(ctx) || PyTuple_GET_SIZE(ctx) != SYNC_CTX_SIZE) {
        PyErr_SetString(PyExc_TypeError, "bad sync kernel context");
        return -1;
    }
    c->fs = PyTuple_GET_ITEM(ctx, 0);
    c->tix = PyTuple_GET_ITEM(ctx, 1);
    c->lt = PyTuple_GET_ITEM(ctx, 2);
    c->tgt = PyTuple_GET_ITEM(ctx, 3);
    c->clock_a = PyTuple_GET_ITEM(ctx, 4);
    c->clock_b = PyTuple_GET_ITEM(ctx, 5);
    c->pending_fork = PyTuple_GET_ITEM(ctx, 6);
    c->snap_ok = PyTuple_GET_ITEM(ctx, 7);
    c->queues = PyTuple_GET_ITEM(ctx, 8);
    c->lockq_cls = PyTuple_GET_ITEM(ctx, 9);
    c->pending_vars = PyTuple_GET_ITEM(ctx, 10);
    c->cs_w = PyTuple_GET_ITEM(ctx, 11);
    c->cs_r = PyTuple_GET_ITEM(ctx, 12);
    c->srcclocks_cls = PyTuple_GET_ITEM(ctx, 13);
    c->nv = PyLong_AsLong(PyTuple_GET_ITEM(ctx, 14));
    c->T = PyLong_AsLong(PyTuple_GET_ITEM(ctx, 15));
    c->ebuf = PyTuple_GET_ITEM(ctx, 16);
    c->lock_h = PyTuple_GET_ITEM(ctx, 17);
    c->lock_p = PyTuple_GET_ITEM(ctx, 18);
    if ((c->nv == -1 || c->T == -1) && PyErr_Occurred())
        return -1;
    if (c->ebuf == Py_None)
        c->ebuf = NULL;
    else if (!PyList_Check(c->ebuf)) {
        PyErr_SetString(PyExc_TypeError, "bad sync kernel context");
        return -1;
    }
    if (c->lock_h == Py_None)
        c->lock_h = NULL;
    else if (!PyList_Check(c->lock_h)) {
        PyErr_SetString(PyExc_TypeError, "bad sync kernel context");
        return -1;
    }
    if (c->lock_p == Py_None)
        c->lock_p = NULL;
    else if (!PyList_Check(c->lock_p)) {
        PyErr_SetString(PyExc_TypeError, "bad sync kernel context");
        return -1;
    }
    if (!PyList_Check(c->fs) || PyList_GET_SIZE(c->fs) < FS_SLOTS ||
            !PyList_Check(c->tix) || !PyList_Check(c->lt) ||
            !PyList_Check(c->tgt) || !PyList_Check(c->clock_a) ||
            !PyList_Check(c->clock_b) || !PyDict_Check(c->pending_fork) ||
            !PyList_Check(c->snap_ok) || !PyList_Check(c->queues) ||
            !PyList_Check(c->pending_vars) || !PyDict_Check(c->cs_w) ||
            !PyDict_Check(c->cs_r)) {
        PyErr_SetString(PyExc_TypeError, "bad sync kernel context");
        return -1;
    }
    return 0;
}

/* Shared (ctx, eid) prologue: parse, unpack, and resolve the event's
 * thread index, local time, and role-specific target index. */
static int
sync_prologue(PyObject *const *args, Py_ssize_t nargs, const char *name,
              sync_ctx *c, Py_ssize_t *eid, PyObject **ti_obj, long *ti,
              PyObject **t_obj, PyObject **tgt_obj, long *target)
{
    if (nargs != 2) {
        PyErr_Format(PyExc_TypeError, "%s expects (ctx, eid)", name);
        return -1;
    }
    *eid = PyLong_AsSsize_t(args[1]);
    if (*eid == -1 && PyErr_Occurred())
        return -1;
    if (unpack_sync_ctx(args[0], c) < 0)
        return -1;
    *ti_obj = list_get(c->tix, *eid);
    if (*ti_obj == NULL)
        return -1;
    *ti = PyLong_AsLong(*ti_obj);
    if (*ti == -1 && PyErr_Occurred())
        return -1;
    *t_obj = list_get(c->lt, *eid);
    if (*t_obj == NULL)
        return -1;
    *tgt_obj = list_get(c->tgt, *eid);
    if (*tgt_obj == NULL)
        return -1;
    *target = PyLong_AsLong(*tgt_obj);
    if (*target == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

/* queues[li], creating a DenseLockQueues on the first touch.  Returns
 * a borrowed reference kept alive by the queues list. */
static PyObject *
lockq_lazy(PyObject *queues, long li, PyObject *lockq_cls)
{
    PyObject *q = list_get(queues, (Py_ssize_t)li);
    if (q == NULL || q != Py_None)
        return q;
    q = PyObject_CallNoArgs(lockq_cls);
    if (q == NULL)
        return NULL;
    if (PyList_SetItem(queues, (Py_ssize_t)li, q) < 0)  /* steals q */
        return NULL;
    return q;
}

/* DenseLockQueues.on_acquire: append [acq_time, -1, -1, None] to the
 * thread's record queue and mark it as the open critical section. */
static int
lockq_on_acquire(PyObject *q, PyObject *ti_obj, PyObject *t_obj)
{
    PyObject *rec, *records = NULL, *recs;
    int ok = -1;

    rec = PyList_New(4);
    if (rec == NULL)
        return -1;
    Py_INCREF(t_obj);
    PyList_SET_ITEM(rec, 0, t_obj);
    Py_INCREF(long_neg1);
    PyList_SET_ITEM(rec, 1, long_neg1);
    Py_INCREF(long_neg1);
    PyList_SET_ITEM(rec, 2, long_neg1);
    Py_INCREF(Py_None);
    PyList_SET_ITEM(rec, 3, Py_None);
    records = PyObject_GetAttr(q, str_records);
    if (records == NULL)
        goto done;
    if (!PyDict_Check(records)) {
        PyErr_SetString(PyExc_TypeError, "records must be a dict");
        goto done;
    }
    recs = PyDict_GetItemWithError(records, ti_obj);
    if (recs == NULL) {
        if (PyErr_Occurred())
            goto done;
        recs = PyList_New(0);
        if (recs == NULL)
            goto done;
        if (PyDict_SetItem(records, ti_obj, recs) < 0) {
            Py_DECREF(recs);
            goto done;
        }
        Py_DECREF(recs);  /* the records dict keeps it alive */
    }
    if (PyList_Append(recs, rec) < 0)
        goto done;
    if (PyObject_SetAttr(q, str_open_ti, ti_obj) < 0)
        goto done;
    if (PyObject_SetAttr(q, str_open_rec, rec) < 0)
        goto done;
    ok = 0;
done:
    Py_XDECREF(records);
    Py_DECREF(rec);
    return ok;
}

/* DenseLockQueues.on_release: close the open record in place. */
static int
lockq_on_release(PyObject *q, PyObject *eid_obj, PyObject *t_obj,
                 PyObject *snapshot)
{
    PyObject *rec = PyObject_GetAttr(q, str_open_rec);
    if (rec == NULL)
        return -1;
    if (rec == Py_None) {
        Py_DECREF(rec);
        PyErr_SetString(PyExc_AssertionError,
                        "release without matching acquire");
        return -1;
    }
    if (!PyList_Check(rec) || PyList_GET_SIZE(rec) != 4) {
        Py_DECREF(rec);
        PyErr_SetString(PyExc_TypeError,
                        "rule (b) record must be a 4-list");
        return -1;
    }
    if (list_set_obj(rec, 1, eid_obj) < 0 ||
            list_set_obj(rec, 2, t_obj) < 0 ||
            list_set_obj(rec, 3, snapshot) < 0) {
        Py_DECREF(rec);
        return -1;
    }
    Py_DECREF(rec);
    if (PyObject_SetAttr(q, str_open_ti, long_neg1) < 0)
        return -1;
    return PyObject_SetAttr(q, str_open_rec, Py_None);
}

/* The observer's rule (b) cursor map: q.cursors.setdefault(ti, {}).
 * Returns a new reference. */
static PyObject *
lockq_cursors_for(PyObject *q, PyObject *ti_obj)
{
    PyObject *cursors, *cur;

    cursors = PyObject_GetAttr(q, str_cursors);
    if (cursors == NULL)
        return NULL;
    if (!PyDict_Check(cursors)) {
        Py_DECREF(cursors);
        PyErr_SetString(PyExc_TypeError, "cursors must be a dict");
        return NULL;
    }
    cur = PyDict_GetItemWithError(cursors, ti_obj);
    if (cur == NULL) {
        if (PyErr_Occurred()) {
            Py_DECREF(cursors);
            return NULL;
        }
        cur = PyDict_New();
        if (cur == NULL || PyDict_SetItem(cursors, ti_obj, cur) < 0) {
            Py_XDECREF(cur);
            Py_DECREF(cursors);
            return NULL;
        }
    }
    else {
        Py_INCREF(cur);
    }
    Py_DECREF(cursors);
    return cur;
}

/* Record one pending rule-(a) variable set into a conflicting
 * critical-section table: for every variable in the set (iterated in
 * the set's own order, identical to the reference for-loop over the
 * same set object), (re-)insert `rec` as thread ti's latest entry of
 * table_map[li * nv + vi], creating the DenseSourceClocks lazily. */
static int
record_vars_into(PyObject *vars_set, PyObject *table_map, long li, long nv,
                 PyObject *srcclocks_cls, PyObject *ti_obj, PyObject *rec)
{
    PyObject *it, *vi_obj;

    it = PyObject_GetIter(vars_set);
    if (it == NULL)
        return -1;
    while ((vi_obj = PyIter_Next(it)) != NULL) {
        long vi = PyLong_AsLong(vi_obj);
        PyObject *key, *table, *entries;

        if (vi == -1 && PyErr_Occurred())
            goto item_error;
        key = PyLong_FromLong(li * nv + vi);
        if (key == NULL)
            goto item_error;
        table = PyDict_GetItemWithError(table_map, key);
        if (table == NULL) {
            if (PyErr_Occurred()) {
                Py_DECREF(key);
                goto item_error;
            }
            table = PyObject_CallNoArgs(srcclocks_cls);
            if (table == NULL) {
                Py_DECREF(key);
                goto item_error;
            }
            if (PyDict_SetItem(table_map, key, table) < 0) {
                Py_DECREF(key);
                Py_DECREF(table);
                goto item_error;
            }
            Py_DECREF(table);  /* the table map keeps it alive */
        }
        Py_DECREF(key);
        entries = PyObject_GetAttr(table, str_entries);
        if (entries == NULL)
            goto item_error;
        if (record_latest_core(entries, ti_obj, rec) < 0) {
            Py_DECREF(entries);
            goto item_error;
        }
        Py_DECREF(entries);
        Py_DECREF(vi_obj);
    }
    Py_DECREF(it);
    return PyErr_Occurred() ? -1 : 0;
item_error:
    Py_DECREF(vi_obj);
    Py_DECREF(it);
    return -1;
}

/* The pending rule-(a) recording at a release: pop this lock's
 * (reads, writes) variable sets for the releasing thread and record
 * the release snapshot — written vars into cs_writes first, then read
 * vars into cs_reads, matching the reference order. */
static int
release_record_pending(sync_ctx *c, long li, PyObject *li_obj, long ti,
                       PyObject *ti_obj, PyObject *eid_obj,
                       PyObject *t_obj, PyObject *snapshot)
{
    PyObject *pend_map, *pending, *rec;
    int r = -1;

    pend_map = list_get(c->pending_vars, ti);
    if (pend_map == NULL)
        return -1;
    if (!PyDict_Check(pend_map)) {
        PyErr_SetString(PyExc_TypeError, "pending map must be a dict");
        return -1;
    }
    pending = PyDict_GetItemWithError(pend_map, li_obj);
    if (pending == NULL)
        return PyErr_Occurred() ? -1 : 0;
    Py_INCREF(pending);
    if (PyDict_DelItem(pend_map, li_obj) < 0) {
        Py_DECREF(pending);
        return -1;
    }
    if (!PyTuple_Check(pending) || PyTuple_GET_SIZE(pending) != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "pending entry must be a (reads, writes) pair");
        Py_DECREF(pending);
        return -1;
    }
    rec = PyTuple_Pack(3, eid_obj, t_obj, snapshot);
    if (rec == NULL) {
        Py_DECREF(pending);
        return -1;
    }
    if (record_vars_into(PyTuple_GET_ITEM(pending, 1), c->cs_w, li,
                         c->nv, c->srcclocks_cls, ti_obj, rec) == 0 &&
            record_vars_into(PyTuple_GET_ITEM(pending, 0), c->cs_r, li,
                             c->nv, c->srcclocks_cls, ti_obj, rec) == 0)
        r = 0;
    Py_DECREF(rec);
    Py_DECREF(pending);
    return r;
}

static PyObject *
k_acquire_wcp(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    sync_ctx c;
    Py_ssize_t eid;
    PyObject *ti_obj, *t_obj, *li_obj, *h, *p, *q, *lh;
    long ti, li;

    if (sync_prologue(args, nargs, "acquire_wcp", &c, &eid, &ti_obj, &ti,
                      &t_obj, &li_obj, &li) < 0)
        return NULL;
    if (c.lock_h == NULL || c.lock_p == NULL) {
        PyErr_SetString(PyExc_TypeError, "bad sync kernel context");
        return NULL;
    }
    if (wcp_advance(c.fs, c.clock_a, c.clock_b, c.pending_fork, c.snap_ok,
                    c.T, ti, ti_obj, t_obj, &h, &p) < 0)
        return NULL;
    lh = list_get(c.lock_h, (Py_ssize_t)li);
    if (lh == NULL)
        return NULL;
    if (lh != Py_None) {
        PyObject *lp = list_get(c.lock_p, (Py_ssize_t)li);
        int changed;
        if (lp == NULL)
            return NULL;
        if (join_core(h, lh) < 0)
            return NULL;
        changed = join_core(p, lp);  /* right HB composition */
        if (changed < 0)
            return NULL;
        if (changed && list_set_obj(c.snap_ok, ti, Py_False) < 0)
            return NULL;
        if (bump_slot(c.fs, FS_JOINS, 2) < 0)
            return NULL;
    }
    q = lockq_lazy(c.queues, li, c.lockq_cls);
    if (q == NULL || lockq_on_acquire(q, ti_obj, t_obj) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
k_release_wcp(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    sync_ctx c;
    Py_ssize_t eid;
    PyObject *ti_obj, *t_obj, *li_obj, *h, *p, *q;
    PyObject *cursors, *records, *h_snapshot, *eid_obj = NULL, *p_copy;
    long ti, li;
    int joined;

    if (sync_prologue(args, nargs, "release_wcp", &c, &eid, &ti_obj, &ti,
                      &t_obj, &li_obj, &li) < 0)
        return NULL;
    if (c.lock_h == NULL || c.lock_p == NULL) {
        PyErr_SetString(PyExc_TypeError, "bad sync kernel context");
        return NULL;
    }
    if (wcp_advance(c.fs, c.clock_a, c.clock_b, c.pending_fork, c.snap_ok,
                    c.T, ti, ti_obj, t_obj, &h, &p) < 0)
        return NULL;
    q = list_get(c.queues, (Py_ssize_t)li);
    if (q == NULL)
        return NULL;
    if (q == Py_None)  /* no matching acquire: caller raises KeyError */
        return PyLong_FromLong(1);
    cursors = lockq_cursors_for(q, ti_obj);
    if (cursors == NULL)
        return NULL;
    records = PyObject_GetAttr(q, str_records);
    if (records == NULL) {
        Py_DECREF(cursors);
        return NULL;
    }
    joined = rule_b_core(records, cursors, p, NULL);
    Py_DECREF(records);
    Py_DECREF(cursors);
    if (joined < 0)
        return NULL;
    if (joined && list_set_obj(c.snap_ok, ti, Py_False) < 0)
        return NULL;
    h_snapshot = PyList_GetSlice(h, 0, PyList_GET_SIZE(h));
    if (h_snapshot == NULL)
        return NULL;
    eid_obj = PyLong_FromSsize_t(eid);
    if (eid_obj == NULL)
        goto error;
    if (release_record_pending(&c, li, li_obj, ti, ti_obj, eid_obj,
                               t_obj, h_snapshot) < 0)
        goto error;
    if (lockq_on_release(q, eid_obj, t_obj, h_snapshot) < 0)
        goto error;
    if (list_set_obj(c.lock_h, (Py_ssize_t)li, h_snapshot) < 0)
        goto error;
    p_copy = PyList_GetSlice(p, 0, PyList_GET_SIZE(p));
    if (p_copy == NULL)
        goto error;
    if (PyList_SetItem(c.lock_p, (Py_ssize_t)li, p_copy) < 0)  /* steals */
        goto error;
    Py_DECREF(eid_obj);
    Py_DECREF(h_snapshot);
    return PyLong_FromLong(0);
error:
    Py_XDECREF(eid_obj);
    Py_DECREF(h_snapshot);
    return NULL;
}

static PyObject *
k_fork_wcp(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    sync_ctx c;
    Py_ssize_t eid;
    PyObject *ti_obj, *t_obj, *tgt_obj, *h, *p, *h_copy;
    long ti, ci;

    if (sync_prologue(args, nargs, "fork_wcp", &c, &eid, &ti_obj, &ti,
                      &t_obj, &tgt_obj, &ci) < 0)
        return NULL;
    if (wcp_advance(c.fs, c.clock_a, c.clock_b, c.pending_fork, c.snap_ok,
                    c.T, ti, ti_obj, t_obj, &h, &p) < 0)
        return NULL;
    h_copy = PyList_GetSlice(h, 0, PyList_GET_SIZE(h));
    if (h_copy == NULL)
        return NULL;
    if (PyDict_SetItem(c.pending_fork, tgt_obj, h_copy) < 0) {
        Py_DECREF(h_copy);
        return NULL;
    }
    Py_DECREF(h_copy);
    Py_RETURN_NONE;
}

static PyObject *
k_join_wcp(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    sync_ctx c;
    Py_ssize_t eid;
    PyObject *ti_obj, *t_obj, *tgt_obj, *h, *p, *parent, *child_h;
    long ti, ci;
    int changed;

    if (sync_prologue(args, nargs, "join_wcp", &c, &eid, &ti_obj, &ti,
                      &t_obj, &tgt_obj, &ci) < 0)
        return NULL;
    if (wcp_advance(c.fs, c.clock_a, c.clock_b, c.pending_fork, c.snap_ok,
                    c.T, ti, ti_obj, t_obj, &h, &p) < 0)
        return NULL;
    parent = PyDict_GetItemWithError(c.pending_fork, tgt_obj);
    if (parent == NULL) {
        if (PyErr_Occurred())
            return NULL;
    }
    else {
        /* Child never executed an event: the fork ordering still flows
         * through the (empty) child into the join. */
        Py_INCREF(parent);
        if (PyDict_DelItem(c.pending_fork, tgt_obj) < 0 ||
                join_core(h, parent) < 0) {
            Py_DECREF(parent);
            return NULL;
        }
        changed = join_core(p, parent);
        Py_DECREF(parent);
        if (changed < 0)
            return NULL;
        if (changed && list_set_obj(c.snap_ok, ti, Py_False) < 0)
            return NULL;
        if (bump_slot(c.fs, FS_JOINS, 2) < 0)
            return NULL;
    }
    child_h = list_get(c.clock_a, (Py_ssize_t)ci);
    if (child_h == NULL)
        return NULL;
    if (child_h != Py_None) {
        PyObject *child_p = list_get(c.clock_b, (Py_ssize_t)ci);
        if (child_p == NULL)
            return NULL;
        if (join_core(h, child_h) < 0)
            return NULL;
        changed = join_core(p, child_h);
        if (changed < 0)
            return NULL;
        if (changed && list_set_obj(c.snap_ok, ti, Py_False) < 0)
            return NULL;
        if (bump_slot(c.fs, FS_JOINS, 2) < 0)
            return NULL;
        (void)child_p;
    }
    Py_RETURN_NONE;
}

static PyObject *
k_acquire_dc(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    sync_ctx c;
    Py_ssize_t eid;
    PyObject *ti_obj, *t_obj, *li_obj, *values, *eid_obj, *q, *owner_obj;
    long ti, li, owner;

    if (sync_prologue(args, nargs, "acquire_dc", &c, &eid, &ti_obj, &ti,
                      &t_obj, &li_obj, &li) < 0)
        return NULL;
    eid_obj = PyLong_FromSsize_t(eid);
    if (eid_obj == NULL)
        return NULL;
    if (dc_advance(c.fs, c.clock_a, c.clock_b, c.pending_fork, c.snap_ok,
                   c.ebuf, c.T, ti, ti_obj, t_obj, eid_obj, &values) < 0)
        goto error;
    q = lockq_lazy(c.queues, li, c.lockq_cls);
    if (q == NULL || lockq_on_acquire(q, ti_obj, t_obj) < 0)
        goto error;
    /* No synchronisation-order join (DC departs from HB/WCP here);
     * track single-ownership for the rule (b) skip. */
    owner_obj = PyObject_GetAttr(q, str_owner);
    if (owner_obj == NULL)
        goto error;
    owner = PyLong_AsLong(owner_obj);
    Py_DECREF(owner_obj);
    if (owner == -1 && PyErr_Occurred())
        goto error;
    if (owner != ti) {
        if (owner == -1) {
            if (PyObject_SetAttr(q, str_owner, ti_obj) < 0)
                goto error;
        }
        else {
            if (owner >= 0 &&
                    bump_slot(c.fs, FS_LOCK_TRANSFERS, 1) < 0)
                goto error;
            if (PyObject_SetAttr(q, str_owner, long_neg2) < 0)
                goto error;
        }
    }
    Py_DECREF(eid_obj);
    Py_RETURN_NONE;
error:
    Py_DECREF(eid_obj);
    return NULL;
}

static PyObject *
k_release_dc(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    sync_ctx c;
    Py_ssize_t eid;
    PyObject *ti_obj, *t_obj, *li_obj, *values, *eid_obj, *q, *attr;
    PyObject *snapshot = NULL;
    long ti, li, open_ti, owner;

    if (sync_prologue(args, nargs, "release_dc", &c, &eid, &ti_obj, &ti,
                      &t_obj, &li_obj, &li) < 0)
        return NULL;
    eid_obj = PyLong_FromSsize_t(eid);
    if (eid_obj == NULL)
        return NULL;
    if (dc_advance(c.fs, c.clock_a, c.clock_b, c.pending_fork, c.snap_ok,
                   c.ebuf, c.T, ti, ti_obj, t_obj, eid_obj, &values) < 0)
        goto error;
    q = list_get(c.queues, (Py_ssize_t)li);
    if (q == NULL)
        goto error;
    if (q == Py_None)
        goto unmatched;
    attr = PyObject_GetAttr(q, str_open_ti);
    if (attr == NULL)
        goto error;
    open_ti = PyLong_AsLong(attr);
    Py_DECREF(attr);
    if (open_ti == -1 && PyErr_Occurred())
        goto error;
    if (open_ti != ti)
        goto unmatched;
    attr = PyObject_GetAttr(q, str_owner);
    if (attr == NULL)
        goto error;
    owner = PyLong_AsLong(attr);
    Py_DECREF(attr);
    if (owner == -1 && PyErr_Occurred())
        goto error;
    if (owner == ti) {
        /* Ownership fast path: every record is the releasing thread's
         * own, so the reference walk would join nothing. */
        if (bump_slot(c.fs, FS_RULE_B_SKIPS, 1) < 0)
            goto error;
    }
    else {
        PyObject *cursors, *records, *srcs = NULL;
        int joined;
        cursors = lockq_cursors_for(q, ti_obj);
        if (cursors == NULL)
            goto error;
        records = PyObject_GetAttr(q, str_records);
        if (records == NULL) {
            Py_DECREF(cursors);
            goto error;
        }
        joined = rule_b_core(records, cursors, values,
                             c.ebuf == NULL ? NULL : &srcs);
        Py_DECREF(records);
        Py_DECREF(cursors);
        if (joined < 0) {
            Py_XDECREF(srcs);
            goto error;
        }
        if (joined && list_set_obj(c.snap_ok, ti, Py_False) < 0) {
            Py_XDECREF(srcs);
            goto error;
        }
        if (srcs != NULL) {
            Py_ssize_t k, n = PyList_GET_SIZE(srcs);
            for (k = 0; k < n; k++) {
                if (ebuf_push(c.ebuf, PyList_GET_ITEM(srcs, k),
                              eid_obj) < 0) {
                    Py_DECREF(srcs);
                    goto error;
                }
            }
            if (n > 0 && bump_slot(c.fs, FS_GRAPH_EDGES, (long)n) < 0) {
                Py_DECREF(srcs);
                goto error;
            }
            Py_DECREF(srcs);
        }
    }
    snapshot = PyList_GetSlice(values, 0, PyList_GET_SIZE(values));
    if (snapshot == NULL)
        goto error;
    if (release_record_pending(&c, li, li_obj, ti, ti_obj, eid_obj,
                               t_obj, snapshot) < 0)
        goto error;
    if (lockq_on_release(q, eid_obj, t_obj, snapshot) < 0)
        goto error;
    Py_DECREF(snapshot);
    Py_DECREF(eid_obj);
    return PyLong_FromLong(0);
unmatched:
    /* No matching acquire by this thread: the caller raises the
     * reference MalformedTraceError (the clock advance above already
     * happened, exactly as in the open-coded path). */
    Py_DECREF(eid_obj);
    return PyLong_FromLong(1);
error:
    Py_XDECREF(snapshot);
    Py_DECREF(eid_obj);
    return NULL;
}

static PyObject *
k_fork_dc(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    sync_ctx c;
    Py_ssize_t eid;
    PyObject *ti_obj, *t_obj, *tgt_obj, *values, *eid_obj, *copy, *pair;
    long ti, ci;

    if (sync_prologue(args, nargs, "fork_dc", &c, &eid, &ti_obj, &ti,
                      &t_obj, &tgt_obj, &ci) < 0)
        return NULL;
    eid_obj = PyLong_FromSsize_t(eid);
    if (eid_obj == NULL)
        return NULL;
    if (dc_advance(c.fs, c.clock_a, c.clock_b, c.pending_fork, c.snap_ok,
                   c.ebuf, c.T, ti, ti_obj, t_obj, eid_obj, &values) < 0) {
        Py_DECREF(eid_obj);
        return NULL;
    }
    copy = PyList_GetSlice(values, 0, PyList_GET_SIZE(values));
    if (copy == NULL) {
        Py_DECREF(eid_obj);
        return NULL;
    }
    pair = PyTuple_Pack(2, eid_obj, copy);
    Py_DECREF(copy);
    Py_DECREF(eid_obj);
    if (pair == NULL)
        return NULL;
    if (PyDict_SetItem(c.pending_fork, tgt_obj, pair) < 0) {
        Py_DECREF(pair);
        return NULL;
    }
    Py_DECREF(pair);
    Py_RETURN_NONE;
}

static PyObject *
k_join_dc(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    sync_ctx c;
    Py_ssize_t eid;
    PyObject *ti_obj, *t_obj, *tgt_obj, *values, *eid_obj;
    PyObject *pending, *child_values;
    long ti, ci;
    int changed;

    if (sync_prologue(args, nargs, "join_dc", &c, &eid, &ti_obj, &ti,
                      &t_obj, &tgt_obj, &ci) < 0)
        return NULL;
    eid_obj = PyLong_FromSsize_t(eid);
    if (eid_obj == NULL)
        return NULL;
    if (dc_advance(c.fs, c.clock_a, c.clock_b, c.pending_fork, c.snap_ok,
                   c.ebuf, c.T, ti, ti_obj, t_obj, eid_obj, &values) < 0)
        goto error;
    pending = PyDict_GetItemWithError(c.pending_fork, tgt_obj);
    if (pending == NULL) {
        if (PyErr_Occurred())
            goto error;
    }
    else {
        /* Child never executed an event: the fork ordering still flows
         * through the (empty) child into the join. */
        if (!PyTuple_Check(pending) || PyTuple_GET_SIZE(pending) != 2) {
            PyErr_SetString(PyExc_TypeError,
                            "pending fork must be (eid, clock)");
            goto error;
        }
        Py_INCREF(pending);
        if (PyDict_DelItem(c.pending_fork, tgt_obj) < 0) {
            Py_DECREF(pending);
            goto error;
        }
        changed = join_core(values, PyTuple_GET_ITEM(pending, 1));
        if (changed < 0) {
            Py_DECREF(pending);
            goto error;
        }
        if (changed && list_set_obj(c.snap_ok, ti, Py_False) < 0) {
            Py_DECREF(pending);
            goto error;
        }
        if (bump_slot(c.fs, FS_JOINS, 1) < 0) {
            Py_DECREF(pending);
            goto error;
        }
        if (c.ebuf != NULL &&
                (ebuf_push(c.ebuf, PyTuple_GET_ITEM(pending, 0),
                           eid_obj) < 0 ||
                 bump_slot(c.fs, FS_GRAPH_EDGES, 1) < 0)) {
            Py_DECREF(pending);
            goto error;
        }
        Py_DECREF(pending);
    }
    child_values = list_get(c.clock_a, (Py_ssize_t)ci);
    if (child_values == NULL)
        goto error;
    if (child_values != Py_None) {
        PyObject *child_last_obj;
        long child_last;
        changed = join_core(values, child_values);
        if (changed < 0)
            goto error;
        if (changed && list_set_obj(c.snap_ok, ti, Py_False) < 0)
            goto error;
        if (bump_slot(c.fs, FS_JOINS, 1) < 0)
            goto error;
        child_last_obj = list_get(c.clock_b, (Py_ssize_t)ci);
        if (child_last_obj == NULL)
            goto error;
        child_last = PyLong_AsLong(child_last_obj);
        if (child_last == -1 && PyErr_Occurred())
            goto error;
        if (child_last >= 0 && c.ebuf != NULL &&
                (ebuf_push(c.ebuf, child_last_obj, eid_obj) < 0 ||
                 bump_slot(c.fs, FS_GRAPH_EDGES, 1) < 0))
            goto error;
    }
    Py_DECREF(eid_obj);
    Py_RETURN_NONE;
error:
    Py_DECREF(eid_obj);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* Module plumbing                                                     */
/* ------------------------------------------------------------------ */
static PyMethodDef kernel_methods[] = {
    {"join_into_list", k_join_into_list, METH_VARARGS,
     "In-place pointwise max: dst[i] = max(dst[i], src[i])."},
    {"join_into_list_changed", k_join_into_list_changed, METH_VARARGS,
     "join_into_list that also reports whether dst grew."},
    {"dominates_list", k_dominates_list, METH_VARARGS,
     "Pointwise small <= big (missing trailing components are 0)."},
    {"record_latest", k_record_latest, METH_VARARGS,
     "(Re-)insert table[key] = value at the end of the table."},
    {"slot_intern", k_slot_intern, METH_VARARGS,
     "Intern tid into a TidTable and grow clock storage to its slot."},
    {"source_join_into", k_source_join_into, METH_VARARGS,
     "Dense rule (a) edge-minimised source-clock join."},
    {"rule_b_fixpoint", k_rule_b_fixpoint, METH_VARARGS,
     "Dense rule (b) FIFO-cursor fixpoint."},
    {"gated_scan", k_gated_scan, METH_VARARGS,
     "SmartTrack gated race scan over dense access maps."},
    {"scan_racing_sparse", k_scan_racing_sparse, METH_VARARGS,
     "Sparse access-history race scan (Detector.check_access)."},
    {"access_wcp", (PyCFunction)(void (*)(void))k_access_wcp, METH_FASTCALL,
     "Fused EpochWCPDetector per-access fast path."},
    {"access_dc", (PyCFunction)(void (*)(void))k_access_dc, METH_FASTCALL,
     "Fused EpochDCDetector per-access fast path (graph building off)."},
    {"acquire_wcp", (PyCFunction)(void (*)(void))k_acquire_wcp,
     METH_FASTCALL, "Fused EpochWCPDetector on_acquire."},
    {"release_wcp", (PyCFunction)(void (*)(void))k_release_wcp,
     METH_FASTCALL, "Fused EpochWCPDetector on_release (returns status)."},
    {"fork_wcp", (PyCFunction)(void (*)(void))k_fork_wcp,
     METH_FASTCALL, "Fused EpochWCPDetector on_fork."},
    {"join_wcp", (PyCFunction)(void (*)(void))k_join_wcp,
     METH_FASTCALL, "Fused EpochWCPDetector on_join."},
    {"acquire_dc", (PyCFunction)(void (*)(void))k_acquire_dc,
     METH_FASTCALL, "Fused EpochDCDetector on_acquire."},
    {"release_dc", (PyCFunction)(void (*)(void))k_release_dc,
     METH_FASTCALL, "Fused EpochDCDetector on_release (returns status)."},
    {"fork_dc", (PyCFunction)(void (*)(void))k_fork_dc,
     METH_FASTCALL, "Fused EpochDCDetector on_fork."},
    {"join_dc", (PyCFunction)(void (*)(void))k_join_dc,
     METH_FASTCALL, "Fused EpochDCDetector on_join."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernels_module = {
    PyModuleDef_HEAD_INIT,
    "repro.core._kernels",
    "Compiled clock kernels (the native backend of repro.core.kernels).",
    -1,
    kernel_methods,
};

PyMODINIT_FUNC
PyInit__kernels(void)
{
#define INTERN(var, text)                                \
    do {                                                 \
        (var) = PyUnicode_InternFromString(text);        \
        if ((var) == NULL)                               \
            return NULL;                                 \
    } while (0)
    INTERN(str_tid, "tid");
    INTERN(str_eid, "eid");
    INTERN(str_entries, "entries");
    INTERN(str_owner, "owner");
    INTERN(str_xw_time, "xw_time");
    INTERN(str_xw_ev, "xw_ev");
    INTERN(str_xw_snap, "xw_snap");
    INTERN(str_xr_time, "xr_time");
    INTERN(str_xr_ev, "xr_ev");
    INTERN(str_xr_snap, "xr_snap");
    INTERN(str_records, "records");
    INTERN(str_cursors, "cursors");
    INTERN(str_open_ti, "open_ti");
    INTERN(str_open_rec, "open_rec");
#undef INTERN
    long_neg1 = PyLong_FromLong(-1);
    if (long_neg1 == NULL)
        return NULL;
    long_neg2 = PyLong_FromLong(-2);
    if (long_neg2 == NULL)
        return NULL;
    return PyModule_Create(&kernels_module);
}

"""Dense, array-backed vector clocks (the fast kernel behind ``--fast-vc``).

The dict-backed :class:`~repro.core.vectorclock.VectorClock` is the
clarity-first representation: absent threads are implicitly zero and any
hashable thread id works. Its hot operations, however, pay dict hashing
per component. This module provides the dense alternative used by the
SmartTrack-style detectors (:mod:`repro.analysis.smarttrack`) and,
optionally, by the reference detectors:

* :class:`TidTable` — compact interning of thread ids to indices
  ``0..T-1``, fixed per trace;
* free functions :func:`join_into_list` / :func:`dominates_list` — fused
  component kernels over plain ``list``-of-int clock storage (measured
  faster than ``array('q')`` for indexing/joins on CPython; ``array`` is
  reserved for long-lived packed columns, see
  :mod:`repro.traces.packed`);
* :class:`DenseVectorClock` — a drop-in object API mirroring
  ``VectorClock`` (``get``/``set``/``advance``/``join``/``dominates``/
  ``copy``/``version``) over a shared :class:`TidTable`, so the base
  :meth:`~repro.analysis.base.Detector.check_access` snapshot cache and
  the differential tests work unchanged.

Clocks from different tables must never be mixed; everything created by
one detector run shares that run's table. Components for tids the table
does not know are implicitly zero, exactly like missing dict entries.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core import kernels as _k
from repro.core.events import Tid
from repro.core.vectorclock import VectorClock


class TidTable:
    """Compact interning of thread ids to dense indices ``0..T-1``.

    Iteration order of :attr:`tids` is interning order, so detectors that
    pre-populate the table with ``trace.threads`` scan components in the
    same first-appearance order the dict-backed clocks use.
    """

    __slots__ = ("tids", "index")

    def __init__(self, tids: Sequence[Tid] = ()):
        #: index -> thread id.
        self.tids: List[Tid] = []
        #: thread id -> index.
        self.index: Dict[Tid, int] = {}
        for tid in tids:
            self.intern(tid)

    def intern(self, tid: Tid) -> int:
        """Return ``tid``'s index, assigning the next one if unseen."""
        idx = self.index.get(tid)
        if idx is None:
            idx = len(self.tids)
            self.index[tid] = idx
            self.tids.append(tid)
        return idx

    def __len__(self) -> int:
        return len(self.tids)

    def __repr__(self) -> str:
        return f"TidTable({self.tids!r})"


# ----------------------------------------------------------------------
# Fused kernels over raw component lists
# ----------------------------------------------------------------------
# The implementations live in :mod:`repro.core.kernels` (pure Python or
# the compiled ``repro.core._kernels`` extension, chosen at import time
# or via ``--kernels``).  These wrappers keep the historical public
# names; hot loops call through the ``kernels`` module attribute
# directly so a later ``set_backend()`` still takes effect.
def join_into_list(dst: List[int], src: Sequence[int]) -> None:
    """In-place pointwise max: ``dst[i] = max(dst[i], src[i])``.

    Requires ``len(src) <= len(dst)`` (clocks sharing one table and
    allocated at full table size always satisfy this).
    """
    _k.join_into_list(dst, src)


def join_into_list_changed(dst: List[int], src: Sequence[int]) -> bool:
    """:func:`join_into_list` that also reports whether ``dst`` grew."""
    return _k.join_into_list_changed(dst, src)


def dominates_list(big: Sequence[int], small: Sequence[int]) -> bool:
    """Pointwise ``small <= big`` (missing trailing components are 0)."""
    return _k.dominates_list(big, small)


class DenseVectorClock:
    """A dense vector clock over a shared :class:`TidTable`.

    API-compatible with :class:`~repro.core.vectorclock.VectorClock`
    (including the :attr:`version` contract: bumped on every mutation
    except :meth:`advance` — see ``VectorClock.advance`` for why the
    snapshot caches may ignore self-advances). Component storage is a
    plain list indexed by tid index; reads and joins do no hashing.
    """

    __slots__ = ("table", "_values", "version")

    def __init__(self, table: TidTable,
                 values: Optional[List[int]] = None,
                 clocks: Optional[Mapping[Tid, int]] = None):
        self.table = table
        if values is not None:
            #: Shared by reference, not copied: callers building a view
            #: over detector-internal storage rely on this.
            self._values = values
        else:
            self._values = [0] * len(table)
            if clocks:
                for tid, time in clocks.items():
                    self._values[table.intern(tid)] = time
        self.version: int = 0

    # ------------------------------------------------------------------
    # Component access
    # ------------------------------------------------------------------
    def get(self, tid: Tid) -> int:
        idx = self.table.index.get(tid)
        if idx is None or idx >= len(self._values):
            return 0
        return self._values[idx]

    def _slot(self, tid: Tid) -> int:
        """Intern ``tid`` and grow storage to cover its index."""
        table = self.table
        return _k.slot_intern(table.index, table.tids, self._values, tid)

    def set(self, tid: Tid, time: int) -> None:
        self.version += 1
        self._values[self._slot(tid)] = time

    def advance(self, tid: Tid, time: int) -> None:
        """Self-advance without a version bump (see ``VectorClock.advance``)."""
        self._values[self._slot(tid)] = time

    def increment(self, tid: Tid) -> int:
        self.version += 1
        idx = self._slot(tid)
        new = self._values[idx] + 1
        self._values[idx] = new
        return new

    # ------------------------------------------------------------------
    # Lattice operations
    # ------------------------------------------------------------------
    def join(self, other: Union["DenseVectorClock", VectorClock]) -> bool:
        changed = False
        values = self._values
        if isinstance(other, DenseVectorClock) and other.table is self.table:
            src = other._values
            if len(src) > len(values):
                values.extend([0] * (len(src) - len(values)))
            changed = _k.join_into_list_changed(values, src)
        else:
            for tid, time in other:
                idx = self._slot(tid)
                if time > values[idx]:
                    values[idx] = time
                    changed = True
        if changed:
            self.version += 1
        return changed

    def dominates(self, other: Union["DenseVectorClock", VectorClock]) -> bool:
        if isinstance(other, DenseVectorClock) and other.table is self.table:
            return _k.dominates_list(self._values, other._values)
        return all(time <= self.get(tid) for tid, time in other)

    def copy(self) -> "DenseVectorClock":
        clone = DenseVectorClock(self.table, values=self._values.copy())
        return clone

    # ------------------------------------------------------------------
    # Protocol support
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[Tid, int]:
        tids = self.table.tids
        return {tids[i]: v for i, v in enumerate(self._values) if v}

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DenseVectorClock):
            return self.as_dict() == other.as_dict()
        if isinstance(other, VectorClock):
            return self.as_dict() == other.as_dict()
        return NotImplemented

    # Mutable, so unhashable — same contract as VectorClock.  Setting
    # __hash__ = None (rather than a raising method) makes
    # ``isinstance(clock, collections.abc.Hashable)`` False too.
    __hash__ = None  # type: ignore[assignment]

    def __iter__(self) -> Iterator[Tuple[Tid, int]]:
        tids = self.table.tids
        return ((tids[i], v) for i, v in enumerate(self._values) if v)

    def __len__(self) -> int:
        return sum(1 for v in self._values if v)

    def __bool__(self) -> bool:
        return any(self._values)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"T{t}:{c}" for t, c in sorted(self.as_dict().items(), key=str))
        return f"DenseVC[{inner}]"

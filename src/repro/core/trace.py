"""Execution traces: container, validation, and builder.

A :class:`Trace` is a totally ordered list of :class:`~repro.core.events.Event`
objects (the paper's ``tr``, Section 2.1) together with precomputed
structure the analyses need:

* per-thread event lists and thread-local times (for vector clocks);
* acquire/release matching — the paper's ``A(r)`` and ``R(a)`` functions;
* for every event, the acquires of the critical sections enclosing it —
  the basis of ``CS(r)`` and of the lock-semantics reasoning in
  VindicateRace.

Traces are validated on construction (:class:`MalformedTraceError` on
structural violations) so downstream algorithms can assume
well-formedness. :class:`TraceBuilder` offers a chainable DSL used by the
litmus tests and examples::

    tr = (TraceBuilder()
          .wr(1, "x").acq(1, "m").wr(1, "z").rel(1, "m")
          .acq(2, "m").rd(2, "y").rel(2, "m").rd(2, "x")
          .build())
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.events import Event, EventKind, Target, Tid, conflicts
from repro.core.exceptions import MalformedTraceError


class Trace:
    """A validated, indexed execution trace.

    Args:
        events: The events in observed order. Every event's ``eid`` must
            equal its position; use :meth:`from_events` to renumber
            arbitrary event sequences.
        validate: Whether to run structural validation (default True).
    """

    def __init__(self, events: Sequence[Event], validate: bool = True):
        self.events: List[Event] = list(events)
        #: Where this trace came from (generator seed and config,
        #: scheduler seed, source file, ...). Stamped by producers
        #: (``traces.gen``, ``runtime.scheduler``, ``traces.io``) and
        #: copied into :class:`~repro.vindicate.vindicator.VindicatorReport`
        #: so any measured run is reproducible from its own output.
        self.provenance: Dict[str, object] = {}
        for i, e in enumerate(self.events):
            if e.eid != i:
                raise MalformedTraceError(
                    f"event at position {i} has eid {e.eid}; use Trace.from_events "
                    "to renumber",
                    event_index=i,
                )
        self._thread_events: Dict[Tid, List[int]] = {}
        #: thread-local 1-based time of each event (parallel to ``events``).
        self.local_time: List[int] = [0] * len(self.events)
        for e in self.events:
            lst = self._thread_events.setdefault(e.tid, [])
            lst.append(e.eid)
            self.local_time[e.eid] = len(lst)

        self._match_rel: Dict[int, int] = {}  # acquire eid -> release eid
        self._match_acq: Dict[int, int] = {}  # release eid -> acquire eid
        #: per event: tuple of acquire eids of enclosing critical sections,
        #: outermost first (the executing thread's lock stack at the event).
        self.enclosing_acquires: List[Tuple[int, ...]] = [()] * len(self.events)
        self._index_locks(validate)
        if validate:
            self._validate_threads()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_events(cls, events: Iterable[Event], validate: bool = True) -> "Trace":
        """Build a trace from events, renumbering eids to positions."""
        renumbered = [
            Event(i, e.tid, e.kind, e.target, e.loc) for i, e in enumerate(events)
        ]
        return cls(renumbered, validate=validate)

    # ------------------------------------------------------------------
    # Indexing / validation
    # ------------------------------------------------------------------
    def _index_locks(self, validate: bool) -> None:
        lock_holder: Dict[Target, Tuple[Tid, int]] = {}  # lock -> (tid, acq eid)
        stacks: Dict[Tid, List[int]] = {}  # tid -> open acquire eids
        for e in self.events:
            stack = stacks.setdefault(e.tid, [])
            if e.kind is EventKind.ACQUIRE:
                if validate and e.target in lock_holder:
                    holder, _ = lock_holder[e.target]
                    raise MalformedTraceError(
                        f"{e}: lock {e.target!r} already held by thread {holder!r} "
                        "(locks are non-reentrant)",
                        event_index=e.eid,
                    )
                lock_holder[e.target] = (e.tid, e.eid)
                stack.append(e.eid)
                self.enclosing_acquires[e.eid] = tuple(stack)
            elif e.kind is EventKind.RELEASE:
                holder = lock_holder.get(e.target)
                if holder is None or holder[0] != e.tid:
                    raise MalformedTraceError(
                        f"{e}: releases lock {e.target!r} not held by thread {e.tid!r}",
                        event_index=e.eid,
                    )
                acq_eid = holder[1]
                if validate and (not stack or stack[-1] != acq_eid):
                    raise MalformedTraceError(
                        f"{e}: releases lock {e.target!r} out of nesting order",
                        event_index=e.eid,
                    )
                self.enclosing_acquires[e.eid] = tuple(stack)
                stack.pop()
                del lock_holder[e.target]
                self._match_rel[acq_eid] = e.eid
                self._match_acq[e.eid] = acq_eid
            else:
                self.enclosing_acquires[e.eid] = tuple(stack)

    def _validate_threads(self) -> None:
        forked: Dict[Tid, int] = {}
        joined: Dict[Tid, int] = {}
        for e in self.events:
            if e.kind is EventKind.FORK:
                if e.target == e.tid:
                    raise MalformedTraceError(
                        f"{e}: thread forks itself", event_index=e.eid
                    )
                if e.target in forked:
                    raise MalformedTraceError(
                        f"{e}: thread {e.target!r} forked twice", event_index=e.eid
                    )
                forked[e.target] = e.eid
            elif e.kind is EventKind.JOIN:
                if e.target in joined:
                    raise MalformedTraceError(
                        f"{e}: thread {e.target!r} joined twice", event_index=e.eid
                    )
                joined[e.target] = e.eid
            elif e.kind in (EventKind.READ, EventKind.WRITE, EventKind.VOLATILE_READ,
                            EventKind.VOLATILE_WRITE):
                if e.target is None:
                    raise MalformedTraceError(
                        f"{e}: access without a target", event_index=e.eid
                    )
        for tid, fork_eid in forked.items():
            eids = self._thread_events.get(tid, [])
            if eids and eids[0] < fork_eid:
                raise MalformedTraceError(
                    f"thread {tid!r} executes event #{eids[0]} before its fork "
                    f"#{fork_eid}",
                    event_index=eids[0],
                )
        for tid, join_eid in joined.items():
            eids = self._thread_events.get(tid, [])
            if eids and eids[-1] > join_eid:
                raise MalformedTraceError(
                    f"thread {tid!r} executes event #{eids[-1]} after its join "
                    f"#{join_eid}",
                    event_index=eids[-1],
                )
        for tid, eids in self._thread_events.items():
            for pos, eid in enumerate(eids):
                kind = self.events[eid].kind
                if kind is EventKind.BEGIN and pos != 0:
                    raise MalformedTraceError(
                        f"{self.events[eid]}: begin is not thread's first event",
                        event_index=eid,
                    )
                if kind is EventKind.END and pos != len(eids) - 1:
                    raise MalformedTraceError(
                        f"{self.events[eid]}: end is not thread's last event",
                        event_index=eid,
                    )

    # ------------------------------------------------------------------
    # Paper notation
    # ------------------------------------------------------------------
    def acquire_of(self, release: Event) -> Event:
        """``A(r)``: the acquire starting the critical section ended by ``release``."""
        return self.events[self._match_acq[release.eid]]

    def release_of(self, acquire: Event) -> Optional[Event]:
        """``R(a)``: the release ending the critical section started by
        ``acquire``, or None if the critical section never closes in the trace."""
        eid = self._match_rel.get(acquire.eid)
        return None if eid is None else self.events[eid]

    def critical_section(self, release: Event) -> List[Event]:
        """``CS(r)``: the events of the critical section ended by ``release``,
        including ``A(r)`` and ``r`` (same-thread events only)."""
        acq = self.acquire_of(release)
        return [
            self.events[eid]
            for eid in self._thread_events[release.tid]
            if acq.eid <= eid <= release.eid
        ]

    def held_locks(self, e: Event) -> Tuple[Target, ...]:
        """Locks held by ``thr(e)`` at ``e`` (targets of enclosing critical
        sections, outermost first). An acquire/release's own lock is included."""
        return tuple(self.events[a].target for a in self.enclosing_acquires[e.eid])

    def program_ordered(self, e1: Event, e2: Event) -> bool:
        """``e1 <_PO e2``: same thread, e1 earlier."""
        return e1.tid == e2.tid and e1.eid < e2.eid

    # ------------------------------------------------------------------
    # Collection protocol / misc
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __getitem__(self, i: int) -> Event:
        return self.events[i]

    @property
    def threads(self) -> List[Tid]:
        """Thread ids in order of first appearance."""
        return list(self._thread_events)

    def events_of(self, tid: Tid) -> List[Event]:
        """All events of thread ``tid``, in program order."""
        return [self.events[i] for i in self._thread_events.get(tid, [])]

    def accesses(self) -> Iterator[Event]:
        """Iterate over the plain read/write events."""
        return (e for e in self.events if e.is_access)

    def variables(self) -> Set[Target]:
        """The set of shared variables accessed in the trace."""
        return {e.target for e in self.events if e.is_access}

    def locks(self) -> Set[Target]:
        """The set of locks acquired in the trace."""
        return {e.target for e in self.events if e.kind is EventKind.ACQUIRE}

    def conflicting_pairs(self) -> Iterator[Tuple[Event, Event]]:
        """Iterate over all conflicting access pairs ``(e1, e2)`` with
        ``e1 <_tr e2``. Quadratic per variable; intended for small traces
        (tests, the brute-force oracle)."""
        by_var: Dict[Target, List[Event]] = {}
        for e in self.events:
            if e.is_access:
                by_var.setdefault(e.target, []).append(e)
        for var_events in by_var.values():
            for i, e1 in enumerate(var_events):
                for e2 in var_events[i + 1:]:
                    if conflicts(e1, e2):
                        yield e1, e2

    def __repr__(self) -> str:
        return f"Trace({len(self.events)} events, {len(self._thread_events)} threads)"


class TraceBuilder:
    """Chainable builder for traces, used heavily in tests and examples.

    Every op method returns ``self``. Events are numbered in call order.
    """

    def __init__(self) -> None:
        self._events: List[Event] = []

    def _add(self, tid: Tid, kind: EventKind, target: Optional[Target],
             loc: Optional[str]) -> "TraceBuilder":
        self._events.append(Event(len(self._events), tid, kind, target, loc))
        return self

    def rd(self, tid: Tid, var: Target, loc: Optional[str] = None) -> "TraceBuilder":
        """Append ``rd(var)`` by ``tid``."""
        return self._add(tid, EventKind.READ, var, loc)

    def wr(self, tid: Tid, var: Target, loc: Optional[str] = None) -> "TraceBuilder":
        """Append ``wr(var)`` by ``tid``."""
        return self._add(tid, EventKind.WRITE, var, loc)

    def acq(self, tid: Tid, lock: Target, loc: Optional[str] = None) -> "TraceBuilder":
        """Append ``acq(lock)`` by ``tid``."""
        return self._add(tid, EventKind.ACQUIRE, lock, loc)

    def rel(self, tid: Tid, lock: Target, loc: Optional[str] = None) -> "TraceBuilder":
        """Append ``rel(lock)`` by ``tid``."""
        return self._add(tid, EventKind.RELEASE, lock, loc)

    def fork(self, tid: Tid, child: Tid, loc: Optional[str] = None) -> "TraceBuilder":
        """Append ``fork(child)`` by ``tid``."""
        return self._add(tid, EventKind.FORK, child, loc)

    def join(self, tid: Tid, child: Tid, loc: Optional[str] = None) -> "TraceBuilder":
        """Append ``join(child)`` by ``tid``."""
        return self._add(tid, EventKind.JOIN, child, loc)

    def begin(self, tid: Tid) -> "TraceBuilder":
        """Append the thread's begin marker."""
        return self._add(tid, EventKind.BEGIN, None, None)

    def end(self, tid: Tid) -> "TraceBuilder":
        """Append the thread's end marker."""
        return self._add(tid, EventKind.END, None, None)

    def vwr(self, tid: Tid, var: Target, loc: Optional[str] = None) -> "TraceBuilder":
        """Append a volatile write."""
        return self._add(tid, EventKind.VOLATILE_WRITE, var, loc)

    def vrd(self, tid: Tid, var: Target, loc: Optional[str] = None) -> "TraceBuilder":
        """Append a volatile read."""
        return self._add(tid, EventKind.VOLATILE_READ, var, loc)

    def sync(self, tid: Tid, lock: Target) -> "TraceBuilder":
        """Append the paper's ``sync(o)`` idiom (Figure 3):
        ``acq(o); rd(oVar); wr(oVar); rel(o)``."""
        var = f"{lock}Var"
        return (self.acq(tid, lock).rd(tid, var).wr(tid, var).rel(tid, lock))

    def events(self) -> List[Event]:
        """The raw events built so far, without constructing a
        :class:`Trace` — even ``validate=False`` construction refuses
        unmatched releases, but the linter must accept them."""
        return list(self._events)

    def build(self, validate: bool = True) -> Trace:
        """Finish and validate the trace."""
        return Trace(self._events, validate=validate)

"""Core data model: events, traces, vector clocks, exceptions."""

from repro.core.events import Event, EventKind, Target, Tid, conflicts
from repro.core.trace import Trace, TraceBuilder
from repro.core.vectorclock import EPOCH_ZERO, Epoch, VectorClock
from repro.core.exceptions import (
    MalformedReorderingError,
    MalformedTraceError,
    ReproError,
    TraceFormatError,
    VindicationError,
)

__all__ = [
    "EPOCH_ZERO",
    "Epoch",
    "Event",
    "EventKind",
    "MalformedReorderingError",
    "MalformedTraceError",
    "ReproError",
    "Target",
    "Tid",
    "Trace",
    "TraceBuilder",
    "TraceFormatError",
    "VectorClock",
    "VindicationError",
    "conflicts",
]

"""Exception hierarchy for the repro (Vindicator) library.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class. Structural problems in input traces raise
:class:`MalformedTraceError`; internal invariant violations during
vindication raise :class:`VindicationError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class MalformedTraceError(ReproError):
    """An execution trace violates a structural rule.

    Examples: releasing a lock that is not held, acquiring a lock that is
    already held (locks are modelled as non-reentrant, as in the paper's
    event model), an event by a thread before its fork, or an event after
    its join.
    """

    def __init__(self, message: str, event_index: int = -1):
        super().__init__(message)
        #: Index (trace position) of the offending event, or -1 if unknown.
        self.event_index = event_index


class MalformedReorderingError(ReproError):
    """A candidate reordered trace violates Definition 2.1.

    Raised by the witness checker when a reordered trace breaks the
    program-order (PO), conflicting-accesses (CA), or lock-semantics (LS)
    rule of a correct reordering.
    """

    def __init__(self, message: str, rule: str):
        super().__init__(f"{rule} rule violated: {message}")
        #: Which rule was broken: ``"PO"``, ``"CA"``, ``"LS"``, or ``"EVENTS"``.
        self.rule = rule


class VindicationError(ReproError):
    """An internal invariant of the VindicateRace algorithm was violated."""


class TraceFormatError(ReproError):
    """A textual trace file could not be parsed."""

    def __init__(self, message: str, line_number: int = -1):
        if line_number >= 0:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class SanitizerError(ReproError):
    """The lockset cross-check failed: a detector reported a race on a
    variable the set-based pre-analysis proves race-free.

    The pre-analysis verdicts (:mod:`repro.static.lockset`)
    over-approximate race candidates, so this can only mean a detector
    or the pre-analysis itself regressed; the offending races are in
    :attr:`violations`.
    """

    def __init__(self, violations: "list[str]"):
        super().__init__(
            "lockset sanitizer: {} race(s) on provably race-free "
            "variables:\n  {}".format(len(violations),
                                      "\n  ".join(violations)))
        self.violations = violations

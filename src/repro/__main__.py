"""``python -m repro`` entry point (same as the ``vindicator`` command)."""

import sys

from repro.cli import main

sys.exit(main())

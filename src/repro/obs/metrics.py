"""Metrics instruments and the registry that owns them.

Three instrument kinds cover everything the evaluation tables need:

* :class:`Counter` — a monotonically increasing count (events processed,
  races found, edges added);
* :class:`Gauge` — a point-in-time value (graph size, peak RSS);
* :class:`Histogram` — fixed-bucket distribution (per-race vindication
  time, race event distances).

The central design constraint is that *disabled observability must cost
nothing on hot paths*: there is a parallel family of null instruments
(:class:`NullCounter`, :class:`NullGauge`, :class:`NullHistogram`) whose
mutating methods are empty, plus :class:`NullMetricsRegistry`, which
hands out the shared null singletons. Instrumented code fetches its
instruments once per phase (``begin_trace``, start of a vindication,
...) from :func:`repro.obs.metrics` and then calls ``inc``/``observe``
with **no branching**: when observability is off the call dispatches to
an empty method, and the hottest per-event loops avoid even that by
accumulating plain ``int`` attributes that are published in one batch at
phase end (see ``docs/OBSERVABILITY.md`` for the layering argument).

Instruments are keyed by dotted lowercase names (``analysis.dc.events``)
so the Prometheus exporter can mangle them mechanically. Buckets are
fixed at histogram creation — observation is O(log buckets) with no
allocation.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple, Union, cast

Value = Union[int, float]

#: Dotted lowercase identifier: segments of [a-z0-9_]+ joined by dots.
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")

#: Default histogram buckets (seconds): microseconds to minutes.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0)

#: Default buckets for counts/sizes (events, distances, edges).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 5000, 10000, 100000)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"invalid metric name {name!r}: expected dotted lowercase "
            "segments like 'analysis.dc.events'")
    return name


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Value = 0

    def inc(self, amount: Value = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value; :meth:`set` overwrites, :meth:`track_max`
    keeps the maximum seen."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Value = 0

    def set(self, value: Value) -> None:
        self.value = value

    def track_max(self, value: Value) -> None:
        if value > self.value:
            self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A fixed-bucket histogram (cumulative-style export, Prometheus
    ``le`` semantics: ``counts[i]`` observations fell in
    ``(bucket[i-1], bucket[i]]``, with one overflow bucket at the end).
    """

    __slots__ = ("name", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, buckets: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name!r} buckets must be non-empty and "
                f"strictly increasing, got {bounds}")
        self.name = name
        self.buckets: Tuple[float, ...] = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: Value) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, sum={self.sum:g})"


class NullCounter:
    """No-op counter handed out by the disabled registry."""

    __slots__ = ()
    name = "null"
    value: Value = 0

    def inc(self, amount: Value = 1) -> None:
        pass


class NullGauge:
    """No-op gauge handed out by the disabled registry."""

    __slots__ = ()
    name = "null"
    value: Value = 0

    def set(self, value: Value) -> None:
        pass

    def track_max(self, value: Value) -> None:
        pass


class NullHistogram:
    """No-op histogram handed out by the disabled registry."""

    __slots__ = ()
    name = "null"
    sum: float = 0.0
    count: int = 0

    def observe(self, value: Value) -> None:
        pass

    def to_dict(self) -> Dict[str, object]:
        return {"buckets": [], "counts": [], "sum": 0.0, "count": 0}


#: Shared null singletons — every disabled call site hits the same
#: objects, so the disabled path allocates nothing.
NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()

AnyCounter = Union[Counter, NullCounter]
AnyGauge = Union[Gauge, NullGauge]
AnyHistogram = Union[Histogram, NullHistogram]


class MetricsRegistry:
    """Owns every live instrument, keyed by name.

    ``counter``/``gauge``/``histogram`` create on first use and return
    the same instrument afterwards, so call sites can re-fetch by name
    at phase boundaries without coordinating instance sharing.
    """

    #: Discriminates the live registry from :class:`NullMetricsRegistry`
    #: without an isinstance check.
    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument acquisition
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(_check_name(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(_check_name(name))
        return instrument

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                _check_name(name), buckets or DEFAULT_TIME_BUCKETS)
        return instrument

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------
    def add(self, name: str, amount: Value) -> None:
        """Convenience: ``counter(name).inc(amount)``."""
        self.counter(name).inc(amount)

    def counters(self) -> Dict[str, Value]:
        """Counter values by name (sorted for stable output)."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges(self) -> Dict[str, Value]:
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def histograms(self) -> Dict[str, Dict[str, object]]:
        return {name: h.to_dict()
                for name, h in sorted(self._histograms.items())}

    def snapshot(self) -> Dict[str, object]:
        """One JSON-able document with every instrument's current state."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": self.histograms(),
        }

    def merge_snapshot(self, snap: Dict[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The parallel engine uses this to join worker-process registries
        back into the parent: counters add, gauges keep the maximum
        (every gauge in the pipeline is ``track_max``-style), and
        histograms add bucket counts pairwise. A histogram that already
        exists locally must have the same bucket bounds as the incoming
        one; otherwise the merged distribution would be meaningless.
        """
        counters = cast(Dict[str, Value], snap.get("counters") or {})
        for name, value in counters.items():
            self.counter(name).inc(value)
        gauges = cast(Dict[str, Value], snap.get("gauges") or {})
        for name, value in gauges.items():
            self.gauge(name).track_max(value)
        histograms = cast(Dict[str, Dict[str, object]],
                          snap.get("histograms") or {})
        for name, data in histograms.items():
            buckets = cast(List[float], data["buckets"])
            hist = self.histogram(name, buckets)
            if list(hist.buckets) != [float(b) for b in buckets]:
                raise ValueError(
                    f"histogram {name!r}: cannot merge buckets {buckets} "
                    f"into {list(hist.buckets)}")
            for i, count in enumerate(cast(List[int], data["counts"])):
                hist.counts[i] += count
            hist.sum += cast(float, data["sum"])
            hist.count += cast(int, data["count"])


class NullMetricsRegistry:
    """The disabled registry: hands out shared null instruments.

    Keeping the interface identical to :class:`MetricsRegistry` lets
    instrumented code fetch-and-use instruments with zero branches; the
    cost of disabled instrumentation is one empty method call, and zero
    where call sites batch into plain ints.
    """

    enabled = False

    def counter(self, name: str) -> NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str) -> NullGauge:
        return NULL_GAUGE

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> NullHistogram:
        return NULL_HISTOGRAM

    def add(self, name: str, amount: Value) -> None:
        pass

    def counters(self) -> Dict[str, Value]:
        return {}

    def gauges(self) -> Dict[str, Value]:
        return {}

    def histograms(self) -> Dict[str, Dict[str, object]]:
        return {}

    def snapshot(self) -> Dict[str, object]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge_snapshot(self, snap: Dict[str, object]) -> None:
        pass


NULL_REGISTRY = NullMetricsRegistry()

AnyRegistry = Union[MetricsRegistry, NullMetricsRegistry]

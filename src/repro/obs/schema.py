"""Stable, documented schemas for every machine-readable output.

Benchmarks and CI consume three artifact families, each carrying an
explicit ``schema`` version tag so scrapers fail loudly instead of
silently misparsing:

* ``vindicator.obs/1`` — the ``--metrics *.jsonl`` event stream: one
  ``meta`` record, then one flat ``span`` record per closed span, then
  exactly one final ``metrics`` record;
* ``vindicator.obs-snapshot/1`` — the single-document form
  (``--metrics *.json``): metrics snapshot + recursive span tree +
  memory + meta;
* ``vindicator.analyze/1`` — ``vindicator analyze --json``: trace
  provenance, per-analysis race reports, classification, vindication
  verdicts, and the metrics snapshot when observability was on;
* ``vindicator.lint/1`` — ``vindicator lint --json``: every linter
  finding with its stable rule code, severity, and source line;
* ``vindicator.scan/1`` — ``vindicator scan --json``: the source-level
  static analysis report — per-module tier classification, SA2xx
  findings, and the instrumentation plan the future dynamic frontend
  consumes (see ``docs/ALGORITHMS.md``);
* ``vindicator.serve/1`` — the framed NDJSON request/response protocol
  of the streaming daemon (``vindicator serve``): session lifecycle
  (``hello``/``events``/``status``/``races``/``finish``), checkpoint
  control, and the structured error envelope (see ``docs/SERVING.md``).

Validation is a dependency-free subset of JSON Schema (``type``,
``properties``, ``required``, ``additionalProperties``, ``items``,
``enum``, plus ``$ref`` into a definitions table for the recursive span
tree). The exact field-by-field contract is documented in
``docs/OBSERVABILITY.md``; tests and the CI perf-smoke job validate
real artifacts against these schemas on every run.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Optional, Union

Schema = Mapping[str, object]

#: Version tags (bump on any breaking change to the matching schema).
OBS_STREAM_SCHEMA_ID = "vindicator.obs/1"
OBS_SNAPSHOT_SCHEMA_ID = "vindicator.obs-snapshot/1"
ANALYZE_SCHEMA_ID = "vindicator.analyze/1"
LINT_SCHEMA_ID = "vindicator.lint/1"
SCAN_SCHEMA_ID = "vindicator.scan/1"
SERVE_SCHEMA_ID = "vindicator.serve/1"


class SchemaError(ValueError):
    """A document does not conform to its schema."""

    def __init__(self, path: str, message: str):
        super().__init__(f"{path}: {message}")
        self.path = path


_TYPES: Dict[str, Union[type, tuple]] = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "integer": int,
    "number": (int, float),
    "null": type(None),
}


def _type_ok(value: object, name: str) -> bool:
    expected = _TYPES[name]
    if name in ("integer", "number") and isinstance(value, bool):
        return False  # bool is an int subclass; JSON says they differ
    return isinstance(value, expected)  # type: ignore[arg-type]


def validate(value: object, schema: Schema, path: str = "$",
             defs: Optional[Mapping[str, Schema]] = None) -> None:
    """Validate ``value`` against ``schema``; raise :class:`SchemaError`
    naming the offending path on the first violation."""
    ref = schema.get("$ref")
    if ref is not None:
        if defs is None or not isinstance(ref, str) or ref not in defs:
            raise SchemaError(path, f"unresolvable $ref {ref!r}")
        validate(value, defs[ref], path, defs)
        return

    type_spec = schema.get("type")
    if type_spec is not None:
        names = [type_spec] if isinstance(type_spec, str) else list(type_spec)  # type: ignore[arg-type]
        if not any(isinstance(n, str) and _type_ok(value, n) for n in names):
            raise SchemaError(
                path, f"expected {' or '.join(map(str, names))}, "
                      f"got {type(value).__name__} ({value!r:.80})")

    enum = schema.get("enum")
    if enum is not None and value not in enum:  # type: ignore[operator]
        raise SchemaError(path, f"{value!r} not in enum {enum!r}")

    if isinstance(value, dict):
        props = schema.get("properties")
        required = schema.get("required")
        extra = schema.get("additionalProperties", True)
        if isinstance(required, list):
            for key in required:
                if key not in value:
                    raise SchemaError(path, f"missing required key {key!r}")
        if isinstance(props, dict):
            for key, sub in props.items():
                if key in value and isinstance(sub, dict):
                    validate(value[key], sub, f"{path}.{key}", defs)
            if extra is False:
                unknown = set(value) - set(props)
                if unknown:
                    raise SchemaError(
                        path, f"unexpected keys {sorted(unknown)!r}")
            elif isinstance(extra, dict):
                for key in set(value) - set(props):
                    validate(value[key], extra, f"{path}.{key}", defs)
        elif isinstance(extra, dict):
            for key, item in value.items():
                validate(item, extra, f"{path}.{key}", defs)

    if isinstance(value, list):
        items = schema.get("items")
        if isinstance(items, dict):
            for i, item in enumerate(value):
                validate(item, items, f"{path}[{i}]", defs)


# ----------------------------------------------------------------------
# Shared fragments
# ----------------------------------------------------------------------
_NUMBER = {"type": "number"}
_COUNTS = {"type": "object", "additionalProperties": _NUMBER}
_MEMORY = {"type": "object", "additionalProperties": {"type": "integer"}}

_HISTOGRAM = {
    "type": "object",
    "required": ["buckets", "counts", "sum", "count"],
    "additionalProperties": False,
    "properties": {
        "buckets": {"type": "array", "items": _NUMBER},
        "counts": {"type": "array", "items": {"type": "integer"}},
        "sum": _NUMBER,
        "count": {"type": "integer"},
    },
}

_METRICS_SNAPSHOT = {
    "type": "object",
    "required": ["counters", "gauges", "histograms"],
    "additionalProperties": False,
    "properties": {
        "counters": _COUNTS,
        "gauges": _COUNTS,
        "histograms": {"type": "object", "additionalProperties": _HISTOGRAM},
    },
}

#: Recursive span tree node (snapshot form).
_SPAN_TREE: Dict[str, object] = {
    "type": "object",
    "required": ["name", "elapsed_seconds"],
    "additionalProperties": False,
    "properties": {
        "name": {"type": "string"},
        "elapsed_seconds": _NUMBER,
        "counts": _COUNTS,
        "tags": {"type": "object",
                 "additionalProperties": {"type": "string"}},
        "memory": _MEMORY,
        "children": {"type": "array", "items": {"$ref": "span_tree"}},
    },
}

_DEFS: Dict[str, Schema] = {"span_tree": _SPAN_TREE}

_PROVENANCE = {"type": "object"}

# ----------------------------------------------------------------------
# JSONL stream records (vindicator.obs/1)
# ----------------------------------------------------------------------
META_RECORD_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["type", "schema"],
    "properties": {
        "type": {"enum": ["meta"]},
        "schema": {"enum": [OBS_STREAM_SCHEMA_ID]},
        "command": {"type": "string"},
        "python": {"type": "string"},
        "kernels": {"enum": ["python", "compiled"]},
        "provenance": _PROVENANCE,
    },
}

SPAN_RECORD_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["type", "name", "elapsed_seconds", "depth"],
    "additionalProperties": False,
    "properties": {
        "type": {"enum": ["span"]},
        "name": {"type": "string"},
        "elapsed_seconds": _NUMBER,
        "depth": {"type": "integer"},
        "counts": _COUNTS,
        "tags": {"type": "object",
                 "additionalProperties": {"type": "string"}},
        "memory": _MEMORY,
    },
}

METRICS_RECORD_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["type", "metrics"],
    "additionalProperties": False,
    "properties": {
        "type": {"enum": ["metrics"]},
        "metrics": _METRICS_SNAPSHOT,
    },
}

_RECORD_SCHEMAS: Dict[str, Schema] = {
    "meta": META_RECORD_SCHEMA,
    "span": SPAN_RECORD_SCHEMA,
    "metrics": METRICS_RECORD_SCHEMA,
}

# ----------------------------------------------------------------------
# Snapshot document (vindicator.obs-snapshot/1)
# ----------------------------------------------------------------------
SNAPSHOT_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["schema", "metrics", "spans"],
    "properties": {
        "schema": {"enum": [OBS_SNAPSHOT_SCHEMA_ID]},
        "metrics": _METRICS_SNAPSHOT,
        "spans": {"type": "array", "items": {"$ref": "span_tree"}},
        "memory": _MEMORY,
        "meta": {"type": "object"},
    },
}

# ----------------------------------------------------------------------
# analyze --json document (vindicator.analyze/1)
# ----------------------------------------------------------------------
_EVENT = {
    "type": "object",
    "required": ["eid", "tid", "kind", "target"],
    "properties": {
        "eid": {"type": "integer"},
        "tid": {"type": ["string", "integer"]},
        "kind": {"type": "string"},
        "target": {"type": ["string", "integer", "null"]},
        "loc": {"type": ["string", "null"]},
    },
}

_RACE = {
    "type": "object",
    "required": ["first", "second", "relation", "distance"],
    "properties": {
        "first": _EVENT,
        "second": _EVENT,
        "relation": {"type": "string"},
        "race_class": {"type": ["string", "null"]},
        "distance": {"type": "integer"},
    },
}

_ANALYSIS = {
    "type": "object",
    "required": ["relation", "static_races", "dynamic_races", "races",
                 "counters"],
    "properties": {
        "relation": {"type": "string"},
        "static_races": {"type": "integer"},
        "dynamic_races": {"type": "integer"},
        "races": {"type": "array", "items": _RACE},
        "counters": _COUNTS,
    },
}

_VINDICATION = {
    "type": "object",
    "required": ["race", "verdict", "ls_constraints", "consecutive_edges",
                 "attempts", "elapsed_seconds"],
    "properties": {
        "race": _RACE,
        "verdict": {"enum": ["predictable race", "no predictable race",
                             "don't know"]},
        "ls_constraints": {"type": "integer"},
        "consecutive_edges": {"type": "integer"},
        "attempts": {"type": "integer"},
        "elapsed_seconds": _NUMBER,
        "witness_events": {"type": ["integer", "null"]},
        "cycle": {"type": ["array", "null"], "items": {"type": "integer"}},
    },
}

ANALYZE_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["schema", "trace", "analyses", "race_classes",
                 "vindications", "kernels"],
    "properties": {
        "schema": {"enum": [ANALYZE_SCHEMA_ID]},
        "trace": {
            "type": "object",
            "required": ["events", "threads", "provenance"],
            "properties": {
                "events": {"type": "integer"},
                "threads": {"type": "array"},
                "variables": {"type": "integer"},
                "provenance": _PROVENANCE,
            },
        },
        "analyses": {
            "type": "object",
            "required": ["hb", "wcp", "dc"],
            "additionalProperties": _ANALYSIS,
        },
        "race_classes": {"type": "object",
                         "additionalProperties": {"type": "integer"}},
        "vindications": {"type": "array", "items": _VINDICATION},
        "lockset": {
            "type": ["object", "null"],
            "properties": {
                "summary": {"type": "string"},
                "verdicts": {"type": "object",
                             "additionalProperties": {"type": "integer"}},
            },
        },
        "timing": {
            "type": "object",
            "properties": {
                "analysis_seconds": _NUMBER,
                "vindication_seconds": _NUMBER,
            },
        },
        "metrics": {"type": ["object", "null"]},
        "parallel": {
            "type": "object",
            "required": ["jobs"],
            "properties": {
                "jobs": {"type": "integer"},
            },
        },
        "kernels": {
            "type": "object",
            "required": ["backend"],
            "properties": {
                "backend": {"enum": ["python", "compiled"]},
            },
        },
    },
}


# ----------------------------------------------------------------------
# lint --json document (vindicator.lint/1)
# ----------------------------------------------------------------------
_SEVERITY = {"enum": ["error", "warning", "note"]}

_LINT_FINDING = {
    "type": "object",
    "required": ["code", "severity", "message", "event_index", "line"],
    "additionalProperties": False,
    "properties": {
        "code": {"type": "string"},
        "severity": _SEVERITY,
        "message": {"type": "string"},
        "event_index": {"type": "integer"},
        "line": {"type": ["integer", "null"]},
    },
}

LINT_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["schema", "source", "events", "summary", "findings"],
    "additionalProperties": False,
    "properties": {
        "schema": {"enum": [LINT_SCHEMA_ID]},
        "source": {"type": "string"},
        "events": {"type": "integer"},
        "summary": {
            "type": "object",
            "required": ["findings", "errors", "warnings", "notes"],
            "additionalProperties": False,
            "properties": {
                "findings": {"type": "integer"},
                "errors": {"type": "integer"},
                "warnings": {"type": "integer"},
                "notes": {"type": "integer"},
            },
        },
        "findings": {"type": "array", "items": _LINT_FINDING},
    },
}

# ----------------------------------------------------------------------
# scan --json document (vindicator.scan/1)
# ----------------------------------------------------------------------
_TIER = {"enum": ["thread-local", "read-shared", "guarded",
                  "race-candidate"]}
_ACCESS_KIND = {"enum": ["rd", "wr"]}

_SCAN_LOCATION = {
    "type": "object",
    "required": ["file", "line", "function", "kind"],
    "additionalProperties": False,
    "properties": {
        "file": {"type": "string"},
        "line": {"type": "integer"},
        "function": {"type": "string"},
        "kind": _ACCESS_KIND,
    },
}

_SCAN_FINDING = {
    "type": "object",
    "required": ["code", "severity", "message", "path", "locations"],
    "additionalProperties": False,
    "properties": {
        "code": {"type": "string"},
        "severity": _SEVERITY,
        "message": {"type": "string"},
        "path": {"type": "string"},
        "locations": {"type": "array", "items": _SCAN_LOCATION},
    },
}

_PLAN_SITE = {
    "type": "object",
    "required": ["file", "line", "col", "function", "path", "kind",
                 "tier", "instrument", "reached", "locks"],
    "additionalProperties": False,
    "properties": {
        "file": {"type": "string"},
        "line": {"type": "integer"},
        "col": {"type": "integer"},
        "function": {"type": "string"},
        "path": {"type": "string"},
        "kind": _ACCESS_KIND,
        "tier": _TIER,
        "instrument": {"type": "boolean"},
        "reached": {"type": "boolean"},
        "locks": {"type": "array", "items": {"type": "string"}},
    },
}

_SCAN_MODULE = {
    "type": "object",
    "required": ["path", "name", "counters", "entries", "locks",
                 "spawns", "tiers", "findings", "plan"],
    "additionalProperties": False,
    "properties": {
        "path": {"type": "string"},
        "name": {"type": "string"},
        "counters": {"type": "object",
                     "additionalProperties": {"type": "integer"}},
        "entries": {"type": "array", "items": {"type": "string"}},
        "locks": {"type": "array", "items": {"type": "string"}},
        "spawns": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["entry", "function", "file", "line", "via",
                             "in_loop"],
                "additionalProperties": False,
                "properties": {
                    "entry": {"type": "string"},
                    "function": {"type": "string"},
                    "file": {"type": "string"},
                    "line": {"type": "integer"},
                    "via": {"enum": ["thread", "subclass", "executor",
                                     "fork", "program"]},
                    "in_loop": {"type": "boolean"},
                },
            },
        },
        "tiers": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["path", "tier", "sites"],
                "additionalProperties": False,
                "properties": {
                    "path": {"type": "string"},
                    "tier": _TIER,
                    "sites": {"type": "integer"},
                },
            },
        },
        "findings": {"type": "array", "items": _SCAN_FINDING},
        "plan": {"type": "array", "items": _PLAN_SITE},
    },
}

SCAN_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["schema", "summary", "modules"],
    "additionalProperties": False,
    "properties": {
        "schema": {"enum": [SCAN_SCHEMA_ID]},
        "summary": {"type": "object",
                    "additionalProperties": {"type": "integer"}},
        "modules": {"type": "array", "items": _SCAN_MODULE},
    },
}


# ----------------------------------------------------------------------
# serve protocol (vindicator.serve/1)
# ----------------------------------------------------------------------
_SERVE_ERROR_CODES = ["bad-frame", "bad-request", "unknown-session",
                      "session-exists", "session-finished",
                      "malformed-trace", "trace-format", "checkpoint",
                      "too-large", "internal"]

_SESSION_CONFIG = {
    "type": "object",
    "additionalProperties": False,
    "properties": {
        "gc_window": {"type": "integer"},
        "build_graph": {"type": "boolean"},
        "vindicate_all": {"type": "boolean"},
        "policy": {"type": "string"},
        "transitive_force": {"type": "boolean"},
        "require_fork_closed": {"type": ["boolean", "null"]},
    },
}

_SESSION_STATUS = {
    "type": "object",
    "required": ["session", "events", "threads", "finished",
                 "gc_runs", "gc_retired", "trace_hash"],
    "properties": {
        "session": {"type": "string"},
        "events": {"type": "integer"},
        "threads": {"type": "integer"},
        "finished": {"type": "boolean"},
        "gc_runs": {"type": "integer"},
        "gc_retired": {"type": "integer"},
        "trace_hash": {"type": "string"},
        "races": {"type": "object",
                  "additionalProperties": {"type": "integer"}},
        "kernels": {"enum": ["python", "compiled"]},
    },
}

#: Per-op request contracts. Every request carries ``op``; session ops
#: carry ``session``.
_SERVE_REQUEST_SCHEMAS: Dict[str, Schema] = {
    "ping": {"type": "object", "required": ["op"]},
    "sessions": {"type": "object", "required": ["op"]},
    "shutdown": {"type": "object", "required": ["op"]},
    "hello": {
        "type": "object",
        "required": ["op", "session"],
        "additionalProperties": False,
        "properties": {
            "op": {"enum": ["hello"]},
            "session": {"type": "string"},
            "config": _SESSION_CONFIG,
            "resume": {"type": ["string", "null"]},
        },
    },
    "events": {
        "type": "object",
        "required": ["op", "session", "lines"],
        "additionalProperties": False,
        "properties": {
            "op": {"enum": ["events"]},
            "session": {"type": "string"},
            "lines": {"type": "array", "items": {"type": "string"}},
        },
    },
    "status": {"type": "object", "required": ["op", "session"],
               "properties": {"session": {"type": "string"}}},
    "races": {"type": "object", "required": ["op", "session"],
              "properties": {"session": {"type": "string"}}},
    "finish": {"type": "object", "required": ["op", "session"],
               "properties": {"session": {"type": "string"}}},
    "checkpoint": {
        "type": "object",
        "required": ["op", "session"],
        "properties": {
            "session": {"type": "string"},
            "path": {"type": ["string", "null"]},
        },
    },
}

#: Fields each successful response must carry (beyond the envelope).
_SERVE_RESPONSE_REQUIRED: Dict[str, List[str]] = {
    "ping": [],
    "sessions": ["sessions"],
    "shutdown": [],
    "hello": ["session", "resumed", "events"],
    "events": ["accepted", "events"],
    "status": ["status"],
    "races": ["races"],
    "finish": ["report", "trace_hash"],
    "checkpoint": ["path", "bytes", "events", "trace_hash"],
}

_SERVE_RESPONSE_FIELD_SCHEMAS: Dict[str, Schema] = {
    "sessions": {"type": "array", "items": _SESSION_STATUS},
    "session": {"type": "string"},
    "resumed": {"type": "boolean"},
    "events": {"type": "integer"},
    "accepted": {"type": "integer"},
    "status": _SESSION_STATUS,
    "races": {
        "type": "object",
        "required": ["analyses", "race_classes"],
        "properties": {
            "analyses": {"type": "object", "additionalProperties": _ANALYSIS},
            "race_classes": {"type": "object",
                             "additionalProperties": {"type": "integer"}},
        },
    },
    "report": ANALYZE_SCHEMA,
    "trace_hash": {"type": "string"},
    "path": {"type": "string"},
    "bytes": {"type": "integer"},
}

_SERVE_ERROR = {
    "type": "object",
    "required": ["code", "message"],
    "properties": {
        "code": {"enum": _SERVE_ERROR_CODES},
        "message": {"type": "string"},
        "event_index": {"type": "integer"},
        "line_number": {"type": "integer"},
    },
}


def validate_serve_request(doc: object, path: str = "$") -> str:
    """Validate one ``vindicator.serve/1`` request; returns its ``op``."""
    if not isinstance(doc, dict):
        raise SchemaError(path, f"request must be an object, got "
                                f"{type(doc).__name__}")
    op = doc.get("op")
    schema = _SERVE_REQUEST_SCHEMAS.get(op) if isinstance(op, str) else None
    if schema is None:
        raise SchemaError(path, f"unknown op {op!r}")
    validate(doc, schema, path, defs=_DEFS)
    return op  # type: ignore[return-value]


def validate_serve_response(doc: object, path: str = "$") -> str:
    """Validate one ``vindicator.serve/1`` response; returns its ``op``."""
    if not isinstance(doc, dict):
        raise SchemaError(path, f"response must be an object, got "
                                f"{type(doc).__name__}")
    validate(doc, {
        "type": "object",
        "required": ["schema", "ok", "op"],
        "properties": {
            "schema": {"enum": [SERVE_SCHEMA_ID]},
            "ok": {"type": "boolean"},
            "op": {"type": "string"},
        },
    }, path, defs=_DEFS)
    op = doc["op"]
    if not doc["ok"]:
        if "error" not in doc:
            raise SchemaError(path, "failed response missing 'error'")
        validate(doc["error"], _SERVE_ERROR, f"{path}.error", defs=_DEFS)
        return op  # type: ignore[return-value]
    for key in _SERVE_RESPONSE_REQUIRED.get(op, []):
        if key not in doc:
            raise SchemaError(path, f"ok {op!r} response missing {key!r}")
    for key, sub in _SERVE_RESPONSE_FIELD_SCHEMAS.items():
        if key in doc:
            validate(doc[key], sub, f"{path}.{key}", defs=_DEFS)
    return op  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def validate_snapshot(doc: object) -> None:
    """Validate a ``vindicator.obs-snapshot/1`` document."""
    validate(doc, SNAPSHOT_SCHEMA, defs=_DEFS)


def validate_analyze_document(doc: object) -> None:
    """Validate a ``vindicator.analyze/1`` document."""
    validate(doc, ANALYZE_SCHEMA, defs=_DEFS)


def validate_lint_document(doc: object) -> None:
    """Validate a ``vindicator.lint/1`` document."""
    validate(doc, LINT_SCHEMA, defs=_DEFS)


def validate_scan_document(doc: object) -> None:
    """Validate a ``vindicator.scan/1`` document."""
    validate(doc, SCAN_SCHEMA, defs=_DEFS)


def validate_jsonl_record(record: object, path: str = "$") -> str:
    """Validate one stream record; returns its ``type``."""
    if not isinstance(record, dict):
        raise SchemaError(path, f"record must be an object, got "
                                f"{type(record).__name__}")
    kind = record.get("type")
    schema = _RECORD_SCHEMAS.get(kind) if isinstance(kind, str) else None
    if schema is None:
        raise SchemaError(path, f"unknown record type {kind!r}")
    validate(record, schema, path, defs=_DEFS)
    return kind  # type: ignore[return-value]


def validate_jsonl_lines(lines: Iterable[str], source: str = "<stream>") -> Dict[str, int]:
    """Validate a whole ``vindicator.obs/1`` stream.

    Enforces the stream grammar — first record ``meta``, exactly one
    trailing ``metrics`` record — and returns record counts by type.
    """
    counts: Dict[str, int] = {}
    kinds: List[str] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        where = f"{source}:{lineno}"
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SchemaError(where, f"invalid JSON: {exc}") from exc
        kind = validate_jsonl_record(record, where)
        counts[kind] = counts.get(kind, 0) + 1
        kinds.append(kind)
    if not kinds:
        raise SchemaError(source, "empty metrics stream")
    if kinds[0] != "meta":
        raise SchemaError(source, f"first record must be 'meta', "
                                  f"got {kinds[0]!r}")
    if counts.get("metrics", 0) != 1 or kinds[-1] != "metrics":
        raise SchemaError(source, "stream must end with exactly one "
                                  "'metrics' record")
    return counts


def validate_jsonl_path(path: str) -> Dict[str, int]:
    """Validate a ``--metrics`` JSONL artifact on disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return validate_jsonl_lines(fh, source=path)

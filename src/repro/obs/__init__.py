"""``repro.obs`` — the observability subsystem.

One module-level switch controls a process-wide metrics registry and
tracer. Instrumented code throughout the pipeline asks this module for
its instruments::

    from repro import obs

    reg = obs.metrics()                  # AnyRegistry
    with obs.span("pipeline.analysis"):  # AnySpan (context manager)
        ...
    reg.add("analysis.dc.races", n)

When observability is *off* (the default), :func:`metrics` returns the
shared :data:`~repro.obs.metrics.NULL_REGISTRY` and :func:`span` the
shared :data:`~repro.obs.spans.NULL_SPAN` — every instrument operation
is an empty method on a singleton, and the hottest loops skip even that
by batching plain ints (see ``docs/OBSERVABILITY.md``). The detection
pipeline itself never flips the switch; only entry points
(CLI ``--metrics``/``profile``, benchmarks, tests) do, via
:func:`enable`/:func:`disable` or the :func:`session` context manager,
which also wires exporters by file extension.
"""

from __future__ import annotations

import io
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Optional

from repro.obs.export import (
    JsonlWriter,
    meta_record,
    metrics_record,
    snapshot_document,
    to_prometheus,
    write_metrics,
)
from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    NULL_REGISTRY,
    AnyCounter,
    AnyGauge,
    AnyHistogram,
    AnyRegistry,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.spans import (
    NULL_SPAN,
    NULL_TRACER,
    AnySpan,
    AnyTracer,
    CloseHook,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "AnyCounter", "AnyGauge", "AnyHistogram", "AnyRegistry", "AnySpan",
    "AnyTracer", "Counter", "DEFAULT_SIZE_BUCKETS", "DEFAULT_TIME_BUCKETS",
    "Gauge", "Histogram", "MetricsRegistry", "NullMetricsRegistry",
    "NullTracer", "ObsSession", "Span", "Tracer", "disable", "enable",
    "enabled", "metrics", "session", "span", "tracer",
]

_metrics: AnyRegistry = NULL_REGISTRY
_tracer: AnyTracer = NULL_TRACER


def metrics() -> AnyRegistry:
    """The current registry (the null registry when disabled)."""
    return _metrics


def tracer() -> AnyTracer:
    """The current tracer (the null tracer when disabled)."""
    return _tracer


def span(name: str) -> AnySpan:
    """A span on the current tracer (:data:`NULL_SPAN` when disabled)."""
    return _tracer.span(name)


def enabled() -> bool:
    """True when a live registry is installed."""
    return _metrics.enabled


def enable(sample_memory: bool = True, deep_memory: bool = False,
           on_close: Optional[CloseHook] = None) -> MetricsRegistry:
    """Install a fresh live registry + tracer; returns the registry."""
    global _metrics, _tracer
    _metrics = MetricsRegistry()
    _tracer = Tracer(sample_memory=sample_memory, deep_memory=deep_memory,
                     on_close=on_close)
    return _metrics


def disable() -> None:
    """Restore the null registry + tracer (the default state)."""
    global _metrics, _tracer
    _metrics = NULL_REGISTRY
    _tracer = NULL_TRACER


class ObsSession:
    """Handle yielded by :func:`session`; snapshot access after the run."""

    def __init__(self, registry: MetricsRegistry, active_tracer: Tracer,
                 metrics_path: Optional[str]) -> None:
        self.registry = registry
        self.tracer = active_tracer
        self.metrics_path = metrics_path

    def snapshot(self, meta: Optional[Mapping[str, object]] = None
                 ) -> Dict[str, object]:
        return snapshot_document(self.registry, self.tracer, meta)

    def prometheus(self) -> str:
        return to_prometheus(self.registry)

    def render_spans(self, min_ms: float = 0.0) -> str:
        return self.tracer.render(min_ms)


@contextmanager
def session(metrics_path: Optional[str] = None,
            meta: Optional[Mapping[str, object]] = None,
            deep_memory: bool = False) -> Iterator[ObsSession]:
    """Enable observability for one run and export on exit.

    ``metrics_path`` picks the exporter by extension: ``*.jsonl``
    streams span records as they close and appends the final metrics
    record; ``*.json`` writes the snapshot document; ``*.prom``/``*.txt``
    writes Prometheus text. ``None`` collects in memory only (the
    caller reads ``session.registry`` / ``session.tracer``).
    Observability is always restored to disabled on exit.
    """
    stream: Optional[io.TextIOWrapper] = None
    writer: Optional[JsonlWriter] = None
    streaming = bool(metrics_path) and str(metrics_path).lower().endswith(
        ".jsonl")
    try:
        if streaming:
            assert metrics_path is not None
            stream = open(metrics_path, "w", encoding="utf-8")
            writer = JsonlWriter(stream)
            registry = enable(deep_memory=deep_memory,
                              on_close=writer.on_close)
            writer.write(meta_record(
                command=str((meta or {}).get("command", "")),
                provenance=_meta_provenance(meta)))
        else:
            registry = enable(deep_memory=deep_memory)
        active = _tracer
        assert isinstance(active, Tracer)
        handle = ObsSession(registry, active, metrics_path)
        yield handle
        if streaming and writer is not None:
            writer.write(metrics_record(registry))
        elif metrics_path:
            write_metrics(metrics_path, registry, active, meta)
    finally:
        if stream is not None:
            stream.close()
        disable()


def _meta_provenance(meta: Optional[Mapping[str, object]]
                     ) -> Optional[Mapping[str, object]]:
    if meta is None:
        return None
    value = meta.get("provenance")
    return value if isinstance(value, dict) else None

"""Exporters: JSONL event stream, snapshot JSON, Prometheus text.

Three formats, chosen by file extension in :func:`write_metrics`:

* ``*.jsonl`` — a streamed event log (``vindicator.obs/1``): a ``meta``
  header, one flat ``span`` record per closed span (emitted via the
  tracer's ``on_close`` hook, so long runs don't buffer their whole
  span forest), and a single trailing ``metrics`` record;
* ``*.json`` — one self-contained snapshot document
  (``vindicator.obs-snapshot/1``) with the metrics snapshot and the
  recursive span tree;
* ``*.prom`` / ``*.txt`` — Prometheus text exposition format, with
  dotted metric names mangled to ``vindicator_``-prefixed underscores.

All record shapes are pinned by :mod:`repro.obs.schema`.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, IO, List, Mapping, Optional

from repro.core import kernels
from repro.obs.metrics import AnyRegistry, Value
from repro.obs.schema import OBS_SNAPSHOT_SCHEMA_ID, OBS_STREAM_SCHEMA_ID
from repro.obs.spans import AnyTracer, Span


def _dumps(record: Mapping[str, object]) -> str:
    return json.dumps(record, separators=(",", ":"), sort_keys=True)


# ----------------------------------------------------------------------
# Record builders (JSONL stream)
# ----------------------------------------------------------------------
def meta_record(command: str = "",
                provenance: Optional[Mapping[str, object]] = None
                ) -> Dict[str, object]:
    """The stream header: schema tag + run identity."""
    record: Dict[str, object] = {
        "type": "meta",
        "schema": OBS_STREAM_SCHEMA_ID,
        "command": command,
        "python": sys.version.split()[0],
        "kernels": kernels.active_backend(),
    }
    if provenance:
        record["provenance"] = dict(provenance)
    return record


def span_record(span: Span, depth: int) -> Dict[str, object]:
    """One closed span as a flat stream record (depth, not nesting,
    carries the tree structure — children close before parents, so the
    stream is a post-order walk)."""
    record: Dict[str, object] = {
        "type": "span",
        "name": span.name,
        "elapsed_seconds": span.elapsed_seconds,
        "depth": depth,
    }
    if span.counts:
        record["counts"] = dict(span.counts)
    if span.tags:
        record["tags"] = dict(span.tags)
    mem = span.memory_delta()
    if mem:
        record["memory"] = mem
    return record


def metrics_record(registry: AnyRegistry) -> Dict[str, object]:
    """The single trailing record with the final metrics snapshot."""
    return {"type": "metrics", "metrics": registry.snapshot()}


class JsonlWriter:
    """Appends compact JSON lines to an open text stream.

    Usable directly as a tracer ``on_close`` hook via :meth:`on_close`.
    """

    def __init__(self, stream: IO[str]) -> None:
        self._stream = stream

    def write(self, record: Mapping[str, object]) -> None:
        self._stream.write(_dumps(record))
        self._stream.write("\n")

    def on_close(self, span: Span, depth: int) -> None:
        self.write(span_record(span, depth))


# ----------------------------------------------------------------------
# Snapshot document
# ----------------------------------------------------------------------
def snapshot_document(registry: AnyRegistry, tracer: AnyTracer,
                      meta: Optional[Mapping[str, object]] = None
                      ) -> Dict[str, object]:
    """One self-contained JSON document: metrics + span tree + meta."""
    doc: Dict[str, object] = {
        "schema": OBS_SNAPSHOT_SCHEMA_ID,
        "metrics": registry.snapshot(),
        "spans": tracer.to_dicts(),
    }
    if meta:
        doc["meta"] = dict(meta)
    return doc


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
def _prom_name(name: str, prefix: str) -> str:
    return f"{prefix}_{name.replace('.', '_')}"


def _prom_value(value: Value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def to_prometheus(registry: AnyRegistry, prefix: str = "vindicator") -> str:
    """The registry in Prometheus text exposition format."""
    lines: List[str] = []
    for name, value in registry.counters().items():
        mangled = _prom_name(name, prefix)
        lines.append(f"# TYPE {mangled} counter")
        lines.append(f"{mangled} {_prom_value(value)}")
    for name, value in registry.gauges().items():
        mangled = _prom_name(name, prefix)
        lines.append(f"# TYPE {mangled} gauge")
        lines.append(f"{mangled} {_prom_value(value)}")
    for name, hist in registry.histograms().items():
        mangled = _prom_name(name, prefix)
        lines.append(f"# TYPE {mangled} histogram")
        buckets = hist["buckets"]
        counts = hist["counts"]
        assert isinstance(buckets, list) and isinstance(counts, list)
        cumulative = 0
        for bound, count in zip(buckets, counts):
            cumulative += count
            lines.append(f'{mangled}_bucket{{le="{bound:g}"}} {cumulative}')
        cumulative += counts[-1] if counts else 0
        lines.append(f'{mangled}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{mangled}_sum {_prom_value(hist['sum'])}")  # type: ignore[arg-type]
        lines.append(f"{mangled}_count {hist['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Extension-dispatched writer (the ``--metrics <path>`` backend for the
# non-streaming formats; *.jsonl streaming is wired in obs.session()).
# ----------------------------------------------------------------------
def write_metrics(path: str, registry: AnyRegistry, tracer: AnyTracer,
                  meta: Optional[Mapping[str, object]] = None) -> None:
    """Write the final artifact for ``--metrics <path>``.

    ``*.json`` → snapshot document; ``*.prom``/``*.txt`` → Prometheus
    text; anything else (including ``*.jsonl``) → the stream's trailing
    records, for callers that did not stream during the run.
    """
    lower = path.lower()
    with open(path, "w", encoding="utf-8") as fh:
        if lower.endswith(".json"):
            json.dump(snapshot_document(registry, tracer, meta), fh,
                      indent=2, sort_keys=True)
            fh.write("\n")
        elif lower.endswith((".prom", ".txt")):
            fh.write(to_prometheus(registry))
        else:
            writer = JsonlWriter(fh)
            writer.write(meta_record(
                command=str((meta or {}).get("command", "")),
                provenance=_as_mapping((meta or {}).get("provenance"))))
            _write_span_stream(writer, tracer)
            writer.write(metrics_record(registry))


def _as_mapping(value: object) -> Optional[Mapping[str, object]]:
    return value if isinstance(value, dict) else None


def _write_span_stream(writer: JsonlWriter, tracer: AnyTracer) -> None:
    """Re-emit a buffered span forest as post-order flat records."""
    def emit(span: Span, depth: int) -> None:
        for child in span.children:
            emit(child, depth + 1)
        writer.on_close(span, depth)

    for root in getattr(tracer, "roots", []):
        emit(root, 0)

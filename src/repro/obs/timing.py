"""Benchmark timing helpers shared by everything under ``benchmarks/``.

The seed benchmarks each hand-rolled their own ``perf_counter`` loops;
these helpers give them one vocabulary — and pair every wall-time
measurement with the peak-RSS delta, since the paper's tables report
time and memory side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from types import TracebackType
from typing import Callable, Optional, Type, TypeVar

from repro.obs.memory import peak_rss_kb

T = TypeVar("T")


class Stopwatch:
    """A reusable wall-clock context manager::

        with Stopwatch() as sw:
            work()
        print(sw.elapsed_seconds)
    """

    def __init__(self) -> None:
        self.elapsed_seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        self.elapsed_seconds = perf_counter() - self._start

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_seconds * 1e3


@dataclass(frozen=True)
class Measurement:
    """One measured call: its result, wall time, and peak-RSS growth."""

    result: object
    elapsed_seconds: float
    peak_rss_delta_kb: int

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_seconds * 1e3


def measure(fn: Callable[[], T]) -> Measurement:
    """Run ``fn`` once, recording wall time and peak-RSS growth.

    Peak RSS is a high-water mark, so the delta is only attributable to
    ``fn`` when it is the biggest thing the process has run; benchmarks
    therefore measure their heaviest configuration last or in a child
    process.
    """
    rss_before = peak_rss_kb()
    start = perf_counter()
    result = fn()
    elapsed = perf_counter() - start
    return Measurement(result=result, elapsed_seconds=elapsed,
                       peak_rss_delta_kb=peak_rss_kb() - rss_before)


def best_of(fn: Callable[[], object], repeats: int = 3) -> float:
    """Minimum wall time over ``repeats`` runs (the standard
    noise-resistant point estimate for micro-benchmarks)."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        fn()
        best = min(best, perf_counter() - start)
    return best

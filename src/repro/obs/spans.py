"""Span-based tracing: a wall-time phase tree with memory sampling.

A *span* is one timed phase (``pipeline.analysis``,
``vindicate.construct``, ...). Spans nest: the tracer keeps an open-span
stack, and a span closed while another is open becomes its child, so a
full pipeline run produces a tree whose per-phase times sum (up to
uninstrumented gaps) to the total wall time — exactly the shape of the
paper's per-phase cost breakdown (Tables 2–4).

Usage::

    with obs.span("dc.analysis") as sp:
        ...
        sp.annotate("events", len(trace))

Each span records wall time (``perf_counter``), free-form numeric
annotations, and a memory sample at open and close
(:mod:`repro.obs.memory`). The disabled path is the shared
:data:`NULL_SPAN` singleton — entering/exiting it does nothing and
allocates nothing.

Like the rest of :mod:`repro.obs`, the tracer is deliberately
single-threaded: the detection pipeline is a single-threaded event loop
(the paper's analyses are sequentially consistent over one trace), so a
plain list is the correct — and fastest — stack.
"""

from __future__ import annotations

from time import perf_counter
from types import TracebackType
from typing import Callable, Dict, List, Optional, Type, Union, cast

from repro.obs.memory import MemorySample, delta, sample

#: ``on_close`` callback: (closed span, depth of its parent).
CloseHook = Callable[["Span", int], None]


class Span:
    """One timed phase; a context manager wired to its tracer."""

    __slots__ = ("name", "elapsed_seconds", "counts", "tags", "children",
                 "mem_before", "mem_after", "_start", "_tracer")

    def __init__(self, name: str, tracer: "Tracer") -> None:
        self.name = name
        self.elapsed_seconds = 0.0
        #: Free-form numeric annotations (event counts, sizes, ...).
        self.counts: Dict[str, Union[int, float]] = {}
        #: Free-form string annotations (backend names, variants, ...),
        #: kept apart from :attr:`counts` so the export schema can type
        #: each channel.
        self.tags: Dict[str, str] = {}
        self.children: List["Span"] = []
        self.mem_before: Optional[MemorySample] = None
        self.mem_after: Optional[MemorySample] = None
        self._start = 0.0
        self._tracer = tracer

    # ------------------------------------------------------------------
    # Context manager protocol
    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._open(self)
        if self._tracer.sample_memory:
            self.mem_before = sample(self._tracer.deep_memory)
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        self.elapsed_seconds = perf_counter() - self._start
        if self._tracer.sample_memory:
            self.mem_after = sample(self._tracer.deep_memory)
        self._tracer._close(self)

    # ------------------------------------------------------------------
    # Annotations
    # ------------------------------------------------------------------
    def annotate(self, key: str, value: Union[int, float]) -> None:
        """Attach a numeric annotation (overwrites)."""
        self.counts[key] = value

    def count(self, key: str, amount: Union[int, float] = 1) -> None:
        """Accumulate into a numeric annotation."""
        self.counts[key] = self.counts.get(key, 0) + amount

    def tag(self, key: str, value: str) -> None:
        """Attach a string annotation (overwrites)."""
        self.tags[key] = value

    # ------------------------------------------------------------------
    # Derived values
    # ------------------------------------------------------------------
    @property
    def child_seconds(self) -> float:
        return sum(c.elapsed_seconds for c in self.children)

    @property
    def self_seconds(self) -> float:
        """Wall time not attributed to any child span."""
        return max(0.0, self.elapsed_seconds - self.child_seconds)

    def memory_delta(self) -> Dict[str, int]:
        if self.mem_before is None or self.mem_after is None:
            return {}
        return delta(self.mem_before, self.mem_after)

    def to_dict(self) -> Dict[str, object]:
        """JSON-able recursive form (the snapshot exporter's span tree)."""
        out: Dict[str, object] = {
            "name": self.name,
            "elapsed_seconds": self.elapsed_seconds,
        }
        if self.counts:
            out["counts"] = dict(self.counts)
        if self.tags:
            out["tags"] = dict(self.tags)
        mem = self.memory_delta()
        if mem:
            out["memory"] = mem
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:
        return (f"Span({self.name}, {self.elapsed_seconds * 1e3:.2f} ms, "
                f"{len(self.children)} children)")


def span_from_dict(data: Dict[str, object], tracer: "Tracer") -> Span:
    """Rebuild a span tree from :meth:`Span.to_dict` output.

    Wall times, annotations, and children round-trip; the memory delta
    does not (``to_dict`` exports the derived delta, not the raw
    samples), so grafted worker spans carry no memory columns.
    """
    span = Span(cast(str, data["name"]), tracer)
    span.elapsed_seconds = cast(float, data["elapsed_seconds"])
    counts = cast(Dict[str, Union[int, float]], data.get("counts") or {})
    span.counts = dict(counts)
    tags = cast(Dict[str, str], data.get("tags") or {})
    span.tags = dict(tags)
    children = cast(List[Dict[str, object]], data.get("children") or [])
    for child in children:
        span.children.append(span_from_dict(child, tracer))
    return span


class NullSpan:
    """Shared no-op span for the disabled tracer."""

    __slots__ = ()
    name = "null"
    elapsed_seconds = 0.0

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        return None

    def annotate(self, key: str, value: Union[int, float]) -> None:
        pass

    def count(self, key: str, amount: Union[int, float] = 1) -> None:
        pass

    def tag(self, key: str, value: str) -> None:
        pass


NULL_SPAN = NullSpan()


class Tracer:
    """Collects spans into a forest (usually a single root per run).

    Args:
        sample_memory: Take a :func:`repro.obs.memory.sample` at every
            span open/close (cheap; on by default).
        deep_memory: Also count gc-tracked objects per sample (linear in
            heap size — profile runs only).
        on_close: Streaming hook called with ``(span, depth)`` as each
            span closes — the JSONL exporter's event source.
    """

    enabled = True

    def __init__(self, sample_memory: bool = True, deep_memory: bool = False,
                 on_close: Optional[CloseHook] = None) -> None:
        self.sample_memory = sample_memory
        self.deep_memory = deep_memory
        self.on_close = on_close
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str) -> Span:
        """Create a span; it attaches itself on ``__enter__``."""
        return Span(name, self)

    # ------------------------------------------------------------------
    # Span plumbing (called by Span.__enter__/__exit__)
    # ------------------------------------------------------------------
    def _open(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _close(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            # Mis-nested exit (an inner span leaked): unwind to it.
            while self._stack and self._stack.pop() is not span:
                pass
        if self.on_close is not None:
            self.on_close(span, len(self._stack))

    # ------------------------------------------------------------------
    # Grafting (adopting spans recorded in another process)
    # ------------------------------------------------------------------
    def graft(self, payloads: List[Dict[str, object]]) -> List[Span]:
        """Adopt span trees serialized by :meth:`Span.to_dict`.

        The rebuilt spans attach under the innermost currently open span
        (or as new roots when none is open), and the ``on_close`` hook —
        the JSONL exporter's event source — is replayed for every
        grafted span in post-order, children before parents, exactly as
        if the spans had closed here. The parallel engine uses this to
        put worker-process phase trees under the parent's pipeline span.
        """
        spans = [span_from_dict(payload, self) for payload in payloads]
        depth = len(self._stack)
        if self._stack:
            self._stack[-1].children.extend(spans)
        else:
            self.roots.extend(spans)
        if self.on_close is not None:
            def replay(span: Span, parent_depth: int) -> None:
                for child in span.children:
                    replay(child, parent_depth + 1)
                assert self.on_close is not None
                self.on_close(span, parent_depth)
            for span in spans:
                replay(span, depth)
        return spans

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._stack)

    def total_seconds(self) -> float:
        return sum(root.elapsed_seconds for root in self.roots)

    def to_dicts(self) -> List[Dict[str, object]]:
        return [root.to_dict() for root in self.roots]

    def render(self, min_ms: float = 0.0) -> str:
        """The phase tree as aligned text (the ``profile`` output)."""
        lines: List[str] = []
        total = self.total_seconds() or 1e-12

        def wanted(span: Span) -> bool:
            return span.elapsed_seconds * 1e3 >= min_ms

        def emit(span: Span, depth: int) -> None:
            label = "  " * depth + span.name
            pct = span.elapsed_seconds / total
            parts = [f"{k}={v}" for k, v in span.tags.items()]
            parts.extend(
                f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in span.counts.items())
            extra = " ".join(parts)
            mem = span.memory_delta()
            rss = mem.get("peak_rss_kb", 0)
            if rss:
                extra = (extra + " " if extra else "") + f"+{rss}kB-peak-rss"
            lines.append(f"{label:<42s} {span.elapsed_seconds * 1e3:>10.1f} ms"
                         f" {pct:>5.0%}" + (f"  {extra}" if extra else ""))
            for child in span.children:
                if wanted(child):
                    emit(child, depth + 1)

        for root in self.roots:
            emit(root, 0)
        return "\n".join(lines)


class NullTracer:
    """The disabled tracer: every span is the shared :data:`NULL_SPAN`."""

    enabled = False
    sample_memory = False
    deep_memory = False

    def span(self, name: str) -> NullSpan:
        return NULL_SPAN

    def graft(self, payloads: List[Dict[str, object]]) -> List["Span"]:
        return []

    @property
    def depth(self) -> int:
        return 0

    def total_seconds(self) -> float:
        return 0.0

    def to_dicts(self) -> List[Dict[str, object]]:
        return []

    def render(self, min_ms: float = 0.0) -> str:
        return ""


NULL_TRACER = NullTracer()

AnyTracer = Union[Tracer, NullTracer]
AnySpan = Union[Span, NullSpan]

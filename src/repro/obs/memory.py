"""Memory accounting: cheap process-level samples at phase boundaries.

The paper's Tables 2–4 are as much about metadata *memory* as about
time (SmartTrack's entire contribution is shrinking per-variable
metadata), so the tracer samples memory at every span open/close. The
default sample is deliberately cheap — two syscalls and a CPython
allocator counter, microseconds — so phase-level sampling never
perturbs what it measures:

* ``peak_rss_kb`` — the process's high-water resident set
  (``getrusage``; kilobytes on Linux, normalised from bytes on macOS);
* ``allocated_blocks`` — live CPython allocator blocks
  (:func:`sys.getallocatedblocks`), the closest cheap proxy for "live
  Python objects right now" and, unlike RSS, it goes *down* when
  metadata is freed;
* ``gc_objects`` — the exact tracked-object count from
  ``len(gc.get_objects())``; linear in heap size, so it is only taken
  when *deep* sampling is requested (``vindicator profile --deep-mem``).
"""

from __future__ import annotations

import gc
import resource
import sys
import tracemalloc
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, TypeVar

_T = TypeVar("_T")

#: ``ru_maxrss`` unit: kilobytes on Linux, bytes on macOS.
_RSS_DIVISOR = 1024 if sys.platform == "darwin" else 1


def peak_rss_kb() -> int:
    """The process's peak resident set size, in kilobytes."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss // _RSS_DIVISOR


def traced_heap_peak_kb(fn: Callable[[], _T]) -> Tuple[_T, int]:
    """Run ``fn`` under :mod:`tracemalloc` and return its result plus the
    Python heap's peak growth in kilobytes.

    Unlike a peak-RSS *delta* — a process-wide high-water mark that
    reads 0 once any earlier phase has driven RSS higher — the traced
    heap peak is attributable to this call alone, so it stays meaningful
    no matter what ran before in the same process.  Tracing slows
    allocation severalfold, so callers must take wall-time measurements
    from separate, untraced runs.  Nested use degrades gracefully: if
    tracing is already active the sample is taken against a reset peak
    rather than restarting the tracer.
    """
    already_tracing = tracemalloc.is_tracing()
    if already_tracing:
        tracemalloc.reset_peak()
    else:
        tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not already_tracing:
            tracemalloc.stop()
    return result, peak // 1024


@dataclass(frozen=True)
class MemorySample:
    """One point-in-time memory reading."""

    peak_rss_kb: int
    allocated_blocks: int
    #: Exact gc-tracked object count; None unless deep sampling is on.
    gc_objects: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "peak_rss_kb": self.peak_rss_kb,
            "allocated_blocks": self.allocated_blocks,
        }
        if self.gc_objects is not None:
            out["gc_objects"] = self.gc_objects
        return out


def sample(deep: bool = False) -> MemorySample:
    """Take a memory sample (deep = also count gc-tracked objects)."""
    return MemorySample(
        peak_rss_kb=peak_rss_kb(),
        allocated_blocks=sys.getallocatedblocks(),
        gc_objects=len(gc.get_objects()) if deep else None,
    )


def delta(before: MemorySample, after: MemorySample) -> Dict[str, int]:
    """Per-field growth between two samples (peak RSS never shrinks;
    allocated blocks and object counts may go negative when a phase
    frees more than it allocates)."""
    out = {
        "peak_rss_kb": after.peak_rss_kb - before.peak_rss_kb,
        "allocated_blocks": after.allocated_blocks - before.allocated_blocks,
    }
    if before.gc_objects is not None and after.gc_objects is not None:
        out["gc_objects"] = after.gc_objects - before.gc_objects
    return out

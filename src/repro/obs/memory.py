"""Memory accounting: cheap process-level samples at phase boundaries.

The paper's Tables 2–4 are as much about metadata *memory* as about
time (SmartTrack's entire contribution is shrinking per-variable
metadata), so the tracer samples memory at every span open/close. The
default sample is deliberately cheap — two syscalls and a CPython
allocator counter, microseconds — so phase-level sampling never
perturbs what it measures:

* ``peak_rss_kb`` — the process's high-water resident set
  (``getrusage``; kilobytes on Linux, normalised from bytes on macOS);
* ``allocated_blocks`` — live CPython allocator blocks
  (:func:`sys.getallocatedblocks`), the closest cheap proxy for "live
  Python objects right now" and, unlike RSS, it goes *down* when
  metadata is freed;
* ``gc_objects`` — the exact tracked-object count from
  ``len(gc.get_objects())``; linear in heap size, so it is only taken
  when *deep* sampling is requested (``vindicator profile --deep-mem``).
"""

from __future__ import annotations

import gc
import resource
import sys
from dataclasses import dataclass
from typing import Dict, Optional

#: ``ru_maxrss`` unit: kilobytes on Linux, bytes on macOS.
_RSS_DIVISOR = 1024 if sys.platform == "darwin" else 1


def peak_rss_kb() -> int:
    """The process's peak resident set size, in kilobytes."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss // _RSS_DIVISOR


@dataclass(frozen=True)
class MemorySample:
    """One point-in-time memory reading."""

    peak_rss_kb: int
    allocated_blocks: int
    #: Exact gc-tracked object count; None unless deep sampling is on.
    gc_objects: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "peak_rss_kb": self.peak_rss_kb,
            "allocated_blocks": self.allocated_blocks,
        }
        if self.gc_objects is not None:
            out["gc_objects"] = self.gc_objects
        return out


def sample(deep: bool = False) -> MemorySample:
    """Take a memory sample (deep = also count gc-tracked objects)."""
    return MemorySample(
        peak_rss_kb=peak_rss_kb(),
        allocated_blocks=sys.getallocatedblocks(),
        gc_objects=len(gc.get_objects()) if deep else None,
    )


def delta(before: MemorySample, after: MemorySample) -> Dict[str, int]:
    """Per-field growth between two samples (peak RSS never shrinks;
    allocated blocks and object counts may go negative when a phase
    frees more than it allocates)."""
    out = {
        "peak_rss_kb": after.peak_rss_kb - before.peak_rss_kb,
        "allocated_blocks": after.allocated_blocks - before.allocated_blocks,
    }
    if before.gc_objects is not None and after.gc_objects is not None:
        out["gc_objects"] = after.gc_objects - before.gc_objects
    return out

"""Trace linter: single-pass collecting diagnostics over an event list.

:class:`~repro.core.trace.Trace` validation is *fail-fast*: the first
structural violation raises :class:`~repro.core.exceptions.MalformedTraceError`
and nothing else is examined. That is the right contract for the
analyses (they may assume well-formedness) but the wrong one for a user
staring at a trace file logged by some other tool: they want *every*
problem, each with a stable rule code, a severity, and the offending
event's position — like a compiler, not like an assertion.

:func:`lint_events` is that linter. It makes one pass over the events
(plus O(locks + threads) finalisation), never raises on malformed input,
and returns :class:`Diagnostic` records sorted by event position. Rule
codes are stable and documented in :data:`RULES` (see also
``docs/ALGORITHMS.md``); the CLI exposes the linter as
``vindicator lint <trace>``.

Severities:

* **error** — the trace violates the paper's event model (Section 2.1);
  the analyses would reject or mis-analyse it;
* **warning** — legal for the analyses but almost certainly a logging
  or instrumentation bug (e.g. a lock still held at thread end);
* **note** — benign but worth knowing (e.g. a forked thread that is
  never joined).

The linter deliberately consumes a raw event sequence, not a
:class:`Trace`, so it can run on input that ``Trace`` would refuse to
construct. Event positions in diagnostics are list indices (which equal
``eid`` for any trace loaded through :mod:`repro.traces.io`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.events import Event, EventKind, Target, Tid


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so comparisons read naturally."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


#: Stable rule codes: code -> (severity, short description).
RULES: Dict[str, Tuple[Severity, str]] = {
    "SA101": (Severity.ERROR, "release of a lock that no thread holds"),
    "SA102": (Severity.ERROR, "release of a lock held by another thread"),
    "SA103": (Severity.ERROR, "reentrant acquire (thread already holds the lock)"),
    "SA104": (Severity.ERROR, "acquire of a lock held by another thread"),
    "SA105": (Severity.WARNING, "release out of LIFO nesting order"),
    "SA110": (Severity.WARNING, "join of a thread that was never forked"),
    "SA111": (Severity.NOTE, "forked thread is never joined"),
    "SA112": (Severity.ERROR, "thread forked twice"),
    "SA113": (Severity.ERROR, "thread joined twice"),
    "SA114": (Severity.ERROR, "thread forks itself"),
    "SA115": (Severity.ERROR, "thread executes an event before its fork"),
    "SA116": (Severity.ERROR, "thread executes an event after its join"),
    "SA117": (Severity.ERROR, "begin is not the thread's first event"),
    "SA118": (Severity.ERROR, "end is not the thread's last event"),
    "SA120": (Severity.WARNING, "lock still held at thread end"),
    "SA130": (Severity.WARNING, "volatile variable also used as a lock"),
    "SA131": (Severity.WARNING, "variable accessed both as volatile and as plain data"),
    "SA132": (Severity.NOTE, "lock also accessed as a plain variable"),
    "SA133": (Severity.WARNING, "variable accessed under inconsistent locksets"),
    "SA140": (Severity.ERROR, "access event without a target"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding.

    Attributes:
        code: Stable rule code (a :data:`RULES` key).
        severity: :class:`Severity` of the finding.
        message: Human-readable explanation, naming the events involved.
        event_index: Position of the offending event in the input
            sequence, or -1 for trace-level findings.
    """

    code: str
    severity: Severity
    message: str
    event_index: int = -1

    def format(self, line_number: Optional[int] = None) -> str:
        """Render the diagnostic; ``line_number`` (when known) locates
        the finding in the source trace file."""
        where = f"line {line_number}" if line_number is not None else (
            f"event #{self.event_index}" if self.event_index >= 0 else "trace")
        return f"{where}: {self.code} {self.severity}: {self.message}"

    def __str__(self) -> str:
        return self.format()


class _AccessLockState:
    """Per-variable accumulator for the SA133 lock-discipline check."""

    __slots__ = ("threads", "writes", "always_locked", "lockset",
                 "first_index")

    def __init__(self, first_index: int) -> None:
        self.threads: Set[Tid] = set()
        self.writes = 0
        self.always_locked = True
        self.lockset: Optional[Set[Target]] = None
        self.first_index = first_index


class _Linter:
    """Single-pass lint state machine (one instance per lint run)."""

    def __init__(self) -> None:
        self.diagnostics: List[Diagnostic] = []
        #: lock -> (holder tid, acquire index)
        self.lock_holder: Dict[Target, Tuple[Tid, int]] = {}
        #: tid -> open acquire indices, innermost last
        self.stacks: Dict[Tid, List[int]] = {}
        self.forked: Dict[Tid, int] = {}
        self.joined: Dict[Tid, int] = {}
        #: tid -> number of events executed by the thread so far
        self.event_counts: Dict[Tid, int] = {}
        #: tid -> index of a pending `end` marker (SA118 when more follow)
        self.ended: Dict[Tid, int] = {}
        #: target -> kinds of use seen ("lock", "volatile", "data")
        self.uses: Dict[Target, Set[str]] = {}
        #: first event index per (target, use-kind), for messages
        self.first_use: Dict[Tuple[Target, str], int] = {}
        #: tid -> locks currently held (mirror of lock_holder, per thread)
        self.held: Dict[Tid, Set[Target]] = {}
        #: target -> (threads, writes, every-access-locked, lockset ∩)
        #: for the SA133 inconsistent-lockset discipline check.
        self.access_locks: Dict[Target, "_AccessLockState"] = {}

    # ------------------------------------------------------------------
    def emit(self, code: str, message: str, index: int = -1) -> None:
        severity, _ = RULES[code]
        self.diagnostics.append(Diagnostic(code, severity, message, index))

    def use(self, target: Target, kind: str, index: int) -> None:
        self.uses.setdefault(target, set()).add(kind)
        self.first_use.setdefault((target, kind), index)

    # ------------------------------------------------------------------
    def feed(self, i: int, e: Event) -> None:
        tid = e.tid
        if tid in self.ended and e.kind is not EventKind.END:
            self.emit("SA118",
                      f"{e}: thread {tid!r} continues after its end marker "
                      f"(event #{self.ended[tid]})", i)
            del self.ended[tid]
        if tid in self.joined:
            self.emit("SA116",
                      f"{e}: thread {tid!r} executes after its join "
                      f"(event #{self.joined[tid]})", i)
            del self.joined[tid]  # report once per thread, not per event
        count = self.event_counts.get(tid, 0)
        self.event_counts[tid] = count + 1

        kind = e.kind
        if kind is EventKind.ACQUIRE:
            self._acquire(i, e)
        elif kind is EventKind.RELEASE:
            self._release(i, e)
        elif kind is EventKind.FORK:
            self._fork(i, e)
        elif kind is EventKind.JOIN:
            self._join(i, e)
        elif kind is EventKind.BEGIN:
            if count:
                self.emit("SA117", f"{e}: begin is not thread {tid!r}'s "
                          "first event", i)
        elif kind is EventKind.END:
            self.ended[tid] = i
        elif kind.is_volatile:
            if e.target is None:
                self.emit("SA140", f"{e}: volatile access without a target", i)
            else:
                self.use(e.target, "volatile", i)
        elif kind.is_access:
            if e.target is None:
                self.emit("SA140", f"{e}: access without a target", i)
            else:
                self.use(e.target, "data", i)
                self._data_access(i, e)

    def _data_access(self, i: int, e: Event) -> None:
        state = self.access_locks.get(e.target)
        if state is None:
            state = self.access_locks[e.target] = _AccessLockState(i)
        state.threads.add(e.tid)
        if e.kind is EventKind.WRITE:
            state.writes += 1
        locks = self.held.get(e.tid)
        if not locks:
            state.always_locked = False
        if state.lockset is None:
            state.lockset = set(locks) if locks else set()
        elif state.lockset:
            state.lockset.intersection_update(locks or ())

    # ------------------------------------------------------------------
    def _acquire(self, i: int, e: Event) -> None:
        holder = self.lock_holder.get(e.target)
        if holder is not None:
            who, acq_i = holder
            if who == e.tid:
                self.emit("SA103",
                          f"{e}: thread {e.tid!r} already holds lock "
                          f"{e.target!r} (acquired at event #{acq_i}; locks "
                          "are non-reentrant)", i)
            else:
                self.emit("SA104",
                          f"{e}: lock {e.target!r} is held by thread {who!r} "
                          f"(acquired at event #{acq_i}); overlapping critical "
                          "sections violate mutual exclusion", i)
            # Recover by transferring the lock to the new acquirer so one
            # bad event does not cascade into spurious reports.
            self.held.get(who, set()).discard(e.target)
        self.lock_holder[e.target] = (e.tid, i)
        self.stacks.setdefault(e.tid, []).append(i)
        self.held.setdefault(e.tid, set()).add(e.target)
        self.use(e.target, "lock", i)

    def _release(self, i: int, e: Event) -> None:
        holder = self.lock_holder.get(e.target)
        self.use(e.target, "lock", i)
        if holder is None:
            self.emit("SA101",
                      f"{e}: releases lock {e.target!r}, which no thread "
                      "holds (no matching acquire)", i)
            return
        who, acq_i = holder
        if who != e.tid:
            self.emit("SA102",
                      f"{e}: releases lock {e.target!r} held by thread "
                      f"{who!r} (acquired at event #{acq_i})", i)
            return
        stack = self.stacks.get(e.tid, [])
        if stack and stack[-1] != acq_i:
            self.emit("SA105",
                      f"{e}: releases lock {e.target!r} out of nesting order "
                      f"(innermost open acquire is event #{stack[-1]})", i)
        if acq_i in stack:
            stack.remove(acq_i)
        del self.lock_holder[e.target]
        self.held.get(e.tid, set()).discard(e.target)

    def _fork(self, i: int, e: Event) -> None:
        child = e.target
        if child == e.tid:
            self.emit("SA114", f"{e}: thread forks itself", i)
            return
        if child in self.forked:
            self.emit("SA112",
                      f"{e}: thread {child!r} already forked at event "
                      f"#{self.forked[child]}", i)
            return
        if self.event_counts.get(child, 0):
            self.emit("SA115",
                      f"{e}: thread {child!r} executed "
                      f"{self.event_counts[child]} event(s) before this fork", i)
        self.forked[child] = i

    def _join(self, i: int, e: Event) -> None:
        child = e.target
        if child in self.joined:
            self.emit("SA113",
                      f"{e}: thread {child!r} already joined at event "
                      f"#{self.joined[child]}", i)
            return
        if child not in self.forked:
            self.emit("SA110",
                      f"{e}: joins thread {child!r}, which was never forked", i)
        self.joined[child] = i

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        for lock, (tid, acq_i) in self.lock_holder.items():
            self.emit("SA120",
                      f"thread {tid!r} still holds lock {lock!r} (acquired "
                      f"at event #{acq_i}) when the trace ends", acq_i)
        for child, fork_i in self.forked.items():
            if child not in self.joined:
                self.emit("SA111",
                          f"thread {child!r} (forked at event #{fork_i}) is "
                          "never joined", fork_i)
        for target, kinds in self.uses.items():
            if "volatile" in kinds and "lock" in kinds:
                self.emit("SA130",
                          f"{target!r} is used both as a volatile (event "
                          f"#{self.first_use[(target, 'volatile')]}) and as a "
                          f"lock (event #{self.first_use[(target, 'lock')]})",
                          self.first_use[(target, "lock")])
            if "volatile" in kinds and "data" in kinds:
                self.emit("SA131",
                          f"{target!r} is accessed both as a volatile (event "
                          f"#{self.first_use[(target, 'volatile')]}) and as "
                          "plain data (event "
                          f"#{self.first_use[(target, 'data')]}); the "
                          "analyses treat these as unrelated",
                          self.first_use[(target, "data")])
            elif "lock" in kinds and "data" in kinds:
                self.emit("SA132",
                          f"lock {target!r} is also accessed as a plain "
                          "variable (event "
                          f"#{self.first_use[(target, 'data')]})",
                          self.first_use[(target, "data")])
        for target, state in self.access_locks.items():
            # Every access holds *some* lock, several threads write, but
            # no single lock covers them all: the discipline exists yet
            # is inconsistent — the trace-level shadow of the SA203
            # source rule. (Unlocked multi-thread access is the race
            # detectors' job, not a lint finding.)
            if (len(state.threads) > 1 and state.writes
                    and state.always_locked and not state.lockset):
                self.emit("SA133",
                          f"{target!r} is accessed by {len(state.threads)} "
                          f"threads ({state.writes} writes), always under "
                          "locks, but no common lock protects every access "
                          "(inconsistent lockset discipline)",
                          state.first_index)

def lint_events(events: Sequence[Event]) -> List[Diagnostic]:
    """Lint a raw event sequence; never raises on malformed input.

    Returns all findings sorted by (event position, rule code). The
    input need not be constructible as a :class:`~repro.core.trace.Trace`.
    """
    linter = _Linter()
    for i, e in enumerate(events):
        linter.feed(i, e)
    linter.finalize()
    return sorted(linter.diagnostics, key=lambda d: (d.event_index, d.code))


def max_severity(diagnostics: Sequence[Diagnostic]) -> Optional[Severity]:
    """The highest severity present, or None for a clean result."""
    return max((d.severity for d in diagnostics), default=None)


LINT_SCHEMA_ID = "vindicator.lint/1"


def lint_document(source: str, events_count: int,
                  diagnostics: Sequence[Diagnostic],
                  line_numbers: Optional[Sequence[int]] = None) -> Dict[str, object]:
    """Build the machine-readable ``vindicator.lint/1`` document
    (pinned by :mod:`repro.obs.schema`; shared report idiom with
    ``vindicator scan --json``)."""
    by_severity = {severity: 0 for severity in Severity}
    for diag in diagnostics:
        by_severity[diag.severity] += 1
    findings: List[Dict[str, object]] = []
    for diag in diagnostics:
        line: Optional[int] = None
        if line_numbers is not None and 0 <= diag.event_index < len(line_numbers):
            line = line_numbers[diag.event_index]
        findings.append({
            "code": diag.code,
            "severity": str(diag.severity),
            "message": diag.message,
            "event_index": diag.event_index,
            "line": line,
        })
    return {
        "schema": LINT_SCHEMA_ID,
        "source": source,
        "events": events_count,
        "summary": {
            "findings": len(findings),
            "errors": by_severity[Severity.ERROR],
            "warnings": by_severity[Severity.WARNING],
            "notes": by_severity[Severity.NOTE],
        },
        "findings": findings,
    }

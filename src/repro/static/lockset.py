"""Set-based lockset and thread-locality pre-analysis (Eraser-style).

One linear pass over a trace classifies every shared variable into a
small lattice of verdicts:

* **thread-local** — accessed by a single thread;
* **read-shared** — accessed by several threads, but never written;
* **lock-protected** — some lock is held at *every* access (the
  intersection of the per-access locksets is non-empty);
* **race-candidate** — none of the above.

The first three verdicts are *sound exclusions* for predictive race
detection, not just for HB detection:

* thread-local / read-shared variables admit no conflicting event pair
  at all (Section 2.1's ``e1 ≍ e2`` needs two threads and a write), and
  a reordering cannot invent events, so no correct reordering of the
  trace exhibits a race on them;
* if every access to ``x`` holds lock ``m``, then in *any* correct
  reordering two conflicting accesses to ``x`` sit in distinct critical
  sections on ``m``; lock semantics (Definition 2.1's LS rule) keeps
  those sections disjoint, so the accesses can never be adjacent — no
  predictable race. This is the set-based insight of Roemer & Bond's
  SPD and SmartTrack, transplanted to the offline setting.

Note the deliberate asymmetry with classic Eraser: Eraser's
"initialisation" and "shared read-after-write-exclusive" states excuse
unsynchronised writes that *can* be predictable races, so this pass
does not implement them — the verdicts here over-approximate race
candidates, which is exactly what makes them usable both as a detector
fast path (skip the per-access vector-clock race check for provably
race-free variables — the relation bookkeeping, including rule (a)
critical-section recording, is unaffected) and as an independent
sanitizer: every race any detector reports must be on a race-candidate
variable (:func:`cross_check`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
)

from repro import obs
from repro.core.events import Event, EventKind, Target, Tid

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.analysis.races import DynamicRace


class VariableVerdict(enum.Enum):
    """Per-variable classification, strongest exclusion first."""

    THREAD_LOCAL = "thread-local"
    READ_SHARED = "read-shared"
    LOCK_PROTECTED = "lock-protected"
    RACE_CANDIDATE = "race-candidate"

    def __str__(self) -> str:
        return self.value

    @property
    def can_race(self) -> bool:
        """Whether a variable with this verdict may have a predictable race."""
        return self is VariableVerdict.RACE_CANDIDATE


@dataclass
class VariableInfo:
    """What the pass learned about one variable."""

    verdict: VariableVerdict
    #: Threads that accessed the variable.
    threads: FrozenSet[Tid]
    #: Locks held at every access (the lockset intersection); empty
    #: unless the verdict is LOCK_PROTECTED (or the variable is also
    #: thread-local/read-shared and happened to be protected).
    protected_by: FrozenSet[Target]
    reads: int = 0
    writes: int = 0

    def __str__(self) -> str:
        extra = ""
        if self.protected_by:
            locks = ", ".join(sorted(map(str, self.protected_by)))
            extra = f" by {{{locks}}}"
        return (f"{self.verdict}{extra} ({len(self.threads)} threads, "
                f"{self.reads} rd / {self.writes} wr)")


@dataclass
class LocksetResult:
    """The pre-analysis verdicts for one trace."""

    variables: Dict[Target, VariableInfo] = field(default_factory=dict)

    @property
    def race_candidates(self) -> FrozenSet[Target]:
        """Variables that may participate in a (predictable) race — the
        set detectors restrict their race checks to, and the sanitizer's
        over-approximation of every detector's race set."""
        return frozenset(
            var for var, info in self.variables.items()
            if info.verdict.can_race)

    def verdict_of(self, var: Target) -> VariableVerdict:
        """The verdict for ``var`` (unseen variables are thread-local:
        they have no accesses at all)."""
        info = self.variables.get(var)
        return info.verdict if info else VariableVerdict.THREAD_LOCAL

    def counts(self) -> Dict[VariableVerdict, int]:
        """Number of variables per verdict (every verdict is a key)."""
        out = {verdict: 0 for verdict in VariableVerdict}
        for info in self.variables.values():
            out[info.verdict] += 1
        return out

    def summary(self) -> str:
        """One line: ``42 variables: 30 thread-local, ...``."""
        counts = self.counts()
        parts = [f"{counts[v]} {v}" for v in VariableVerdict if counts[v]]
        return f"{len(self.variables)} variables: " + ", ".join(parts)


class _VarState:
    """Mutable per-variable accumulator for the linear pass."""

    __slots__ = ("tids", "lockset", "reads", "writes", "candidate")

    def __init__(self) -> None:
        self.tids: Set[Tid] = set()
        self.lockset: Optional[Set[Target]] = None  # None = no access yet
        self.reads = 0
        self.writes = 0
        #: Sticky fast-exit flag: multi-threaded, written, lockset empty.
        self.candidate = False


def analyze_locksets(events: Iterable[Event]) -> LocksetResult:
    """Run the set-based pre-analysis over a trace (or any event iterable).

    One linear pass; per access the work is O(held locks) set
    intersection, with a sticky early-out once a variable is already a
    confirmed race candidate.
    """
    with obs.span("static.lockset") as sp:
        result = _scan(events)
        sp.annotate("variables", len(result.variables))
    reg = obs.metrics()
    if reg.enabled:
        reg.add("lockset.variables", len(result.variables))
        for verdict, count in result.counts().items():
            if count:
                reg.add(f"lockset.verdict.{verdict.name.lower()}", count)
    return result


def _scan(events: Iterable[Event]) -> LocksetResult:
    states: Dict[Target, _VarState] = {}
    held: Dict[Tid, List[Target]] = {}
    # The loop is the whole cost of the pass; bind the hot enum members
    # once rather than paying a property call per event.
    READ, WRITE = EventKind.READ, EventKind.WRITE
    ACQUIRE, RELEASE = EventKind.ACQUIRE, EventKind.RELEASE
    for e in events:
        kind = e.kind
        if kind is READ or kind is WRITE:
            state = states.get(e.target)
            if state is None:
                state = states[e.target] = _VarState()
            if kind is WRITE:
                state.writes += 1
            else:
                state.reads += 1
            state.tids.add(e.tid)
            if state.candidate:
                continue
            locks = held.get(e.tid)
            if state.lockset is None:
                state.lockset = set(locks) if locks else set()
            elif state.lockset:
                state.lockset.intersection_update(locks or ())
            if (not state.lockset and state.writes
                    and len(state.tids) > 1):
                state.candidate = True
        elif kind is ACQUIRE:
            held.setdefault(e.tid, []).append(e.target)
        elif kind is RELEASE:
            stack = held.get(e.tid)
            if stack and e.target in stack:
                stack.remove(e.target)

    result = LocksetResult()
    for var, state in states.items():
        if len(state.tids) <= 1:
            verdict = VariableVerdict.THREAD_LOCAL
        elif not state.writes:
            verdict = VariableVerdict.READ_SHARED
        elif state.lockset:
            verdict = VariableVerdict.LOCK_PROTECTED
        else:
            verdict = VariableVerdict.RACE_CANDIDATE
        result.variables[var] = VariableInfo(
            verdict=verdict,
            threads=frozenset(state.tids),
            protected_by=frozenset(state.lockset or ()),
            reads=state.reads,
            writes=state.writes,
        )
    return result


def cross_check(races: Sequence["DynamicRace"],
                result: LocksetResult) -> List[str]:
    """Sanitize detector output against the lockset over-approximation.

    Every race any detector reports must be on a race-candidate
    variable; a violation means either the detector or the pre-analysis
    is wrong — a structural regression signal that does not depend on
    golden outputs. Returns human-readable violation descriptions
    (empty = consistent).
    """
    violations: List[str] = []
    for race in races:
        var = race.second.target
        verdict = result.verdict_of(var)
        if not verdict.can_race:
            violations.append(
                f"{race}: variable {var!r} is {verdict}, so no predictable "
                "race on it should exist")
    return violations

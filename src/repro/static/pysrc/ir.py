"""Intermediate representation for the source-level static analysis.

The frontend (:mod:`repro.static.pysrc.frontend`) lowers Python source —
both real ``threading`` programs and this repository's generator-model
DSL (``ops.rd`` / ``ops.fork`` / ...) — into the small IR defined here:
per-function lists of shared-access sites, call edges, and thread spawn
sites.  The later passes (:mod:`~repro.static.pysrc.threads`,
:mod:`~repro.static.pysrc.locks`, :mod:`~repro.static.pysrc.report`)
work exclusively on this IR and never look at the AST again.

Access paths are *symbolic*: a site names the shared location it may
touch as a string path rooted at a module-visible symbol — a module
global (``"counter"``), class instance state (``"Registry.stats"`` for
``self.stats`` inside ``class Registry``; all instances of a class are
merged, the standard ownership-style abstraction), or a constant target
of the ops DSL (``"cache.entry"``).  Paths that cannot be resolved to a
single constant string become *wildcard patterns* with a known constant
prefix (an f-string target, a subscript cell ``"d[*]"``); a wildcard may
alias every path sharing its prefix, so any path it may alias is merged
into the same classification cluster before pruning decisions are made.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional


class SiteTier(enum.Enum):
    """Per-path classification, mirroring the trace-level lattice of
    :class:`repro.static.lockset.VariableVerdict` — strongest (and only
    prunable) exclusion first.  ``thread-local ⊑ read-shared ⊑ guarded
    ⊑ race-candidate``: each tier up proves strictly less."""

    THREAD_LOCAL = "thread-local"
    READ_SHARED = "read-shared"
    GUARDED = "guarded"
    RACE_CANDIDATE = "race-candidate"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class PathPattern:
    """A symbolic access path: exact, or a constant-prefix wildcard.

    ``exact`` patterns name one abstract location.  Wildcards arise from
    targets the frontend cannot constant-fold (f-strings, subscripts)
    and may alias *any* path that shares their prefix — the alias test
    is deliberately one-sided so the pruning passes stay sound: when in
    doubt, two patterns alias.
    """

    prefix: str
    exact: bool = True

    def matches(self, name: str) -> bool:
        """Whether a concrete variable name may be an instance of this
        pattern (used to match dynamic race variables against sites)."""
        if self.exact:
            return name == self.prefix
        return name.startswith(self.prefix)

    def may_alias(self, other: "PathPattern") -> bool:
        """Whether two patterns may denote the same location."""
        if self.exact and other.exact:
            return self.prefix == other.prefix
        return (self.prefix.startswith(other.prefix)
                or other.prefix.startswith(self.prefix))

    def label(self) -> str:
        return self.prefix if self.exact else f"{self.prefix}*"

    def __str__(self) -> str:
        return self.label()


@dataclass
class AccessSite:
    """One source site that may read or write shared state.

    ``locks`` is the *intra-procedural* lockset (locks provably held on
    every path from the enclosing function's entry to the site);
    ``effective_locks`` additionally includes the interprocedural
    context computed by :mod:`repro.static.pysrc.locks`.
    """

    path: PathPattern
    write: bool
    function: str
    file: str
    line: int
    col: int
    locks: FrozenSet[str]
    #: Index of the enclosing *top-level statement* of the function
    #: body: within one function, a site in statement i finishes every
    #: execution before statement j > i starts (no common loop at the
    #: statement level), so these indices order sites against
    #: start/join positions.
    stmt_index: int
    in_loop: bool = False
    #: Module-level defining assignment (initialisation during import);
    #: excluded from conflict pairing and from the tier write count.
    init: bool = False
    #: Set for accesses rooted at a provably fresh, non-escaping local:
    #: the site is thread-local by construction.
    local_root: Optional[str] = None
    effective_locks: FrozenSet[str] = frozenset()
    tier: SiteTier = SiteTier.RACE_CANDIDATE
    #: False when the site's function is not reachable from any entry:
    #: no concurrency structure is known, so the site is planned for
    #: instrumentation but never paired into findings.
    reached: bool = True

    @property
    def kind(self) -> str:
        return "wr" if self.write else "rd"


@dataclass
class SpawnSite:
    """A point where a new thread (or task) may begin executing an entry.

    ``start_stmt`` / ``join_stmt`` are top-level statement indices in
    the *spawning* function; ``join_stmt`` stays ``None`` (and
    ``join_conditional`` ``True``) until an unconditional join is seen,
    so every ordering claim built on it errs toward concurrency.
    """

    entry: str
    function: str
    file: str
    line: int
    start_stmt: int
    via: str  # "thread" | "subclass" | "executor" | "fork" | "program"
    in_loop: bool = False
    conditional: bool = False
    #: ops-DSL fork label (constant string), for join matching.
    label: Optional[str] = None
    join_stmt: Optional[int] = None
    join_conditional: bool = True
    #: Resolved symbolic roots for the entry's positional parameters
    #: (``Thread(args=...)`` / ``submit(f, ...)``); ``None`` per slot
    #: when unresolved.
    arg_roots: List[Optional[str]] = field(default_factory=list)

    def joined_before(self, stmt_index: int) -> bool:
        """Whether every thread started here has provably completed
        before ``stmt_index`` of the same function."""
        return (self.join_stmt is not None
                and not self.join_conditional
                and self.join_stmt < stmt_index)


@dataclass(frozen=True)
class CallEdge:
    """A resolved intra-module call, with the locks held at the call."""

    caller: str
    callee: str
    locks: FrozenSet[str]


@dataclass
class FunctionIR:
    """Everything the frontend learned about one function."""

    qualname: str
    file: str
    line: int
    sites: List[AccessSite] = field(default_factory=list)
    calls: List[CallEdge] = field(default_factory=list)
    spawns: List[SpawnSite] = field(default_factory=list)
    params: List[str] = field(default_factory=list)


@dataclass
class ModuleIR:
    """The lowered form of one Python module.

    ``functions`` always contains the pseudo-function ``"<module>"``
    holding the module's top-level statements — it doubles as the main
    thread's entry point under the closed-module assumption.
    """

    path: str
    name: str
    functions: Dict[str, FunctionIR] = field(default_factory=dict)
    #: Symbolic lock identities: module globals bound to a lock factory
    #: (``threading.Lock()`` & friends) and class attrs assigned one in
    #: a method (``"C.lock"``).
    lock_symbols: FrozenSet[str] = frozenset()
    #: Every lock symbol ever acquired (with-blocks, acquire calls, ops
    #: DSL ``acq`` labels) — the plan's lock-intercept list even when a
    #: region encloses no access site.
    acquired_locks: FrozenSet[str] = frozenset()
    #: Accesses through roots the frontend could not resolve (see the
    #: soundness contract in docs/ALGORITHMS.md): counted, not planned.
    opaque_accesses: int = 0
    #: Spawns whose entry function could not be resolved (lambdas,
    #: callables from data structures).  Any unknown entry may touch any
    #: shared path, so sharing-based pruning is disabled module-wide
    #: while fresh-local pruning (unreachable from other code by
    #: construction) stays valid.
    unknown_entries: int = 0

    def all_sites(self) -> List[AccessSite]:
        return [s for fn in self.functions.values() for s in fn.sites]

    def all_spawns(self) -> List[SpawnSite]:
        return [sp for fn in self.functions.values() for sp in fn.spawns]

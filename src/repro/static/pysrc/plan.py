"""Instrumentation plan: what the dynamic frontend must observe.

The plan is the bridge to the ROADMAP's "real-Python-program frontend"
item: for each module it lists every access site with its tier and an
``instrument`` bit, plus the lock symbols and spawn points the frontend
must intercept to reconstruct acq/rel/fork/join events.

The pruning rule is deliberately asymmetric, mirroring the trace-level
pre-filter in :mod:`repro.static.lockset`: a site is dropped **only**
when its whole alias cluster is ``thread-local`` — proven unreachable
from more than one thread.  Every weaker tier (including ``guarded``)
stays instrumented, because the dynamic detectors, not the static
scan, are the ground truth for everything the scan cannot prove.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.static.pysrc.ir import AccessSite, SiteTier
from repro.static.pysrc.report import ScanReport


@dataclass
class PlanEntry:
    """One source site in the instrumentation plan."""

    site: AccessSite

    @property
    def instrument(self) -> bool:
        return self.site.tier is not SiteTier.THREAD_LOCAL

    def to_dict(self) -> Dict[str, Any]:
        site = self.site
        return {
            "file": site.file,
            "line": site.line,
            "col": site.col,
            "function": site.function,
            "path": site.path.label(),
            "kind": site.kind,
            "tier": str(site.tier),
            "instrument": self.instrument,
            "reached": site.reached,
            "locks": sorted(site.effective_locks),
        }


def build_plan(report: ScanReport) -> List[PlanEntry]:
    entries = [PlanEntry(site) for site in report.module.all_sites()]
    entries.sort(key=lambda e: (e.site.file, e.site.line, e.site.col))
    return entries


def module_document(report: ScanReport) -> Dict[str, Any]:
    """The per-module body of a ``vindicator.scan/1`` document."""
    plan = build_plan(report)
    instrumented = sum(1 for e in plan if e.instrument)
    module = report.module
    model = report.model
    return {
        "path": module.path,
        "name": module.name,
        "counters": {
            "sites": len(plan),
            "instrumented": instrumented,
            "pruned": len(plan) - instrumented,
            "candidates": len(report.candidate_labels()),
            "findings": len(report.findings),
            "errors": report.error_count(),
            "opaque_accesses": module.opaque_accesses,
            "unknown_entries": module.unknown_entries,
            "entries": len(model.entries),
        },
        "entries": sorted(model.entries),
        "locks": sorted(module.lock_symbols | module.acquired_locks),
        "spawns": [
            {
                "entry": sp.entry,
                "function": sp.function,
                "file": sp.file,
                "line": sp.line,
                "via": sp.via,
                "in_loop": sp.in_loop,
            }
            for sp in sorted(module.all_spawns(),
                             key=lambda s: (s.file, s.line, s.entry))
        ],
        "tiers": [
            {
                "path": cluster.label,
                "tier": str(cluster.tier),
                "sites": len(cluster.sites),
            }
            for cluster in report.clusters
        ],
        "findings": [
            {
                "code": f.code,
                "severity": f.severity.name.lower(),
                "message": f.message,
                "path": f.path,
                "locations": [
                    {"file": s.file, "line": s.line,
                     "function": s.function, "kind": s.kind}
                    for s in (f.a, f.b)
                ],
            }
            for f in report.findings
        ],
        "plan": [e.to_dict() for e in plan],
    }

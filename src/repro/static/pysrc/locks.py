"""Interprocedural lockset contexts.

The frontend records, per access site, the locks provably held on every
intra-procedural path from the function entry (:attr:`AccessSite.locks`)
and, per call edge, the locks held at the call.  This pass closes the
gap between the two: a function only ever invoked with ``mu`` held
protects all of its sites with ``mu`` even though no lock statement
appears in its own body.

``context(f)`` is the set of locks held at *every* live call reaching
``f`` — the meet (set intersection) over incoming edges of
``context(caller) ∪ edge.locks``, with thread entries pinned to the
empty set (a spawner's locks are not held by the spawned thread).  The
fixpoint is a standard descending iteration from ⊤; it terminates
because locksets only shrink and are drawn from the finite set of lock
symbols seen in the module.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from repro.static.pysrc.ir import ModuleIR
from repro.static.pysrc.threads import ThreadModel

#: ⊤ is represented as None (``context`` unconstrained: function has no
#: live incoming edge yet).
_Context = Optional[FrozenSet[str]]


def compute_contexts(module: ModuleIR,
                     model: ThreadModel) -> Dict[str, FrozenSet[str]]:
    """Map each live function to the locks held at every call reaching
    it.  Unreached functions map to the empty set."""
    context: Dict[str, _Context] = {}
    for fn in model.live_functions:
        context[fn] = None
    for entry in model.entries:
        if entry in context:
            context[entry] = frozenset()

    changed = True
    while changed:
        changed = False
        for fn_name in model.live_functions:
            fn = module.functions.get(fn_name)
            if fn is None:
                continue
            caller_ctx = context.get(fn_name)
            if caller_ctx is None:
                continue  # not yet constrained; revisit next round
            for edge in fn.calls:
                if edge.callee not in context:
                    continue
                incoming = caller_ctx | edge.locks
                current = context[edge.callee]
                updated = incoming if current is None \
                    else current & incoming
                if updated != current:
                    context[edge.callee] = updated
                    changed = True

    return {fn: (ctx if ctx is not None else frozenset())
            for fn, ctx in context.items()}


def apply_contexts(module: ModuleIR,
                   contexts: Dict[str, FrozenSet[str]]) -> None:
    """Stamp every site's ``effective_locks`` = own lockset ∪ context."""
    for fn in module.functions.values():
        ctx = contexts.get(fn.qualname, frozenset())
        for site in fn.sites:
            site.effective_locks = site.locks | ctx

"""Thread-structure model: entries, reachability, may-run-concurrently.

Works entirely on the :class:`~repro.static.pysrc.ir.ModuleIR`.  The
*closed-module assumption* anchors everything: the module's top-level
statements are the main thread's entry point, and the only other code
that runs is what the module itself spawns.  Functions unreachable from
any live entry therefore never execute; their sites are still planned
for instrumentation but never paired into findings.

Two layers of may-run-concurrently:

* **entry level** — which thread entries may overlap at all, from the
  spawn sites that create them (self-concurrency from loops or multiple
  unordered spawns of one entry);
* **site level** — a positional refinement inside the spawning
  function: within one function body, the top-level statement at index
  *i* completes every execution before statement *j > i* begins, so a
  site before a ``start()`` is ordered before that thread, and a site
  after an unconditional ``join()`` is ordered after it.

The refinement only ever *removes* candidate pairs from the findings
layer (which is a best-effort under-approximation and additionally
assumes spawning functions execute once per run); the instrumentation
plan's pruning never relies on it — pruning uses only entry
reachability and self-concurrency, which hold regardless of how often
the spawner runs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set

from repro.static.pysrc.ir import AccessSite, ModuleIR, SpawnSite


class ThreadModel:
    """Entries, call-graph closures, and concurrency relations for one
    lowered module."""

    #: The pseudo-entry executing the module's top-level statements.
    MAIN = "<module>"

    def __init__(self, module: ModuleIR) -> None:
        self.module = module
        self.call_graph: Dict[str, Set[str]] = {}
        for name, fn in module.functions.items():
            edges = self.call_graph.setdefault(name, set())
            for call in fn.calls:
                if call.callee in module.functions:
                    edges.add(call.callee)
        self._closure_cache: Dict[str, FrozenSet[str]] = {}

        #: entry qualname -> spawn sites creating it (main has none).
        self.entries: Dict[str, List[SpawnSite]] = {self.MAIN: []}
        self.live_functions: Set[str] = set()
        self._discover_entries()

        #: function -> entries in whose closure it appears.
        self.reached_by: Dict[str, FrozenSet[str]] = {}
        by: Dict[str, Set[str]] = {}
        for entry in self.entries:
            for fn in self.closure(entry):
                by.setdefault(fn, set()).add(entry)
        self.reached_by = {fn: frozenset(es) for fn, es in by.items()}

        self.self_concurrent: Dict[str, bool] = {
            entry: self._self_concurrent(entry, spawns)
            for entry, spawns in self.entries.items()}

        self.has_unknown_entry = module.unknown_entries > 0

    # ------------------------------------------------------------------
    def closure(self, entry: str) -> FrozenSet[str]:
        """Functions transitively callable from ``entry`` (inclusive)."""
        cached = self._closure_cache.get(entry)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        stack = [entry]
        while stack:
            fn = stack.pop()
            if fn in seen or fn not in self.module.functions:
                continue
            seen.add(fn)
            stack.extend(self.call_graph.get(fn, ()))
        result = frozenset(seen)
        self._closure_cache[entry] = result
        return result

    def _discover_entries(self) -> None:
        """Fixpoint: an entry is *live* when some live function spawns
        it; main is live by definition."""
        self.live_functions = set(self.closure(self.MAIN))
        changed = True
        while changed:
            changed = False
            for fn_name in list(self.live_functions):
                fn = self.module.functions.get(fn_name)
                if fn is None:
                    continue
                for spawn in fn.spawns:
                    if spawn.entry == "<unknown>":
                        continue
                    existing = self.entries.setdefault(spawn.entry, [])
                    if spawn not in existing:
                        existing.append(spawn)
                    new = self.closure(spawn.entry) - self.live_functions
                    if new:
                        self.live_functions.update(new)
                        changed = True

    def _self_concurrent(self, entry: str, spawns: List[SpawnSite]) -> bool:
        if entry == self.MAIN:
            return False
        if any(sp.in_loop for sp in spawns):
            return True
        for i, a in enumerate(spawns):
            for b in spawns[i + 1:]:
                if not self._spawns_disjoint(a, b):
                    return True
        return False

    @staticmethod
    def _spawns_disjoint(a: SpawnSite, b: SpawnSite) -> bool:
        """Whether the threads of two spawn sites provably never
        overlap (one is joined before the other starts, same body)."""
        if a.function != b.function:
            return False
        return a.joined_before(b.start_stmt) or b.joined_before(a.start_stmt)

    # ------------------------------------------------------------------
    def site_entries(self, site: AccessSite) -> FrozenSet[str]:
        """Live entries whose thread may execute this site."""
        return self.reached_by.get(site.function, frozenset())

    def is_reached(self, function: str) -> bool:
        return function in self.live_functions

    def may_run_concurrently(self, a: AccessSite, b: AccessSite) -> bool:
        """Site-level MRC: may some execution of ``a`` overlap some
        execution of ``b``?  Uncertainty answers *yes*."""
        for ea in self.site_entries(a):
            for eb in self.site_entries(b):
                if self._pair_concurrent(ea, a, eb, b):
                    return True
        return False

    def _pair_concurrent(self, ea: str, a: AccessSite,
                         eb: str, b: AccessSite) -> bool:
        if ea == eb:
            # Two sites on the same entry: sequential within one
            # thread; concurrent only via multiple instances.
            return self.self_concurrent.get(ea, False)
        return not (self._site_ordered(a, eb) or self._site_ordered(b, ea))

    def _site_ordered(self, site: AccessSite, other_entry: str) -> bool:
        """Whether ``site`` is ordered (before-start or after-join)
        w.r.t. *every* thread instance of ``other_entry``."""
        spawns = self.entries.get(other_entry, [])
        if not spawns:
            return False
        for sp in spawns:
            if sp.function != site.function:
                return False
            before_start = (site.stmt_index < sp.start_stmt
                            and not sp.conditional)
            after_join = sp.joined_before(site.stmt_index)
            if not (before_start or after_join):
                return False
        return True

    # ------------------------------------------------------------------
    def concurrent_entry_count(self, sites: Iterable[AccessSite]) -> int:
        """Number of distinct live entries reaching any of ``sites``,
        counting a self-concurrent entry twice (it races with itself)."""
        entries: Set[str] = set()
        for site in sites:
            entries.update(self.site_entries(site))
        count = len(entries)
        if any(self.self_concurrent.get(e, False) for e in entries):
            count += 1
        return count

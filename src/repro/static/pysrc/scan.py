"""Scan orchestration: source text → :class:`ScanResult` → document.

``scan_path`` accepts a single ``.py`` file or a directory (scanned
non-recursively plus one level of subpackages); each module is analysed
independently — the closed-module assumption is per file.  The emitted
``vindicator.scan/1`` document aggregates all modules and is validated
against the pinned schema in :mod:`repro.obs.schema` by the test suite
and the CI ``static-scan`` job.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro import obs
from repro.static.pysrc.frontend import lower_file, lower_source
from repro.static.pysrc.ir import ModuleIR
from repro.static.pysrc.locks import apply_contexts, compute_contexts
from repro.static.pysrc.plan import module_document
from repro.static.pysrc.report import ScanReport, build_report
from repro.static.pysrc.threads import ThreadModel

SCAN_SCHEMA_ID = "vindicator.scan/1"


@dataclass
class ScanResult:
    """Reports for every module scanned in one invocation."""

    reports: List[ScanReport] = field(default_factory=list)
    #: Files that failed to parse: path -> error message.
    failed: Dict[str, str] = field(default_factory=dict)

    def error_count(self) -> int:
        return sum(r.error_count() for r in self.reports)

    def finding_count(self) -> int:
        return sum(len(r.findings) for r in self.reports)

    def covers(self, name: str) -> bool:
        return any(r.covers(name) for r in self.reports)

    def pruned_matches(self, name: str) -> bool:
        return any(r.pruned_matches(name) for r in self.reports)

    def to_document(self) -> Dict[str, Any]:
        modules = [module_document(r) for r in self.reports]
        summary = {
            "modules": len(modules),
            "sites": sum(m["counters"]["sites"] for m in modules),
            "instrumented": sum(m["counters"]["instrumented"]
                                for m in modules),
            "pruned": sum(m["counters"]["pruned"] for m in modules),
            "candidates": sum(m["counters"]["candidates"] for m in modules),
            "findings": self.finding_count(),
            "errors": self.error_count(),
            "failed": len(self.failed),
        }
        return {"schema": SCAN_SCHEMA_ID, "summary": summary,
                "modules": modules}


def _analyse(module: ModuleIR) -> ScanReport:
    model = ThreadModel(module)
    apply_contexts(module, compute_contexts(module, model))
    return build_report(module, model)


def scan_source(source: str, path: str = "<string>",
                name: str = "<module>") -> ScanReport:
    """Scan one module given as source text (raises ``SyntaxError``)."""
    return _analyse(lower_source(source, path=path, name=name))


def scan_file(path: str) -> ScanReport:
    """Scan one Python file (raises ``OSError`` / ``SyntaxError``)."""
    return _analyse(lower_file(path))


def _python_files(root: str) -> List[str]:
    files: List[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames
                             if not d.startswith((".", "__")))
        for fname in sorted(filenames):
            if fname.endswith(".py"):
                files.append(os.path.join(dirpath, fname))
    return files


def scan_path(path: str) -> ScanResult:
    """Scan a file or every ``.py`` under a directory.

    Raises ``OSError`` for a missing path; per-file syntax errors are
    collected into :attr:`ScanResult.failed` rather than aborting a
    package scan.
    """
    with obs.span("static.scan") as sp:
        result = ScanResult()
        if os.path.isdir(path):
            targets = _python_files(path)
        else:
            targets = [path]
        for target in targets:
            try:
                result.reports.append(scan_file(target))
            except SyntaxError as exc:
                if len(targets) == 1:
                    raise
                result.failed[target] = str(exc)
        sp.annotate("modules", len(result.reports))

    reg = obs.metrics()
    if reg.enabled:
        sites = sum(len(r.module.all_sites()) for r in result.reports)
        pruned = sum(len(r.pruned_labels()) for r in result.reports)
        candidates = sum(len(r.candidate_labels()) for r in result.reports)
        reg.add("static.scan.modules", len(result.reports))
        reg.add("static.scan.sites", sites)
        reg.add("static.scan.pruned", pruned)
        reg.add("static.scan.candidates", candidates)
        reg.add("static.scan.findings", result.finding_count())
    return result
